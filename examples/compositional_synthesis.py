#!/usr/bin/env python
"""Compositional synthesis (Section 5.2): exploit environment knowledge.

A generic peripheral controller supports two operation kinds; a
particular system only ever issues one of them.  Reducing the
controller against that environment (Theorem 5.1) yields a smaller STG,
which synthesizes to strictly simpler logic.

Run:  python examples/compositional_synthesis.py
"""

from repro.core.synthesis import (
    reduction_report,
    simplify_against_environment,
    verify_theorem_51,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import Stg
from repro.synth.implementation import synthesize, verify_implementation


def controller() -> Stg:
    """Serves 'fast' requests (rf) and 'slow' requests (rs), each with
    its own acknowledge wire."""
    net = PetriNet("controller")
    net.add_transition({"c0"}, "rf+", {"c1"})
    net.add_transition({"c1"}, "af+", {"c2"})
    net.add_transition({"c2"}, "rf-", {"c3"})
    net.add_transition({"c3"}, "af-", {"c0"})
    net.add_transition({"c0"}, "rs+", {"c4"})
    net.add_transition({"c4"}, "as+", {"c5"})
    net.add_transition({"c5"}, "rs-", {"c6"})
    net.add_transition({"c6"}, "as-", {"c0"})
    net.set_initial(Marking({"c0": 1}))
    return Stg(net, inputs={"rf", "rs"}, outputs={"af", "as"})


def fast_only_client() -> Stg:
    """An environment that only ever issues fast requests."""
    net = PetriNet("client")
    net.add_transition({"k0"}, "rf+", {"k1"})
    net.add_transition({"k1"}, "af+", {"k2"})
    net.add_transition({"k2"}, "rf-", {"k3"})
    net.add_transition({"k3"}, "af-", {"k0"})
    net.set_initial(Marking({"k0": 1}))
    # The client *owns* both request wires; rs simply never toggles.
    # Declaring rs an output (with no transitions) is what lets the
    # rendez-vous composition prune the controller's rs/as behaviour.
    return Stg(net, inputs={"af", "as"}, outputs={"rf", "rs"})


def main() -> None:
    generic = controller()
    client = fast_only_client()
    print(f"generic controller: {generic.net.stats()}")

    # Theorem 5.1: the reduced behaviour is contained in the original.
    print(f"Theorem 5.1 containment: {verify_theorem_51(generic, client)}")

    reduced = simplify_against_environment(generic, client)
    report = reduction_report(generic, reduced)
    print(
        f"reduced controller: {reduced.net.stats()}"
        f"  (states {report.original_states} -> {report.reduced_states})"
    )

    # Synthesize both and compare logic complexity.
    full_impl = synthesize(generic)
    print("\ngeneric logic:")
    print(full_impl.netlist())
    assert verify_implementation(generic, full_impl).ok

    reduced_impl = synthesize(reduced)
    print("\nreduced logic (rs/as never exercised):")
    print(reduced_impl.netlist())
    assert verify_implementation(reduced, reduced_impl).ok

    print(
        f"\nliteral count: {full_impl.literal_count()} ->"
        f" {reduced_impl.literal_count()}"
    )


if __name__ == "__main__":
    main()
