#!/usr/bin/env python
"""The paper's Section 6 case study end to end.

Builds the sender / protocol-translator / receiver design of Figure 4,
verifies consistency of the good design, detects the inconsistency of
the Figure 8 sender, and derives the simplified blocks of Figure 9 with
the Petri net algebra.

Run:  python examples/protocol_translator.py
"""

from repro.core.synthesis import reduction_report, verify_theorem_51
from repro.models.protocol_translator import (
    build_cip,
    inconsistent_sender,
    receiver,
    restricted_sender,
    sender,
    simplified_translator,
    translator,
)
from repro.petri.reachability import ReachabilityGraph
from repro.stg.stg import compose
from repro.verify.receptiveness import check_receptiveness


def main() -> None:
    # ---- Figure 4: the block diagram as a CIP -------------------------
    cip = build_cip()
    cip.validate()
    print(f"CIP {cip.name}: {cip.stats()}")

    # ---- Figures 5-7: the three blocks --------------------------------
    for module in (sender(), translator(), receiver()):
        print(f"  {module.name:12s} {module.net.stats()}")

    # ---- consistency of the good design -------------------------------
    print("\nreceptiveness checks (Propositions 5.5/5.6):")
    print(f"  sender||translator  : {check_receptiveness(sender(), translator())}")
    print(f"  translator||receiver: {check_receptiveness(translator(), receiver())}")

    flat = cip.compose_all()
    graph = ReachabilityGraph(flat.net)
    print(
        f"\nfull composition: {flat.net.stats()},"
        f" {graph.num_states()} states,"
        f" deadlock-free={graph.is_deadlock_free()}"
    )

    # ---- Figure 8: the inconsistent sender ----------------------------
    bad = check_receptiveness(inconsistent_sender(), translator())
    print("\nFigure 8 (inconsistent sender):")
    print(f"  {bad}")
    assert not bad.is_receptive(), "the broken protocol must be detected"

    # ---- Figure 9: environment-driven simplification ------------------
    print("\nFigure 9 (restricted sender => simplified translator):")
    reduced = simplified_translator()
    report = reduction_report(translator(), reduced)
    print(
        f"  translator states: {report.original_states} ->"
        f" {report.reduced_states} (x{report.state_ratio():.2f})"
    )
    print(
        "  Theorem 5.1 (trace containment):",
        verify_theorem_51(translator(), restricted_sender()),
    )

    restricted_system = compose(
        compose(restricted_sender(), translator()), receiver()
    )
    graph = ReachabilityGraph(restricted_system.net)
    print(
        f"\nrestricted full composition: {graph.num_states()} states,"
        f" deadlock-free={graph.is_deadlock_free()}"
    )
    # 'mute' can never be produced without the rec command:
    fired_actions = {
        restricted_system.net.transitions[tid].action
        for tid in graph.fired_tids()
    }
    print(f"  mute~ ever fired: {'mute~' in fired_actions}")


if __name__ == "__main__":
    main()
