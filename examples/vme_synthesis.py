#!/usr/bin/env python
"""End-to-end synthesis of the VME bus controller.

The classic asynchronous-synthesis walk-through: specify the controller
as an STG, discover the CSC conflict, resolve it by inserting an
internal state signal, synthesize speed-independent logic, and validate
the circuit by static checks and closed-loop simulation.

Run:  python examples/vme_synthesis.py
"""

from repro.models.library import vme_bus_controller
from repro.stg.coding import coding_report
from repro.stg.csc_resolution import resolve_csc
from repro.synth.hazards import is_speed_independent
from repro.synth.implementation import synthesize, verify_implementation
from repro.synth.simulate import simulate


def main() -> None:
    # 1. The specification: 5 signals, one concurrent release fork.
    spec = vme_bus_controller()
    spec.validate()
    print(f"specification : {spec}")
    print(f"coding report : {coding_report(spec)}")

    # 2. CSC is broken: two reachable states share a code but require
    #    different outputs.  Resolve by state-signal insertion.
    repaired, insertion = resolve_csc(spec)
    print(
        f"\ninserted {insertion.signal}: rise after transition"
        f" {insertion.rise_after}"
        f" ({spec.net.transitions[insertion.rise_after].action}),"
        f" fall after {insertion.fall_after}"
        f" ({spec.net.transitions[insertion.fall_after].action})"
    )
    print(f"coding report : {coding_report(repaired)}")

    # 3. Synthesize complex gates for every output (and the new state
    #    signal) and verify the excitation functions.
    implementation = synthesize(repaired)
    print("\nnetlist:")
    print(implementation.netlist())
    result = verify_implementation(repaired, implementation)
    print(f"\nstatic check  : {'PASS' if result.ok else 'FAIL'}")
    print(f"speed-independent: {is_speed_independent(repaired, implementation)}")

    # 4. Closed-loop simulation: the specification drives the inputs,
    #    the synthesized logic must produce exactly the allowed outputs.
    trace = simulate(repaired, implementation, steps=300, seed=11)
    print(
        f"simulation    : {len(trace.steps)} events,"
        f" {'clean' if trace.ok() else trace.errors}"
    )


if __name__ == "__main__":
    main()
