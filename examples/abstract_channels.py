#!/usr/bin/env python
"""Abstract rendez-vous channels and their automatic expansion (Section 3).

A producer sends one of three commands over an abstract channel; the
consumer dispatches on the received value.  The channel is then expanded
to a delay-insensitive wire-level protocol — once with a one-hot code
and a 4-phase handshake, once with a dual-rail code — and the expanded
system is verified to still behave like the abstract one.

Run:  python examples/abstract_channels.py
"""

from repro.core.channels import dual_rail, one_hot, receive, send
from repro.core.cip import Cip
from repro.core.expansion import expand_cip
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph
from repro.stg.stg import Stg

COMMANDS = ("load", "store", "halt")


def producer() -> Stg:
    """Chooses a command and sends it; repeats."""
    net = PetriNet("producer")
    for command in COMMANDS:
        net.add_transition({"idle"}, send("cmd", command), {"sent"})
    net.add_transition({"sent"}, "step+", {"idle2"})
    net.add_transition({"idle2"}, "step-", {"idle"})
    net.set_initial(Marking({"idle": 1}))
    return Stg(net, outputs={"step"})


def consumer() -> Stg:
    """Receives a command and reacts with a dedicated output toggle."""
    net = PetriNet("consumer")
    for command in COMMANDS:
        net.add_transition({"wait"}, receive("cmd", command), {f"do_{command}"})
        net.add_transition({f"do_{command}"}, f"ack_{command}~", {"wait"})
    net.set_initial(Marking({"wait": 1}))
    return Stg(net, outputs={f"ack_{c}" for c in COMMANDS})


def main() -> None:
    cip = Cip("channel_demo")
    cip.add_module("producer", producer())
    cip.add_module("consumer", consumer())
    cip.add_channel("cmd", "producer", "consumer", values=COMMANDS)
    cip.validate()
    print(f"abstract CIP: {cip.stats()}")

    abstract = cip.compose_all()
    graph = ReachabilityGraph(abstract.net)
    print(
        f"abstract composition: {abstract.net.stats()},"
        f" {graph.num_states()} states"
    )

    # ---- expansion with a one-hot code + 4-phase handshake -----------
    encoding = one_hot("cmd", list(COMMANDS))
    print(f"\none-hot code valid (Sperner): {encoding.is_valid()}")
    expanded = expand_cip(cip, encodings={"cmd": encoding})
    expanded.validate()
    print(f"expanded CIP wires: {sorted(expanded.wires)}")
    concrete = expanded.compose_all()
    graph = ReachabilityGraph(concrete.net)
    print(
        f"expanded composition: {concrete.net.stats()},"
        f" {graph.num_states()} states,"
        f" deadlock-free={graph.is_deadlock_free()}"
    )

    # ---- the same with a dual-rail (2-bit) code -----------------------
    rail = dual_rail("cmd", 2)
    # dual_rail names values by bit pattern; remap onto our commands.
    from repro.core.channels import Encoding

    remapped = Encoding.of(
        {
            command: rail.code_of(format(index, "02b"))
            for index, command in enumerate(COMMANDS)
        }
    )
    print(f"\ndual-rail code valid: {remapped.is_valid()}")
    rail_expanded = expand_cip(cip, encodings={"cmd": remapped})
    concrete2 = rail_expanded.compose_all()
    graph2 = ReachabilityGraph(concrete2.net)
    print(
        f"dual-rail composition: {concrete2.net.stats()},"
        f" {graph2.num_states()} states,"
        f" deadlock-free={graph2.is_deadlock_free()}"
    )

    # ---- two-phase variant --------------------------------------------
    two_phase = expand_cip(cip, encodings={"cmd": encoding}, protocol="two_phase")
    concrete3 = two_phase.compose_all()
    graph3 = ReachabilityGraph(concrete3.net)
    print(
        f"\ntwo-phase composition: {concrete3.net.stats()},"
        f" {graph3.num_states()} states"
    )


if __name__ == "__main__":
    main()
