#!/usr/bin/env python
"""Quickstart: build two handshake modules, compose, verify, simplify,
synthesize.

Run:  python examples/quickstart.py
"""

from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.analysis import analyze
from repro.stg.stg import compose, hide_signals
from repro.synth.implementation import synthesize, verify_implementation
from repro.verify.receptiveness import check_receptiveness


def main() -> None:
    # 1. Two modules sharing the wires r (master output) and a (slave
    #    output) — the classic 4-phase handshake pair.
    master = four_phase_master()
    slave = four_phase_slave()
    print(f"master: {master}")
    print(f"slave : {slave}")

    # 2. Verify the composition is receptive (Propositions 5.5/5.6):
    #    every output always finds its consumer ready.
    report = check_receptiveness(master, slave)
    print(f"\nreceptiveness: {report}")

    # 3. Compose with the circuit algebra (Definition 4.7 / Section 5.1)
    #    and inspect the behaviour of the closed system.
    system = compose(master, slave)
    print(f"\ncomposed net : {system.net.stats()}")
    print(f"behaviour    : {analyze(system.net)}")

    # 4. Hide the acknowledge wire by net contraction (Definition 4.10):
    #    the visible behaviour is the bare request cycle.
    request_only = hide_signals(system, {"a"})
    print(f"\nafter hide(a): {request_only.net.stats()}")

    # 5. Synthesize the slave into logic and validate the circuit.
    implementation = synthesize(slave)
    print("\nslave netlist:")
    print(implementation.netlist())
    result = verify_implementation(slave, implementation)
    print(f"verification : {'PASS' if result.ok else 'FAIL'}")


if __name__ == "__main__":
    main()
