#!/usr/bin/env python
"""Arbiters need *general* Petri nets (Section 5.1's argument).

The mutual-exclusion arbiter's grant transitions compete for a shared
mutex place while each also needs its own request — a conflict structure
that is neither free-choice nor asymmetric-choice.  This example
classifies the net, proves mutual exclusion structurally (a place
invariant), and exercises the algebra on it.

Run:  python examples/arbiter.py
"""

from repro.models.library import mutex_arbiter
from repro.petri.analysis import analyze
from repro.petri.classify import classify
from repro.petri.reachability import ReachabilityGraph
from repro.petri.structural import p_invariants
from repro.stg.stg import hide_signals


def main() -> None:
    arbiter = mutex_arbiter()
    print(f"arbiter: {arbiter.net.stats()}")

    flags = classify(arbiter.net)
    print(f"net class: {flags.most_specific()}")
    print(f"  free choice        : {flags.free_choice}")
    print(f"  extended free choice: {flags.extended_free_choice}")
    print(f"  asymmetric choice  : {flags.asymmetric_choice}")

    print(f"\nbehaviour: {analyze(arbiter.net)}")

    # Structural proof of mutual exclusion: some P-invariant covers
    # mutex + crit1 + crit2 with weight 1, so their token sum is
    # constant (= 1): both critical sections can never be marked at
    # once, in *any* reachable marking — no state enumeration needed.
    print("\nplace invariants:")
    for invariant in p_invariants(arbiter.net):
        print(f"  {invariant}")

    # The same fact checked exhaustively, for comparison.
    graph = ReachabilityGraph(arbiter.net)
    exclusive = all(
        marking["crit1"] + marking["crit2"] <= 1 for marking in graph.states
    )
    print(f"\nmutual exclusion over {graph.num_states()} states: {exclusive}")

    # The algebra applies to general nets unchanged: hide the grant
    # wires and observe only the request protocol.
    requests_only = hide_signals(arbiter, {"g1", "g2"})
    print(f"\nafter hiding grants: {requests_only.net.stats()}")
    print(f"visible signals: {sorted(requests_only.signals())}")


if __name__ == "__main__":
    main()
