#!/usr/bin/env python
"""Substitutability checking: mirror-based conformance and failures.

A vendor offers three 'drop-in replacements' for a 4-phase slave.  The
mirror construction (the specification's most liberal environment) plus
the Proposition 5.5 receptiveness check decides which ones are safe —
and failures semantics explains *why* the rejected ones fail even
though one of them is trace-equivalent to the spec.

Run:  python examples/conformance_checking.py
"""

from repro.models.library import four_phase_slave
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.stg.stg import Stg
from repro.verify.conformance import check_conformance
from repro.verify.equivalence import deadlock_traces, failures
from repro.verify.language import languages_equal


def pipelined_replacement() -> Stg:
    """Same protocol with an extra internal step: conforming."""
    net = PetriNet("pipelined")
    net.add_transition({"s0"}, "r+", {"s1"})
    net.add_transition({"s1"}, EPSILON, {"s1b"})
    net.add_transition({"s1b"}, "a+", {"s2"})
    net.add_transition({"s2"}, "r-", {"s3"})
    net.add_transition({"s3"}, "a-", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


def eager_replacement() -> Stg:
    """Acknowledges *before* the request: produces an output the
    specification never allows."""
    net = PetriNet("eager")
    net.add_transition({"s0"}, "a+", {"s1"})
    net.add_transition({"s1"}, "r+", {"s2"})
    net.add_transition({"s2"}, "a-", {"s3"})
    net.add_transition({"s3"}, "r-", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


def moody_replacement() -> Stg:
    """Internally chooses, on each cycle, whether it will serve another
    request — trace-contained in the spec, but can refuse service."""
    net = PetriNet("moody")
    net.add_transition({"s0"}, EPSILON, {"serve"})
    net.add_transition({"s0"}, EPSILON, {"sulk"})
    net.add_transition({"serve"}, "r+", {"s1"})
    net.add_transition({"s1"}, "a+", {"s2"})
    net.add_transition({"s2"}, "r-", {"s3"})
    net.add_transition({"s3"}, "a-", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


def main() -> None:
    specification = four_phase_slave()
    candidates = [
        pipelined_replacement(),
        eager_replacement(),
        moody_replacement(),
    ]

    print(f"specification: {specification}")
    for candidate in candidates:
        report = check_conformance(candidate, specification)
        print(f"\n{candidate.net.name:10s}: {report}")

    # The moody replacement is interesting: its *traces* are fine...
    moody = moody_replacement()
    print(
        "\nmoody vs spec, trace languages equal:",
        languages_equal(moody.net, specification.net),
    )
    # ...but failures semantics shows it can refuse r+ after a full
    # handshake (the silent 'sulk' branch): a stable state refusing
    # everything.
    refusals = {
        refusal
        for trace, refusal in failures(moody.net)
        if trace == ()
    }
    print(f"refusal sets after the empty trace: {sorted(map(sorted, refusals))}")
    print(f"deadlock traces of moody: {sorted(deadlock_traces(moody.net))[:3]}")
    print(
        "deadlock traces of the spec:",
        sorted(deadlock_traces(specification.net)),
    )


if __name__ == "__main__":
    main()
