"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io.astg import save_astg
from repro.models.library import four_phase_master, four_phase_slave
from repro.models.protocol_translator import inconsistent_sender


@pytest.fixture()
def master_file(tmp_path):
    path = tmp_path / "master.g"
    save_astg(four_phase_master(), str(path))
    return str(path)


@pytest.fixture()
def slave_file(tmp_path):
    path = tmp_path / "slave.g"
    save_astg(four_phase_slave(), str(path))
    return str(path)


@pytest.fixture()
def case_study_files(tmp_path):
    """The Fig 5/7 sender and translator as .json inputs (their nets
    round-trip through the JSON format, not the astg one)."""
    from repro.io.json_io import save
    from repro.models.protocol_translator import sender, translator

    sender_path = tmp_path / "sender.json"
    translator_path = tmp_path / "translator.json"
    save(sender(), str(sender_path))
    save(translator(), str(translator_path))
    return str(sender_path), str(translator_path)


class TestInfo:
    def test_info_output(self, master_file, capsys):
        assert main(["info", master_file]) == 0
        out = capsys.readouterr().out
        assert "master" in out
        assert "4 places" in out
        assert "live" in out

    def test_info_json_input(self, tmp_path, capsys):
        from repro.io.json_io import save

        path = tmp_path / "m.json"
        save(four_phase_master(), str(path))
        assert main(["info", str(path)]) == 0
        assert "master" in capsys.readouterr().out


class TestCompose:
    def test_compose_writes_output(self, master_file, slave_file, tmp_path, capsys):
        out_path = tmp_path / "system.g"
        assert main(["compose", master_file, slave_file, "-o", str(out_path)]) == 0
        assert out_path.exists()
        from repro.io.astg import load_astg

        system = load_astg(str(out_path))
        assert len(system.net.transitions) == 4

    def test_compose_trim(self, master_file, slave_file, tmp_path):
        out_path = tmp_path / "system.g"
        assert (
            main(
                ["compose", master_file, slave_file, "-o", str(out_path), "--trim"]
            )
            == 0
        )


class TestHide:
    def test_hide_signal(self, master_file, slave_file, tmp_path, capsys):
        composed = tmp_path / "system.g"
        main(["compose", master_file, slave_file, "-o", str(composed)])
        hidden = tmp_path / "hidden.g"
        assert main(["hide", str(composed), "-s", "a", "-o", str(hidden)]) == 0
        from repro.io.astg import load_astg

        result = load_astg(str(hidden))
        assert "a" not in result.signals()


class TestVerify:
    def test_receptive_pair_returns_zero(self, master_file, slave_file, capsys):
        assert main(["verify", master_file, slave_file]) == 0
        assert "receptive" in capsys.readouterr().out

    def test_failure_returns_nonzero(self, slave_file, tmp_path, capsys):
        bad_path = tmp_path / "bad.g"
        from repro.petri.marking import Marking
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("impatient")
        net.add_transition({"m0"}, "r+", {"m1"})
        net.add_transition({"m1"}, "r-", {"m2"})
        net.add_transition({"m2"}, "a+", {"m3"})
        net.add_transition({"m3"}, "a-", {"m0"})
        net.set_initial(Marking({"m0": 1}))
        save_astg(Stg(net, inputs={"a"}, outputs={"r"}), str(bad_path))
        assert main(["verify", str(bad_path), slave_file]) == 1
        assert "NOT receptive" in capsys.readouterr().out


class TestFailurePaths:
    """Input errors are one-line messages on stderr with exit code 2."""

    def test_missing_file(self, capsys):
        assert main(["info", "does_not_exist.g"]) == 2
        err = capsys.readouterr().err
        assert err == "cip: error: no such file: does_not_exist.g\n"

    def test_malformed_astg(self, tmp_path, capsys):
        path = tmp_path / "broken.g"
        path.write_text("this is not an astg file\n.end\n")
        assert main(["info", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("cip: error: cannot parse")
        assert "\n" not in err.rstrip("\n")

    def test_malformed_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["info", str(path)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_unknown_input_extension(self, tmp_path, capsys):
        path = tmp_path / "net.xyz"
        path.write_text("")
        assert main(["info", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unrecognized extension" in err
        assert ".g, .json, .net or .pnml" in err

    def test_unknown_output_extension(self, master_file, tmp_path, capsys):
        target = tmp_path / "out.xyz"
        assert main(["hide", master_file, "-s", "r", "-o", str(target)]) == 2
        assert "unrecognized extension for output" in capsys.readouterr().err
        assert not target.exists()

    def test_malformed_pnml(self, tmp_path, capsys):
        path = tmp_path / "broken.pnml"
        path.write_text('<pnml><net id="n"><place id=')
        assert main(["info", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("cip: error: cannot parse")
        assert "\n" not in err.rstrip("\n")

    def test_malformed_tina(self, tmp_path, capsys):
        path = tmp_path / "broken.net"
        path.write_text("net n\ntr t0 p*2 -> q\n")
        assert main(["info", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("cip: error: cannot parse")
        assert "weight 2" in err
        assert "\n" not in err.rstrip("\n")

    def test_truncated_tina(self, tmp_path, capsys):
        path = tmp_path / "broken.net"
        path.write_text("net n\ntr t0 {unterminated")
        assert main(["info", str(path)]) == 2
        assert "unterminated" in capsys.readouterr().err

    def test_unwritable_output_format_is_clean(self, tmp_path, capsys):
        # A plain-labeled net cannot be written as .g: one line, exit 2,
        # no partial file.
        from repro.io.json_io import save
        from repro.models.paper_figures import fig1_left
        from repro.stg.stg import Stg

        source = tmp_path / "fig1.json"
        save(Stg(fig1_left()), str(source))
        target = tmp_path / "out.g"
        assert main(["convert", str(source), str(target)]) == 2
        err = capsys.readouterr().err
        assert "cip: error: cannot write" in err
        assert "\n" not in err.rstrip("\n")

    def test_verify_bound_exceeded_is_a_clean_error(
        self, case_study_files, capsys
    ):
        sender_path, translator_path = case_study_files
        status = main(
            ["verify", sender_path, translator_path, "--max-states", "10"]
        )
        assert status == 2
        assert "exceeds --max-states=10" in capsys.readouterr().err


class TestConvert:
    def test_g_to_all_formats_and_back(self, master_file, tmp_path, capsys):
        from repro.io.astg import load_astg
        from repro.verify.language import languages_equal

        original = load_astg(master_file)
        previous = master_file
        for suffix in (".json", ".pnml", ".net", ".g"):
            target = tmp_path / f"step{suffix}"
            assert main(["convert", previous, str(target)]) == 0
            assert f"wrote {target}" in capsys.readouterr().out
            previous = str(target)
        final = load_astg(previous)
        assert languages_equal(original.net, final.net)
        assert final.inputs == original.inputs
        assert final.outputs == original.outputs

    def test_every_format_feeds_every_subcommand(self, master_file, tmp_path, capsys):
        for suffix in (".pnml", ".net"):
            target = tmp_path / f"master{suffix}"
            assert main(["convert", master_file, str(target)]) == 0
            capsys.readouterr()
            assert main(["info", str(target)]) == 0
            assert "4 places" in capsys.readouterr().out


class TestVerifyPor:
    def test_por_reports_reduction_and_baseline(
        self, case_study_files, capsys
    ):
        sender_path, translator_path = case_study_files
        assert (
            main(["verify", sender_path, translator_path, "--engine", "por"])
            == 0
        )
        out = capsys.readouterr().out
        assert "# states explored: 228 (por)" in out
        assert (
            "# states reduced : 59/228 markings expanded"
            " with a proper stubborn subset" in out
        )
        assert (
            "# por proviso    : fresh — breadth-first, full expansion"
            " on cycle re-entry" in out
        )
        assert "# eager baseline : 1444 states (228/1444 explored)" in out

    def test_por_stack_proviso_reports_sleep_and_cycle_work(
        self, case_study_files, capsys
    ):
        # The DFS-stack proviso is opt-in on the verify path; its
        # epilogue must name the proviso actually used and surface the
        # sleep-set / cycle-re-expansion counters.
        sender_path, translator_path = case_study_files
        assert (
            main(
                [
                    "verify",
                    sender_path,
                    translator_path,
                    "--engine",
                    "por",
                    "--proviso",
                    "stack",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# por proviso    : stack — depth-first, sleep sets" in out
        assert "cycle re-expansions" in out

    def test_proviso_requires_por_engine(self, case_study_files, capsys):
        sender_path, translator_path = case_study_files
        assert (
            main(
                [
                    "verify",
                    sender_path,
                    translator_path,
                    "--proviso",
                    "stack",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "requires --engine por" in err
        assert err.count("\n") == 1

    def test_por_baseline_unavailable_when_bound_exceeded(
        self, case_study_files, capsys
    ):
        # 300 admits the 228-state reduced space but not the 1444-state
        # full one: the verdict must still be printed, with the baseline
        # marked unavailable rather than silently omitted.
        sender_path, translator_path = case_study_files
        status = main(
            [
                "verify",
                sender_path,
                translator_path,
                "--engine",
                "por",
                "--max-states",
                "300",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "receptive" in out
        assert "# eager baseline : unavailable (bound exceeded)" in out


@pytest.fixture()
def bank_files(tmp_path):
    """A six-channel handshake bank whose explicit product space (4^6
    interleavings) exceeds a 2000-state budget, while every symbolic
    obligation system stays at the one-channel closed-form size."""
    from repro.core.circuit import compose_many
    from repro.io.json_io import save

    channels = 6
    masters = compose_many(
        [
            four_phase_master(req=f"r{i}", ack=f"a{i}", name=f"m{i}")
            for i in range(channels)
        ]
    )
    slaves = compose_many(
        [
            four_phase_slave(req=f"r{i}", ack=f"a{i}", name=f"s{i}")
            for i in range(channels)
        ]
    )
    master_path = tmp_path / "masters.json"
    slave_path = tmp_path / "slaves.json"
    save(masters, str(master_path))
    save(slaves, str(slave_path))
    return str(master_path), str(slave_path)


class TestVerifySymbolic:
    def test_decides_beyond_the_state_budget(self, bank_files, capsys):
        """The acceptance instance: symbolic proves all 24 obligations
        safe under a budget the explicit engines cannot fit."""
        masters, slaves = bank_files
        status = main(
            [
                "verify",
                masters,
                slaves,
                "--engine",
                "symbolic",
                "--method",
                "reachability",
                "--max-states",
                "2000",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "receptive" in out
        assert "# symbolic       : 24/24 obligations proven safe" in out
        assert "# verdict        : conclusive — no state enumerated" in out

    def test_explicit_engine_exceeds_the_same_budget(
        self, bank_files, capsys
    ):
        masters, slaves = bank_files
        status = main(
            [
                "verify",
                masters,
                slaves,
                "--engine",
                "onthefly",
                "--method",
                "reachability",
                "--max-states",
                "2000",
            ]
        )
        assert status == 2
        err = capsys.readouterr().err
        assert "state space exceeds --max-states=2000" in err

    def test_inconclusive_remainder_falls_back(
        self, case_study_files, capsys
    ):
        """sender||translator leaves some obligations undecided; the
        verdict line must say the fallback search settled them."""
        sender_path, translator_path = case_study_files
        status = main(
            [
                "verify",
                sender_path,
                translator_path,
                "--engine",
                "symbolic",
                "--method",
                "reachability",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "receptive" in out
        assert "# symbolic       : " in out
        assert "undecided" in out
        assert (
            "# verdict        : inconclusive remainder fell back to the"
            " on-the-fly search" in out
        )

    def test_symbolic_rejects_parallel(self, master_file, slave_file, capsys):
        status = main(
            [
                "verify",
                master_file,
                slave_file,
                "--engine",
                "symbolic",
                "--parallel",
                "2",
            ]
        )
        assert status == 2
        err = capsys.readouterr().err
        assert "--engine symbolic does not compose with" in err


class TestObservability:
    def test_profile_prints_summary(self, master_file, slave_file, capsys):
        assert (
            main(["verify", master_file, slave_file, "--profile"]) == 0
        )
        out = capsys.readouterr().out
        assert "# profile:" in out
        assert "verify.receptiveness" in out

    def test_profile_does_not_change_the_answer(
        self, master_file, slave_file, capsys
    ):
        assert main(["verify", master_file, slave_file]) == 0
        plain = capsys.readouterr().out
        assert (
            main(["verify", master_file, slave_file, "--profile"]) == 0
        )
        profiled = capsys.readouterr().out
        unprefixed = [
            line
            for line in profiled.splitlines()
            if not line.startswith("#   ") and not line.startswith("# profile")
        ]
        assert plain.splitlines() == unprefixed

    def test_metrics_out_round_trips_schema(
        self, master_file, slave_file, tmp_path, capsys
    ):
        from repro.obs.emit import validate_metrics

        target = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "verify",
                    master_file,
                    slave_file,
                    "--metrics-out",
                    str(target),
                ]
            )
            == 0
        )
        payload = json.loads(target.read_text())
        validate_metrics(payload)
        names = {span["name"] for span in payload["spans"]}
        assert {"verify.receptiveness", "algebra.compose"} <= names
        assert payload["clock"] == "monotonic"

    def test_info_profile_and_metrics(self, master_file, tmp_path, capsys):
        from repro.obs.emit import validate_metrics

        target = tmp_path / "info.json"
        assert (
            main(
                ["info", master_file, "--profile", "--metrics-out", str(target)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# profile:" in out
        payload = json.loads(target.read_text())
        validate_metrics(payload)
        names = {span["name"] for span in payload["spans"]}
        assert {"cli.info.classify", "cli.info.behaviour"} <= names


class TestHideTrim:
    def test_hide_trim_cleans_result(self, master_file, slave_file, tmp_path):
        composed = tmp_path / "system.g"
        main(["compose", master_file, slave_file, "-o", str(composed)])
        plain = tmp_path / "plain.g"
        trimmed = tmp_path / "trimmed.g"
        assert main(["hide", str(composed), "-s", "a", "-o", str(plain)]) == 0
        assert (
            main(
                ["hide", str(composed), "-s", "a", "-o", str(trimmed), "--trim"]
            )
            == 0
        )
        from repro.io.astg import load_astg

        assert len(load_astg(str(trimmed)).net.places) <= len(
            load_astg(str(plain)).net.places
        )


class TestSimplify:
    def test_simplify_roundtrip(self, master_file, slave_file, tmp_path, capsys):
        out_path = tmp_path / "reduced.g"
        assert (
            main(["simplify", slave_file, master_file, "-o", str(out_path)]) == 0
        )
        assert "states" in capsys.readouterr().out


class TestSynth:
    def test_synth_prints_netlist(self, slave_file, capsys):
        assert main(["synth", slave_file]) == 0
        out = capsys.readouterr().out
        assert "a = r" in out
        assert "PASS" in out

    def test_synth_rejects_inconsistent(self, tmp_path, capsys):
        path = tmp_path / "bad.g"
        from repro.petri.marking import Marking
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("double_rise")
        net.add_transition({"p0"}, "z+", {"p1"})
        net.add_transition({"p1"}, "z+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        save_astg(Stg(net, outputs={"z"}), str(path))
        assert main(["synth", str(path)]) == 1


class TestDot:
    def test_dot_output(self, master_file, capsys):
        assert main(["dot", master_file]) == 0
        assert "digraph" in capsys.readouterr().out


class TestStategraph:
    def test_consistent_stg_reports_ok(self, master_file, capsys):
        assert main(["stategraph", master_file]) == 0
        out = capsys.readouterr().out
        assert "consistent   : True" in out
        assert "CSC          : True" in out

    def test_inconsistent_stg_returns_nonzero(self, tmp_path, capsys):
        from repro.petri.marking import Marking
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("double_rise")
        net.add_transition({"p0"}, "z+", {"p1"})
        net.add_transition({"p1"}, "z+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        path = tmp_path / "bad.g"
        save_astg(Stg(net, outputs={"z"}), str(path))
        assert main(["stategraph", str(path)]) == 1


class TestReduce:
    def test_reduce_removes_epsilons(self, tmp_path, capsys):
        from repro.petri.marking import Marking
        from repro.petri.net import EPSILON, PetriNet
        from repro.io.astg import load_astg
        from repro.stg.stg import Stg

        net = PetriNet("padded")
        net.add_transition({"p0"}, "z+", {"p1"})
        net.add_transition({"p1"}, EPSILON, {"p2"})
        net.add_transition({"p2"}, "z-", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        source = tmp_path / "in.g"
        target = tmp_path / "out.g"
        save_astg(Stg(net, outputs={"z"}), str(source))
        assert main(["reduce", str(source), "-o", str(target)]) == 0
        reduced = load_astg(str(target))
        assert not reduced.net.transitions_with_action(EPSILON)


class TestParallelFlags:
    """--parallel / --memory-budget: loud one-line rejection of invalid
    values (exit 2), identical verdicts to serial on the happy path."""

    @pytest.mark.parametrize("value", ["0", "-3", "65", "1.5", "lots"])
    def test_invalid_parallel_value(self, master_file, capsys, value):
        assert main(["info", master_file, "--parallel", value]) == 2
        err = capsys.readouterr().err
        assert err.startswith("cip: error: invalid --parallel value")
        assert err.count("\n") == 1

    @pytest.mark.parametrize("value", ["", "big", "-5", "1.5M", "M"])
    def test_invalid_memory_budget_value(self, master_file, capsys, value):
        assert main(["info", master_file, "--memory-budget", value]) == 2
        err = capsys.readouterr().err
        assert err.startswith("cip: error: invalid --memory-budget value")
        assert err.count("\n") == 1

    def test_por_engine_conflicts_with_parallel(
        self, master_file, slave_file, capsys
    ):
        assert (
            main(
                [
                    "verify",
                    master_file,
                    slave_file,
                    "--engine",
                    "por",
                    "--parallel",
                    "2",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        # The rejection must name the reason and point at the serial
        # por path, not just refuse the combination.
        assert "does not compose with --parallel" in err
        assert "inherently order-sensitive" in err
        assert "run por serially" in err
        assert "--engine eager or onthefly" in err
        assert err.count("\n") == 1

    def test_por_engine_conflicts_with_memory_budget(
        self, master_file, slave_file, capsys
    ):
        assert (
            main(
                [
                    "verify",
                    master_file,
                    slave_file,
                    "--engine",
                    "por",
                    "--memory-budget",
                    "64K",
                ]
            )
            == 2
        )
        assert "does not compose" in capsys.readouterr().err

    def test_parallel_verify_matches_serial(
        self, master_file, slave_file, capsys
    ):
        assert main(["verify", master_file, slave_file]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["verify", master_file, slave_file, "--parallel", "2"]) == 0
        )
        parallel = capsys.readouterr().out
        assert "# parallel       : 2 worker(s), memory budget default" in (
            parallel
        )
        # Everything except the parallel banner is byte-identical.
        stripped = "".join(
            line
            for line in parallel.splitlines(keepends=True)
            if not line.startswith("# parallel")
        )
        assert stripped == serial

    def test_memory_budget_verify_matches_serial(
        self, master_file, slave_file, capsys
    ):
        assert main(["verify", master_file, slave_file]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["verify", master_file, slave_file, "--memory-budget", "0"])
            == 0
        )
        parallel = capsys.readouterr().out
        assert "memory budget 0" in parallel
        stripped = "".join(
            line
            for line in parallel.splitlines(keepends=True)
            if not line.startswith("# parallel")
        )
        assert stripped == serial

    def test_info_parallel_output_matches_serial(self, master_file, capsys):
        assert main(["info", master_file]) == 0
        serial = capsys.readouterr().out
        assert main(["info", master_file, "--parallel", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_bench_records_worker_count_in_payloads(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        save_astg(four_phase_master(), str(corpus / "master.g"))
        out_dir = tmp_path / "obs"
        assert (
            main(
                [
                    "bench",
                    str(corpus),
                    "--engines",
                    "eager,onthefly",
                    "--backends",
                    "compiled",
                    "--max-states",
                    "5000",
                    "--parallel",
                    "2",
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        payloads = sorted(out_dir.glob("*.obs.json"))
        assert payloads
        for payload_path in payloads:
            payload = json.loads(payload_path.read_text())
            assert payload["gauges"]["bench.workers"] == 2
