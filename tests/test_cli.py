"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io.astg import save_astg
from repro.models.library import four_phase_master, four_phase_slave
from repro.models.protocol_translator import inconsistent_sender


@pytest.fixture()
def master_file(tmp_path):
    path = tmp_path / "master.g"
    save_astg(four_phase_master(), str(path))
    return str(path)


@pytest.fixture()
def slave_file(tmp_path):
    path = tmp_path / "slave.g"
    save_astg(four_phase_slave(), str(path))
    return str(path)


class TestInfo:
    def test_info_output(self, master_file, capsys):
        assert main(["info", master_file]) == 0
        out = capsys.readouterr().out
        assert "master" in out
        assert "4 places" in out
        assert "live" in out

    def test_info_json_input(self, tmp_path, capsys):
        from repro.io.json_io import save

        path = tmp_path / "m.json"
        save(four_phase_master(), str(path))
        assert main(["info", str(path)]) == 0
        assert "master" in capsys.readouterr().out


class TestCompose:
    def test_compose_writes_output(self, master_file, slave_file, tmp_path, capsys):
        out_path = tmp_path / "system.g"
        assert main(["compose", master_file, slave_file, "-o", str(out_path)]) == 0
        assert out_path.exists()
        from repro.io.astg import load_astg

        system = load_astg(str(out_path))
        assert len(system.net.transitions) == 4

    def test_compose_trim(self, master_file, slave_file, tmp_path):
        out_path = tmp_path / "system.g"
        assert (
            main(
                ["compose", master_file, slave_file, "-o", str(out_path), "--trim"]
            )
            == 0
        )


class TestHide:
    def test_hide_signal(self, master_file, slave_file, tmp_path, capsys):
        composed = tmp_path / "system.g"
        main(["compose", master_file, slave_file, "-o", str(composed)])
        hidden = tmp_path / "hidden.g"
        assert main(["hide", str(composed), "-s", "a", "-o", str(hidden)]) == 0
        from repro.io.astg import load_astg

        result = load_astg(str(hidden))
        assert "a" not in result.signals()


class TestVerify:
    def test_receptive_pair_returns_zero(self, master_file, slave_file, capsys):
        assert main(["verify", master_file, slave_file]) == 0
        assert "receptive" in capsys.readouterr().out

    def test_failure_returns_nonzero(self, slave_file, tmp_path, capsys):
        bad_path = tmp_path / "bad.g"
        from repro.petri.marking import Marking
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("impatient")
        net.add_transition({"m0"}, "r+", {"m1"})
        net.add_transition({"m1"}, "r-", {"m2"})
        net.add_transition({"m2"}, "a+", {"m3"})
        net.add_transition({"m3"}, "a-", {"m0"})
        net.set_initial(Marking({"m0": 1}))
        save_astg(Stg(net, inputs={"a"}, outputs={"r"}), str(bad_path))
        assert main(["verify", str(bad_path), slave_file]) == 1
        assert "NOT receptive" in capsys.readouterr().out


class TestSimplify:
    def test_simplify_roundtrip(self, master_file, slave_file, tmp_path, capsys):
        out_path = tmp_path / "reduced.g"
        assert (
            main(["simplify", slave_file, master_file, "-o", str(out_path)]) == 0
        )
        assert "states" in capsys.readouterr().out


class TestSynth:
    def test_synth_prints_netlist(self, slave_file, capsys):
        assert main(["synth", slave_file]) == 0
        out = capsys.readouterr().out
        assert "a = r" in out
        assert "PASS" in out

    def test_synth_rejects_inconsistent(self, tmp_path, capsys):
        path = tmp_path / "bad.g"
        from repro.petri.marking import Marking
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("double_rise")
        net.add_transition({"p0"}, "z+", {"p1"})
        net.add_transition({"p1"}, "z+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        save_astg(Stg(net, outputs={"z"}), str(path))
        assert main(["synth", str(path)]) == 1


class TestDot:
    def test_dot_output(self, master_file, capsys):
        assert main(["dot", master_file]) == 0
        assert "digraph" in capsys.readouterr().out


class TestStategraph:
    def test_consistent_stg_reports_ok(self, master_file, capsys):
        assert main(["stategraph", master_file]) == 0
        out = capsys.readouterr().out
        assert "consistent   : True" in out
        assert "CSC          : True" in out

    def test_inconsistent_stg_returns_nonzero(self, tmp_path, capsys):
        from repro.petri.marking import Marking
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("double_rise")
        net.add_transition({"p0"}, "z+", {"p1"})
        net.add_transition({"p1"}, "z+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        path = tmp_path / "bad.g"
        save_astg(Stg(net, outputs={"z"}), str(path))
        assert main(["stategraph", str(path)]) == 1


class TestReduce:
    def test_reduce_removes_epsilons(self, tmp_path, capsys):
        from repro.petri.marking import Marking
        from repro.petri.net import EPSILON, PetriNet
        from repro.io.astg import load_astg
        from repro.stg.stg import Stg

        net = PetriNet("padded")
        net.add_transition({"p0"}, "z+", {"p1"})
        net.add_transition({"p1"}, EPSILON, {"p2"})
        net.add_transition({"p2"}, "z-", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        source = tmp_path / "in.g"
        target = tmp_path / "out.g"
        save_astg(Stg(net, outputs={"z"}), str(source))
        assert main(["reduce", str(source), "-o", str(target)]) == 0
        reduced = load_astg(str(target))
        assert not reduced.net.transitions_with_action(EPSILON)
