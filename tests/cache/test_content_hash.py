"""Pins for the canonical content hash (:mod:`repro.cache.content`).

The load-format invariance pin is the soundness anchor of the whole
cache: if two formats of the same net ever hashed differently the cache
would merely miss, but if two *different* nets ever hashed equal the
cache would serve wrong verdicts.  So this module pins both directions
on the checked-in corpus and on targeted mutations.
"""

from collections import defaultdict
from pathlib import Path

import pytest

from repro.cache.content import (
    derived_key,
    hashable,
    net_content_hash,
    semantic_key,
    stg_content_hash,
)
from repro.io.formats import load_stg
from repro.models.library import four_phase_master
from repro.stg.guards import parse_guard


def _format_groups(corpus_paths) -> dict[str, list[Path]]:
    groups = defaultdict(list)
    for path in corpus_paths:
        groups[path.stem].append(path)
    return {stem: paths for stem, paths in groups.items() if len(paths) > 1}


class TestFormatInvariance:
    def test_corpus_multi_format_stems_hash_equal(self, corpus_paths):
        """Every corpus net checked in under several formats hashes
        identically from each of them — net and STG hash alike."""
        groups = _format_groups(corpus_paths)
        assert groups, "corpus no longer has multi-format instances"
        for stem, paths in groups.items():
            stgs = [load_stg(str(path)) for path in paths]
            net_hashes = {net_content_hash(stg.net) for stg in stgs}
            stg_hashes = {stg_content_hash(stg) for stg in stgs}
            assert len(net_hashes) == 1, f"{stem}: net hashes diverge"
            assert len(stg_hashes) == 1, f"{stem}: stg hashes diverge"

    def test_corpus_distinct_nets_hash_distinct(self, corpus_paths):
        by_stem = {}
        for path in corpus_paths:
            by_stem.setdefault(path.stem, path)
        hashes = {
            stem: net_content_hash(load_stg(str(path)).net)
            for stem, path in by_stem.items()
        }
        assert len(set(hashes.values())) == len(hashes)

    def test_json_roundtrip_preserves_hash(self, tmp_path, corpus_paths):
        from repro.io.formats import save_stg

        source = load_stg(str(corpus_paths[0]))
        target = tmp_path / "roundtrip.json"
        save_stg(source, str(target))
        assert net_content_hash(load_stg(str(target)).net) == net_content_hash(
            source.net
        )


class TestMutationSensitivity:
    def net(self):
        return four_phase_master().net

    def test_structural_mutations_change_hash(self):
        baseline = net_content_hash(self.net())

        renamed = self.net()
        renamed.name = "other"
        assert net_content_hash(renamed) != baseline

        extra_place = self.net()
        extra_place.add_place("scratch")
        assert net_content_hash(extra_place) != baseline

        extra_token = self.net()
        place = sorted(extra_token.places)[0]
        extra_token.add_place(place, tokens=1)
        assert net_content_hash(extra_token) != baseline

        dropped = self.net()
        dropped.remove_transition(sorted(dropped.transitions)[0])
        assert net_content_hash(dropped) != baseline

    def test_guard_changes_hash(self):
        baseline = self.net()
        tid = sorted(baseline.transitions)[0]
        place = sorted(baseline.transitions[tid].preset)[0]
        guarded = self.net()
        guarded.set_guard(place, tid, parse_guard("a"))
        assert net_content_hash(guarded) != net_content_hash(baseline)
        differently = self.net()
        differently.set_guard(place, tid, parse_guard("!a"))
        assert net_content_hash(differently) != net_content_hash(guarded)

    def test_hash_tracks_mutation_and_back(self):
        net = self.net()
        before = net_content_hash(net)
        transition = net.add_transition(["x"], "t", ["y"])
        assert net_content_hash(net) != before
        net.remove_transition(transition.tid)
        net.remove_place("x")
        net.remove_place("y")
        # The label lingers in the alphabet — and the hash covers the
        # alphabet, so the net is still distinguishable ...
        assert net_content_hash(net) != before
        net.actions.discard("t")
        # ... and only the full structural undo restores the hash.
        assert net_content_hash(net) == before


class TestHashability:
    def test_guard_fragment_is_hashable(self):
        net = four_phase_master().net
        assert hashable(net)
        tid = sorted(net.transitions)[0]
        place = sorted(net.transitions[tid].preset)[0]
        net.set_guard(place, tid, parse_guard("a & !b"))
        assert hashable(net)

    def test_opaque_guard_is_not(self):
        net = four_phase_master().net
        tid = sorted(net.transitions)[0]
        place = sorted(net.transitions[tid].preset)[0]
        net.set_guard(place, tid, lambda marking: True)
        assert not hashable(net)

    def test_method_matches_module_function(self):
        net = four_phase_master().net
        assert net.content_hash() == net_content_hash(net)


class TestKeys:
    def test_semantic_key_orders_parts(self):
        assert semantic_key("language", "a", "b") != semantic_key(
            "language", "b", "a"
        )
        assert semantic_key("language", "a", "b") == semantic_key(
            "language", "a", "b"
        )

    def test_derived_key_separates_params(self):
        operands = ["x" * 64, "y" * 64]
        assert derived_key("parallel", operands, sync=None) != derived_key(
            "parallel", operands, sync=["a"]
        )
        assert derived_key("parallel", operands, sync=None) != derived_key(
            "choice", operands, sync=None
        )
