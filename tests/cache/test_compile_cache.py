"""Compile-cache tests (:mod:`repro.cache.compilecache`).

Two properties carry the weight: a warm restore must be *exactly* the
cold lowering (same codec, bound, certificate, index tuples — so the
explorers behave identically), and a tampered artifact must degrade to
a cold recompile, never to a wrong bound (the certificate is re-verified
in exact integer arithmetic on every restore).
"""

import json

import pytest

from repro.cache import compilecache
from repro.cache.content import net_content_hash
from repro.cache.store import activated
from repro.io.formats import load_stg
from repro.models.library import four_phase_master
from repro.obs import metrics as obs


@pytest.fixture()
def translator_net(corpus_dir):
    return load_stg(str(corpus_dir / "fig7_translator.net")).net


def _fields(cnet) -> tuple:
    return (
        cnet.place_names,
        cnet.codec,
        cnet.token_bound,
        cnet.certificate,
        cnet.tids,
        cnet.pre,
        cnet.consume,
        cnet.produce,
        cnet.initial_state,
        cnet.initial_enabled,
    )


class TestRestore:
    def test_warm_restore_equals_cold_compile(self, tmp_path, translator_net):
        with activated(tmp_path):
            with obs.record() as cold_rec:
                cold = compilecache.compile_net_cached(translator_net)
            with obs.record() as warm_rec:
                warm = compilecache.compile_net_cached(translator_net)
        assert _fields(cold) == _fields(warm)
        cold_counters = cold_rec.to_dict()["counters"]
        warm_counters = warm_rec.to_dict()["counters"]
        assert cold_counters.get("compile.nets") == 1
        assert "compile.nets" not in warm_counters
        assert warm_counters.get("cache.compile.restored") == 1

    def test_certificate_kinds_round_trip(self, tmp_path, corpus_paths):
        """Every corpus net restores exactly, whatever its certificate
        kind (conservative, LP weights, or none at all)."""
        seen = set()
        with activated(tmp_path):
            for path in corpus_paths:
                net = load_stg(str(path)).net
                cold = compilecache.compile_net_cached(net)
                net._compiled = None
                warm = compilecache.compile_net_cached(net)
                assert _fields(cold) == _fields(warm), path.name
                certificate = cold.certificate
                seen.add(certificate["kind"] if certificate else None)
        assert "conservative" in seen
        assert "weights" in seen

    def test_no_store_means_cold_compile(self, translator_net):
        with obs.record() as recorder:
            compilecache.compile_net_cached(translator_net)
        counters = recorder.to_dict()["counters"]
        assert counters.get("compile.nets") == 1
        assert "cache.hits" not in counters


class TestTampering:
    def artifact_path(self, store_dir, net):
        from repro.cache.store import ArtifactStore

        return ArtifactStore(store_dir).path_for(
            compilecache.KIND, net_content_hash(net)
        )

    def tamper(self, path, mutate) -> None:
        envelope = json.loads(path.read_text(encoding="utf-8"))
        mutate(envelope["data"])
        path.write_text(json.dumps(envelope), encoding="utf-8")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda data: data["certificate"].__setitem__("weights", [1] * 26),
            lambda data: data["certificate"].__setitem__("scale", 0),
            lambda data: data["certificate"].__setitem__("kind", "bogus"),
            lambda data: data.__setitem__("token_bound", 1),
            lambda data: data.__setitem__("codec", "wide"),
            lambda data: data.__setitem__("place_order", []),
            lambda data: data.__setitem__("tids", [99]),
            lambda data: data.pop("pre"),
        ],
        ids=[
            "forged-weights",
            "zero-scale",
            "unknown-kind",
            "forged-bound",
            "forged-codec",
            "wrong-places",
            "wrong-tids",
            "missing-field",
        ],
    )
    def test_tampered_artifact_recompiles_cold(
        self, tmp_path, translator_net, mutate
    ):
        with activated(tmp_path):
            cold = compilecache.compile_net_cached(translator_net)
            assert cold.certificate["kind"] == "weights"
            path = self.artifact_path(tmp_path, translator_net)
            self.tamper(path, mutate)
            with obs.record() as recorder:
                recovered = compilecache.compile_net_cached(translator_net)
        assert _fields(recovered) == _fields(cold)
        counters = recorder.to_dict()["counters"]
        assert counters.get("cache.compiled.corrupt") == 1
        assert counters.get("compile.nets") == 1

    def test_non_invariant_weights_rejected(self, tmp_path, translator_net):
        """Weights that are not a place invariant (w . produce >
        w . consume somewhere) must fail the exact re-check even when
        every shape test passes."""
        with activated(tmp_path):
            cold = compilecache.compile_net_cached(translator_net)
            weights = list(cold.certificate["weights"])
            # Inflate the weight of some produced-only place so a firing
            # strictly increases the weighted total.
            target = next(
                place
                for t in translator_net.sorted_transitions()
                for place in t.produce
            )
            index = cold.place_names.index(target)
            forged = dict(cold.certificate)
            forged["weights"] = list(weights)
            forged["weights"][index] = weights[index] + 64_000
            path = self.artifact_path(tmp_path, translator_net)

            def mutate(data):
                data["certificate"] = forged

            self.tamper(path, mutate)
            recovered = compilecache.compile_net_cached(translator_net)
        assert _fields(recovered) == _fields(cold)


class TestMutationInvalidation:
    """Satellite pin: ``PetriNet.compiled()`` memoizes per object and
    every mutating method drops the memo, so no engine can ever observe
    stale indices — with or without an artifact store active."""

    def test_identity_memo(self):
        net = four_phase_master().net
        assert net.compiled() is net.compiled()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda net: net.add_transition(["p_new"], "act", ["q_new"]),
            lambda net: net.remove_transition(sorted(net.transitions)[0]),
            lambda net: net.add_place("p_extra", tokens=2),
            lambda net: net.add_place("p_plain"),
            lambda net: net.set_initial(dict(net.initial.items())),
        ],
        ids=[
            "add_transition",
            "remove_transition",
            "add_place_tokens",
            "add_place",
            "set_initial",
        ],
    )
    def test_mutations_invalidate(self, mutate):
        net = four_phase_master().net
        before = net.compiled()
        mutate(net)
        after = net.compiled()
        assert after is not before
        # The fresh lowering reflects the mutated net exactly.
        assert after.place_names == tuple(sorted(net.places))
        assert list(after.tids) == sorted(net.transitions)

    def test_remove_place_invalidates(self):
        net = four_phase_master().net
        net.add_place("floating")
        before = net.compiled()
        net.remove_place("floating")
        after = net.compiled()
        assert after is not before
        assert "floating" not in after.place_names

    def test_stale_indices_never_served_with_store(self, tmp_path):
        """The cross product of both caches: object-level mutation must
        force a re-lookup, and the re-lookup must key on the *new*
        content (a fresh artifact, not the stale one)."""
        with activated(tmp_path):
            net = four_phase_master().net
            before = net.compiled()
            added = net.add_transition(
                [sorted(net.places)[0]], "fresh!", ["p_new"]
            )
            after = net.compiled()
            assert added.tid in after.tids
            assert added.tid not in before.tids
            assert "p_new" in after.place_names
