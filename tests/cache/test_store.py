"""Robustness tests for the artifact store (:mod:`repro.cache.store`).

The invariant under test everywhere: *any* defect on the load side —
missing, truncated, garbage, mislabeled, version-skewed — degrades to a
cache miss (counted as ``cache.corrupt`` where a file existed), never to
an exception or a wrong payload.
"""

import json
import multiprocessing

import pytest

from repro.cache import store as store_mod
from repro.cache.store import (
    ArtifactStore,
    activated,
    active_store,
    deactivated,
    default_cache_dir,
)
from repro.obs import metrics as obs


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path)


KEY = "ab" + "0" * 62


class TestRoundTrip:
    def test_store_then_load(self, store):
        store.store("verdict", KEY, {"answer": 42})
        assert store.load("verdict", KEY) == {"answer": 42}

    def test_missing_is_a_miss(self, store):
        assert store.load("verdict", KEY) is None

    def test_kinds_are_disjoint(self, store):
        store.store("verdict", KEY, {"kind": "v"})
        assert store.load("compiled", KEY) is None

    def test_fanout_layout(self, store, tmp_path):
        store.store("verdict", KEY, {})
        expected = (
            tmp_path
            / f"v{store_mod.SCHEMA_VERSION}"
            / "verdict"
            / KEY[:2]
            / f"{KEY}.json"
        )
        assert expected.is_file()

    def test_atomic_no_partial_files_left(self, store, tmp_path):
        store.store("verdict", KEY, {"x": 1})
        leftovers = [
            p
            for p in tmp_path.rglob("*")
            if p.is_file() and not p.name.endswith(".json")
        ]
        assert leftovers == []


class TestCorruption:
    def corrupt(self, store, text: str) -> None:
        path = store.path_for("verdict", KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    @pytest.mark.parametrize(
        "payload",
        [
            "",
            "not json at all {{{",
            '{"schema": "cip.cache/v1", "kind": "verdict"',  # truncated
            json.dumps({"schema": "something/else", "kind": "verdict",
                        "key": KEY, "data": {}}),
            json.dumps({"schema": "cip.cache/v1", "kind": "compiled",
                        "key": KEY, "data": {}}),
            json.dumps({"schema": "cip.cache/v1", "kind": "verdict",
                        "key": "f" * 64, "data": {}}),
            json.dumps({"schema": "cip.cache/v1", "kind": "verdict",
                        "key": KEY, "data": "not a dict"}),
            json.dumps([1, 2, 3]),
        ],
        ids=[
            "empty",
            "garbage",
            "truncated",
            "wrong-schema",
            "wrong-kind",
            "wrong-key",
            "non-dict-data",
            "non-dict-envelope",
        ],
    )
    def test_any_defect_is_a_counted_miss(self, store, payload):
        self.corrupt(store, payload)
        with obs.record() as recorder:
            assert store.load("verdict", KEY) is None
        counters = recorder.to_dict()["counters"]
        assert counters.get("cache.corrupt") == 1
        assert "cache.hits" not in counters

    def test_corrupt_entry_can_be_overwritten(self, store):
        self.corrupt(store, "garbage")
        store.store("verdict", KEY, {"fresh": True})
        assert store.load("verdict", KEY) == {"fresh": True}


class TestSchemaVersion:
    def test_version_bump_orphans_old_entries(self, tmp_path, monkeypatch):
        old = ArtifactStore(tmp_path)
        old.store("verdict", KEY, {"era": "old"})
        monkeypatch.setattr(
            store_mod, "SCHEMA_VERSION", store_mod.SCHEMA_VERSION + 1
        )
        new = ArtifactStore(tmp_path)
        assert new.load("verdict", KEY) is None
        new.store("verdict", KEY, {"era": "new"})
        assert new.load("verdict", KEY) == {"era": "new"}
        # The old tree is untouched, merely unreachable.
        monkeypatch.undo()
        assert ArtifactStore(tmp_path).load("verdict", KEY) == {"era": "old"}


class TestActivation:
    def test_library_default_is_inactive(self):
        assert active_store() is None

    def test_activated_restores_previous(self, tmp_path):
        with activated(tmp_path / "outer") as outer:
            assert active_store() is outer
            with activated(tmp_path / "inner") as inner:
                assert active_store() is inner
            assert active_store() is outer
        assert active_store() is None

    def test_deactivated_masks_active_store(self, tmp_path):
        with activated(tmp_path):
            with deactivated():
                assert active_store() is None
            assert active_store() is not None

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CIP_CACHE_DIR", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"
        monkeypatch.delenv("CIP_CACHE_DIR")
        assert default_cache_dir().name == "cip"


def _writer(root: str, index: int) -> None:
    store = ArtifactStore(root)
    for round_ in range(25):
        store.store("verdict", KEY, {"writer": index, "round": round_})
        store.load("verdict", KEY)


class TestConcurrency:
    def test_racing_writers_never_corrupt(self, tmp_path):
        """Many processes hammering one key: readers must always see a
        complete artifact from *some* writer, never a torn one."""
        processes = [
            multiprocessing.Process(target=_writer, args=(str(tmp_path), i))
            for i in range(4)
        ]
        for process in processes:
            process.start()
        store = ArtifactStore(tmp_path)
        observed = 0
        while any(p.is_alive() for p in processes):
            data = store.load("verdict", KEY)
            if data is not None:
                assert set(data) == {"writer", "round"}
                observed += 1
        for process in processes:
            process.join()
            assert process.exitcode == 0
        final = store.load("verdict", KEY)
        assert final is not None and final["round"] == 24

    def test_unwritable_root_degrades_silently(self, tmp_path):
        # A plain file where the root should be: every mkdir/open under
        # it fails with OSError, which must surface as silent misses
        # (chmod tricks don't work here — the suite may run as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way", encoding="utf-8")
        store = ArtifactStore(blocker / "cache")
        store.store("verdict", KEY, {"x": 1})  # swallowed
        assert store.load("verdict", KEY) is None
        assert blocker.read_text(encoding="utf-8") == "in the way"
