"""Cold/warm differential tests across the CLI and the bench sweep.

The contract pinned here is the strongest form of cache transparency:
with a *populated* cache, ``--no-cache`` output is byte-identical to
cached output, and a cold store produces the same observable results as
a warm one (only ``cached`` provenance flags and timings may differ).
"""

import json

import pytest

from repro.bench.corpus import diff_bench_dirs, run_instance
from repro.cache.store import activated
from repro.cli import main
from repro.io.astg import save_astg
from repro.models.library import four_phase_master, four_phase_slave


@pytest.fixture()
def master_file(tmp_path):
    path = tmp_path / "master.g"
    save_astg(four_phase_master(), str(path))
    return str(path)


@pytest.fixture()
def slave_file(tmp_path):
    path = tmp_path / "slave.g"
    save_astg(four_phase_slave(), str(path))
    return str(path)


def _cache_files(cache_dir) -> list:
    return sorted(p for p in cache_dir.rglob("*.json") if p.is_file())


class TestRunInstanceDifferential:
    def test_cold_warm_cells_and_payloads_agree(self, tmp_path, corpus_dir):
        path = corpus_dir / "fig7_translator.net"
        with activated(tmp_path / "cache"):
            cold = run_instance(path, max_states=20_000)
            warm = run_instance(path, max_states=20_000)
        assert cold.cells == warm.cells  # `cached` is compare-excluded
        # The cold run computes at least its first full-space cell; the
        # rest may already share it through the store (within-run reuse
        # is the designed behaviour, not a leak).
        assert not cold.cells[0].cached
        assert cold.disagreements == warm.disagreements == []
        # The warm run restores every non-symbolic cell from the store.
        restorable = [c for c in warm.cells if c.engine != "symbolic"]
        assert restorable and all(cell.cached for cell in restorable)

    def test_no_store_differential_unchanged(self, corpus_dir):
        path = corpus_dir / "fig7_translator.net"
        first = run_instance(path, max_states=20_000)
        second = run_instance(path, max_states=20_000)
        assert first.cells == second.cells
        assert not any(cell.cached for cell in first.cells + second.cells)


class TestCliVerifyParity:
    def run(self, capsys, master_file, slave_file, *flags) -> str:
        assert main(["verify", master_file, slave_file, *flags]) == 0
        return capsys.readouterr().out

    def test_no_cache_bytes_equal_warm_bytes(
        self, tmp_path, capsys, master_file, slave_file
    ):
        cache_dir = tmp_path / "cache"
        flags = ("--cache-dir", str(cache_dir))
        cold = self.run(capsys, master_file, slave_file, *flags)
        assert _cache_files(cache_dir), "cold run must populate the store"
        warm = self.run(capsys, master_file, slave_file, *flags)
        bypass = self.run(capsys, master_file, slave_file, "--no-cache")
        assert cold == warm == bypass

    def test_bypass_writes_nothing(
        self, tmp_path, capsys, master_file, slave_file, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.delenv("CIP_NO_CACHE", raising=False)
        monkeypatch.setenv("CIP_CACHE_DIR", str(cache_dir))
        self.run(capsys, master_file, slave_file, "--no-cache")
        assert not cache_dir.exists()

    def test_corrupted_store_is_survivable(
        self, tmp_path, capsys, master_file, slave_file
    ):
        cache_dir = tmp_path / "cache"
        flags = ("--cache-dir", str(cache_dir))
        cold = self.run(capsys, master_file, slave_file, *flags)
        for artifact in _cache_files(cache_dir):
            artifact.write_text("garbage {{", encoding="utf-8")
        recovered = self.run(capsys, master_file, slave_file, *flags)
        assert recovered == cold


class TestCliFlagPrecedence:
    def test_both_flags_is_an_error(self, tmp_path, capsys, master_file):
        code = main(
            ["info", master_file, "--no-cache", "--cache-dir", str(tmp_path)]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cache_dir_overrides_cip_no_cache(
        self, tmp_path, capsys, master_file, monkeypatch
    ):
        # conftest exports CIP_NO_CACHE=1 for hermeticity; an explicit
        # --cache-dir must still win over that ambient opt-out.
        monkeypatch.setenv("CIP_NO_CACHE", "1")
        cache_dir = tmp_path / "cache"
        assert main(["info", master_file, "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert _cache_files(cache_dir)

    def test_cip_no_cache_disables_by_default(
        self, tmp_path, capsys, master_file, monkeypatch
    ):
        monkeypatch.setenv("CIP_NO_CACHE", "1")
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("CIP_CACHE_DIR", str(cache_dir))
        assert main(["info", master_file]) == 0
        capsys.readouterr()
        assert not cache_dir.exists()

    def test_cip_cache_dir_env_selects_root(
        self, tmp_path, capsys, master_file, monkeypatch
    ):
        monkeypatch.delenv("CIP_NO_CACHE", raising=False)
        cache_dir = tmp_path / "envcache"
        monkeypatch.setenv("CIP_CACHE_DIR", str(cache_dir))
        assert main(["info", master_file]) == 0
        capsys.readouterr()
        assert _cache_files(cache_dir)


class TestCliBenchParity:
    def bench(self, capsys, corpus_dir, out_dir, *flags) -> str:
        code = main(
            [
                "bench",
                str(corpus_dir),
                "--max-states",
                "20000",
                "--out",
                str(out_dir),
                *flags,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_three_way_payload_parity(self, tmp_path, capsys, corpus_dir):
        """no-cache, cold-with-cache and warm-with-cache runs agree on
        every bench-semantic payload field (INDEX.json modulo `cached`
        flags, spans and counters modulo timing/cache metrics)."""
        cache_dir = tmp_path / "cache"
        flags = ("--cache-dir", str(cache_dir))
        self.bench(capsys, corpus_dir, tmp_path / "nocache", "--no-cache")
        self.bench(capsys, corpus_dir, tmp_path / "cold", *flags)
        warm_out = self.bench(capsys, corpus_dir, tmp_path / "warm", *flags)
        assert diff_bench_dirs(tmp_path / "nocache", tmp_path / "cold") == []
        assert diff_bench_dirs(tmp_path / "cold", tmp_path / "warm") == []
        assert "all engines and backends agree" in warm_out
        index = json.loads(
            (tmp_path / "warm" / "INDEX.json").read_text(encoding="utf-8")
        )
        warm_cells = [
            cell
            for inst in index["instances"]
            for cell in inst["cells"].values()
        ]
        assert any(cell["cached"] for cell in warm_cells)
