"""Verdict-memo tests (:mod:`repro.cache.verdicts` and its wiring into
``analysis.analyze``, the language/bisimulation checks, receptiveness
and conformance).

The budget-monotonicity rule is the part worth breaking deliberately:

* a verdict proven within budget ``B`` is served at any ``B' >= B``
  (really: any ``B'`` at or above the states the proof *needed*);
* an INCONCLUSIVE outcome recorded at ``B`` is served **only** at
  exactly ``B`` — a larger budget must re-explore.
"""

import pytest

from repro.cache import verdicts
from repro.cache.store import activated
from repro.io.formats import load_stg
from repro.models.library import four_phase_master, four_phase_slave
from repro.obs import metrics as obs
from repro.petri.analysis import analyze
from repro.petri.reachability import UnboundedNetError
from repro.verify.conformance import check_conformance
from repro.verify.equivalence import strongly_bisimilar, weakly_bisimilar
from repro.verify.language import language_contained, languages_equal
from repro.verify.receptiveness import check_receptiveness


@pytest.fixture()
def store_dir(tmp_path):
    return tmp_path / "cache"


def _warm_counters(fn):
    with obs.record() as recorder:
        result = fn()
    return result, recorder.to_dict()["counters"]


class TestMemoRules:
    KEY = "c0" + "f" * 62

    def test_conclusive_served_at_or_above_floor(self, store_dir):
        with activated(store_dir):
            verdicts.memo_store(
                verdicts.KIND, self.KEY, {"verdict": True},
                conclusive=True, floor=120, proven_at=1_000,
            )
            assert verdicts.memo_lookup(verdicts.KIND, self.KEY, max_states=120)
            assert verdicts.memo_lookup(verdicts.KIND, self.KEY, max_states=10**9)
            assert (
                verdicts.memo_lookup(verdicts.KIND, self.KEY, max_states=119)
                is None
            )

    def test_inconclusive_served_only_at_exact_budget(self, store_dir):
        with activated(store_dir):
            verdicts.memo_store(
                verdicts.KIND, self.KEY, {"verdict": False},
                conclusive=False, proven_at=500,
            )
            assert verdicts.memo_lookup(verdicts.KIND, self.KEY, max_states=500)
            assert (
                verdicts.memo_lookup(verdicts.KIND, self.KEY, max_states=501)
                is None
            )
            assert (
                verdicts.memo_lookup(verdicts.KIND, self.KEY, max_states=499)
                is None
            )

    def test_budget_free_lookup_skips_the_rule(self, store_dir):
        with activated(store_dir):
            verdicts.memo_store(
                verdicts.KIND, self.KEY, {"verdict": True},
                conclusive=False, proven_at=500,
            )
            assert verdicts.memo_lookup(verdicts.KIND, self.KEY) is not None


class TestAnalyzeMemo:
    def test_cold_warm_equality(self, store_dir):
        net = four_phase_master().net
        with activated(store_dir):
            cold = analyze(net)
            warm, counters = _warm_counters(lambda: analyze(net))
        assert not cold.cached and warm.cached
        assert cold == warm  # `cached` is compare-excluded provenance
        assert str(cold) == str(warm)
        assert counters.get("cache.verdict.hits") == 1

    def test_floor_is_states_needed_not_budget(self, store_dir):
        net = four_phase_master().net
        with activated(store_dir):
            cold = analyze(net, max_states=1_000_000)
            # A far smaller budget still fits the actual state count, so
            # the memo must serve (floor = states, not the old budget).
            warm = analyze(net, max_states=cold.states)
            assert warm.cached
            with pytest.raises(UnboundedNetError):
                analyze(net, max_states=cold.states - 1)

    def test_unbounded_verdict_replays(self, store_dir, corpus_dir):
        net = load_stg(str(corpus_dir / "mcc_unbounded_source.net")).net
        with activated(store_dir):
            with pytest.raises(UnboundedNetError) as cold:
                analyze(net, max_states=10_000)
            with obs.record() as recorder:
                with pytest.raises(UnboundedNetError) as warm:
                    analyze(net, max_states=10_000)
        assert str(cold.value) == str(warm.value)
        assert cold.value.bound == warm.value.bound
        assert cold.value.witness == warm.value.witness
        counters = recorder.to_dict()["counters"]
        assert counters.get("cache.verdict.hits") == 1
        # Proven unboundedness is conclusive: larger budgets reuse it.
        with activated(store_dir):
            with obs.record() as larger:
                with pytest.raises(UnboundedNetError):
                    analyze(net, max_states=20_000)
        assert larger.to_dict()["counters"].get("cache.verdict.hits") == 1

    def test_budget_abort_not_reused_at_larger_budget(self, store_dir):
        net = four_phase_master().net
        with activated(store_dir):
            with pytest.raises(UnboundedNetError):
                analyze(net, max_states=2)
            # Same tiny budget: replayed from the memo.
            with obs.record() as same:
                with pytest.raises(UnboundedNetError):
                    analyze(net, max_states=2)
            assert same.to_dict()["counters"].get("cache.verdict.hits") == 1
            # Larger budget: the abort is stale, a real run must happen —
            # and this net fits, so it now succeeds.
            properties = analyze(net)
            assert properties.bounded and not properties.cached

    def test_parallel_runs_bypass_memo(self, store_dir):
        net = four_phase_master().net
        with activated(store_dir):
            analyze(net)
            warm = analyze(net, workers=2)
        assert not warm.cached


class TestVerifyMemos:
    def test_language_checks(self, store_dir):
        net1 = four_phase_master().net
        net2 = four_phase_slave().net
        with activated(store_dir):
            cold = (
                languages_equal(net1, net2),
                language_contained(net1, net2),
                languages_equal(net1, net1),
            )
            warm, counters = _warm_counters(
                lambda: (
                    languages_equal(net1, net2),
                    language_contained(net1, net2),
                    languages_equal(net1, net1),
                )
            )
        assert cold == warm
        assert counters.get("cache.verdict.hits") == 3

    def test_language_silent_set_is_semantic(self, store_dir):
        net = four_phase_master().net
        with activated(store_dir):
            languages_equal(net, net)
            _, counters = _warm_counters(
                lambda: languages_equal(net, net, silent=("a+",))
            )
        assert "cache.verdict.hits" not in counters

    def test_bisimulation_checks(self, store_dir):
        net1 = four_phase_master().net
        net2 = four_phase_slave().net
        with activated(store_dir):
            cold = (
                strongly_bisimilar(net1, net2),
                weakly_bisimilar(net1, net1),
            )
            warm, counters = _warm_counters(
                lambda: (
                    strongly_bisimilar(net1, net2),
                    weakly_bisimilar(net1, net1),
                )
            )
        assert cold == warm
        assert counters.get("cache.verdict.hits") == 2

    def test_engine_does_not_key_the_memo(self, store_dir):
        """The documented invariance: a verdict computed by one engine
        is served to another, with provenance recording the original."""
        net = four_phase_master().net
        with activated(store_dir):
            strongly_bisimilar(net, net, engine="eager")
            with obs.record() as recorder:
                assert strongly_bisimilar(net, net, engine="onthefly")
        payload = recorder.to_dict()
        assert payload["counters"].get("cache.verdict.hits") == 1
        span = next(
            s for s in payload["spans"] if s["name"] == "verify.bisim.strong"
        )
        assert span["meta"]["cached"] is True

    def test_receptiveness_and_conformance(self, store_dir):
        master = four_phase_master()
        slave = four_phase_slave()
        with activated(store_dir):
            cold = check_receptiveness(master, slave)
            warm = check_receptiveness(master, slave)
            assert not cold.cached and warm.cached
            assert str(cold) == str(warm)
            assert cold.engine == warm.engine
            assert cold.states_explored == warm.states_explored
            assert len(cold.obligations) == len(warm.obligations)
            cold_conf = check_conformance(slave, four_phase_slave())
            with obs.record() as recorder:
                warm_conf = check_conformance(slave, four_phase_slave())
        assert cold_conf.conforms() == warm_conf.conforms()
        counters = recorder.to_dict()["counters"]
        assert counters.get("cache.verdict.hits", 0) >= 1

    def test_opaque_guards_disable_memo(self, store_dir):
        net = four_phase_master().net
        tid = sorted(net.transitions)[0]
        place = sorted(net.transitions[tid].preset)[0]
        net.set_guard(place, tid, lambda marking: True)
        with activated(store_dir):
            analyze(net)
            warm, counters = _warm_counters(lambda: analyze(net))
        assert not warm.cached
        assert "cache.verdict.hits" not in counters
