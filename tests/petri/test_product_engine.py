"""Unit tests for the on-the-fly product exploration engine."""

import pytest

from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.marking import Marking, MarkingInterner
from repro.petri.net import PetriNet
from repro.petri.product import (
    LazyStateSpace,
    SynchronousProduct,
    compare_languages,
    deterministic_bisimulation,
    resolve_engine,
)
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError
from repro.petri.simulation import TokenGame
from repro.stg.stg import compose
from repro.verify.language import languages_equal


def loop(name: str, actions: list[str]) -> PetriNet:
    """A one-token cycle firing the given actions in order."""
    net = PetriNet(name)
    places = [f"{name}{i}" for i in range(len(actions))]
    for i, action in enumerate(actions):
        net.add_transition(
            {places[i]}, action, {places[(i + 1) % len(places)]}
        )
    net.set_initial(Marking({places[0]: 1}))
    return net


def chain(name: str, actions: list[str]) -> PetriNet:
    """A one-token non-cyclic sequence of the given actions."""
    net = PetriNet(name)
    for i, action in enumerate(actions):
        net.add_transition({f"{name}{i}"}, action, {f"{name}{i + 1}"})
    net.set_initial(Marking({f"{name}0": 1}))
    return net


class TestMarkingSupport:
    def test_fire_matches_remove_add(self):
        marking = Marking({"p": 2, "q": 1})
        assert marking.fire({"p"}, {"r"}) == marking.remove({"p"}).add({"r"})
        assert marking.fire({"p", "q"}, {"p"}) == Marking({"p": 2})

    def test_fire_raises_on_empty_place(self):
        with pytest.raises(ValueError):
            Marking({"p": 1}).fire({"q"}, set())

    def test_interner_canonicalises(self):
        interner = MarkingInterner()
        first = interner.intern(Marking({"p": 1}))
        second = interner.intern(Marking({"p": 1}))
        assert first is second
        assert len(interner) == 1
        assert Marking({"p": 1}) in interner


class TestConsumerIndex:
    def test_index_contents(self):
        net = loop("n", ["a", "b"])
        index = net.consumer_index()
        assert set(index) == {"n0", "n1"}
        assert index["n0"] == (0,)

    def test_index_invalidated_on_mutation(self):
        net = loop("n", ["a", "b"])
        net.consumer_index()
        added = net.add_transition({"n0"}, "c", {"n1"})
        assert added.tid in net.consumer_index()["n0"]
        net.remove_transition(added.tid)
        assert added.tid not in net.consumer_index()["n0"]


class TestLazyStateSpace:
    def test_matches_eager_on_composition(self):
        composite = compose(four_phase_master(), four_phase_slave())
        eager = ReachabilityGraph(composite.net)
        lazy = LazyStateSpace(composite.net)
        assert lazy.explore_all() == eager.num_states()
        assert lazy.stats.edges == eager.num_edges()

    def test_nothing_explored_up_front(self):
        composite = compose(four_phase_master(), four_phase_slave())
        lazy = LazyStateSpace(composite.net)
        assert lazy.num_explored() == 1  # only the initial marking

    def test_successors_memoised(self):
        net = loop("n", ["a", "b", "c"])
        lazy = LazyStateSpace(net)
        first = lazy.successors(lazy.initial)
        checks = lazy.stats.enabledness_checks
        assert lazy.successors(lazy.initial) is first
        assert lazy.stats.enabledness_checks == checks

    def test_empty_preset_transition_always_enabled(self):
        net = PetriNet("source")
        net.add_transition(set(), "a", {"p"})
        net.add_transition({"p"}, "b", set())
        net.set_initial(Marking({}))
        lazy = LazyStateSpace(net, max_states=5, detect_unbounded=False)
        actions = {action for action, _, _ in lazy.successors(lazy.initial)}
        assert actions == {"a"}

    def test_trace_reconstruction_is_firable(self):
        composite = compose(four_phase_master(), four_phase_slave())
        lazy = LazyStateSpace(composite.net)
        states = list(lazy.iter_bfs())
        game = TokenGame(composite.net)
        target = states[-1]
        for tid, action in lazy.trace_to(target):
            assert composite.net.transitions[tid].action == action
            game.fire_tid(tid)
        assert game.marking == target

    def test_trace_to_undiscovered_state_raises(self):
        net = loop("n", ["a", "b"])
        lazy = LazyStateSpace(net)
        with pytest.raises(KeyError):
            lazy.trace_to(Marking({"nowhere": 1}))

    def test_max_states_abort_reports_bound_and_frontier(self):
        net = loop("n", [f"a{i}" for i in range(10)])
        lazy = LazyStateSpace(net, max_states=3)
        with pytest.raises(UnboundedNetError) as excinfo:
            lazy.explore_all()
        error = excinfo.value
        assert error.bound == 3
        assert error.frontier is not None
        assert error.witness is not None

    def test_unbounded_detection_matches_eager(self):
        net = PetriNet("pump")
        net.add_transition({"p"}, "a", {"p", "q"})
        net.set_initial(Marking({"p": 1}))
        with pytest.raises(UnboundedNetError) as eager_error:
            ReachabilityGraph(net)
        lazy = LazyStateSpace(net)
        with pytest.raises(UnboundedNetError) as lazy_error:
            lazy.explore_all()
        assert eager_error.value.witness == lazy_error.value.witness
        assert lazy_error.value.bound is None  # proven, not a budget abort


class TestSynchronousProduct:
    def test_product_lts_matches_interleaving(self):
        left = loop("l", ["x", "s"])
        right = loop("r", ["y", "s"])
        product = SynchronousProduct(
            LazyStateSpace(left), LazyStateSpace(right), sync={"s"}
        )
        states = list(product.iter_bfs())
        # x and y interleave freely; s fires only jointly: 4 states.
        assert len(states) == 4

    def test_to_net_language_equals_composed_net(self):
        from repro.algebra.compose import parallel

        left = loop("l", ["x", "s"])
        right = loop("r", ["y", "s"])
        product_net = SynchronousProduct(
            LazyStateSpace(left),
            LazyStateSpace(right),
            sync=left.actions & right.actions,
        ).to_net()
        assert languages_equal(parallel(left, right), product_net)


class TestCompareLanguages:
    def test_equal_nets(self):
        result = compare_languages(loop("a", ["a", "b"]), loop("b", ["a", "b"]))
        assert result.verdict
        assert result.counterexample is None

    def test_shortest_counterexample(self):
        result = compare_languages(
            chain("long", ["a", "b"]), chain("short", ["a"])
        )
        assert not result.verdict
        assert result.counterexample == ("a", "b")

    def test_containment_is_directional(self):
        shorter, longer = chain("s", ["a"]), chain("l", ["a", "b"])
        assert compare_languages(shorter, longer, mode="contained").verdict
        assert not compare_languages(longer, shorter, mode="contained").verdict

    def test_early_exit_explores_fewer_states(self):
        """A difference at the first symbol is found without exploring
        the large remainder of either state space."""
        big = chain("big", [f"a{i}" for i in range(50)])
        other = chain("oth", ["b"])
        result = compare_languages(big, other)
        assert not result.verdict
        assert result.stats.states < 10  # not the ~51 eager states

    def test_per_side_silent_sets(self):
        """Theorem 4.7 shape: 'u' silent on the reference side only."""
        noisy = chain("n", ["a", "u", "b"])
        quiet = chain("q", ["a", "b"])
        result = compare_languages(quiet, noisy, silent2={"u"})
        assert result.verdict

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            compare_languages(loop("a", ["a"]), loop("b", ["a"]), mode="woof")


class TestDeterministicBisimulation:
    def test_definite_verdicts(self):
        assert deterministic_bisimulation(
            loop("a", ["a", "b"]), loop("b", ["a", "b"])
        )[0] is True
        assert deterministic_bisimulation(
            loop("a", ["a", "b"]), loop("b", ["a", "c"])
        )[0] is False

    def test_nondeterminism_defers(self):
        net = PetriNet("nd")
        net.add_transition({"p"}, "a", {"q"})
        net.add_transition({"p"}, "a", {"r"})
        net.set_initial(Marking({"p": 1}))
        verdict, _ = deterministic_bisimulation(net, loop("d", ["a"]))
        assert verdict is None


def test_resolve_engine_validates():
    assert resolve_engine("eager") == "eager"
    assert resolve_engine("onthefly") == "onthefly"
    assert resolve_engine("por") == "por"
    with pytest.raises(ValueError):
        resolve_engine("bfs")


class TestPartialOrderReduction:
    def independent_pair(self) -> PetriNet:
        net = PetriNet("ind", places=["p1", "p2", "q1", "q2"])
        net.add_transition({"p1"}, "u", {"p2"})
        net.add_transition({"q1"}, "u", {"q2"})
        net.set_initial(Marking({"p1": 1, "q1": 1}))
        return net

    def test_reduction_shrinks_independent_diamond(self):
        net = self.independent_pair()
        full = LazyStateSpace(net)
        assert full.explore_all() == 4
        reduced = LazyStateSpace(net, reduction=True, visible_actions=())
        assert reduced.explore_all() == 3
        assert reduced.is_reduced
        assert reduced.stats.reduced_states == 1
        assert not full.is_reduced

    def test_reduction_rejects_transition_filter(self):
        net = self.independent_pair()
        with pytest.raises(ValueError, match="transition_filter"):
            LazyStateSpace(
                net,
                reduction=True,
                transition_filter=lambda t, m: True,
            )

    def test_unbounded_budget_message_mentions_reduction(self):
        """Regression: the max_states bound counts states of the
        *reduced* space, and the error message must say so."""
        net = loop("n", [f"a{i}" for i in range(10)])
        reduced = LazyStateSpace(
            net, max_states=3, reduction=True, visible_actions=()
        )
        with pytest.raises(UnboundedNetError) as excinfo:
            reduced.explore_all()
        assert "partial-order reduction active" in str(excinfo.value)
        assert excinfo.value.bound == 3
        plain = LazyStateSpace(net, max_states=3)
        with pytest.raises(UnboundedNetError) as plain_info:
            plain.explore_all()
        assert "partial-order reduction" not in str(plain_info.value)

    def test_truly_unbounded_detection_still_fires_under_reduction(self):
        net = PetriNet("pump")
        net.add_transition({"p"}, "a", {"p", "q"})
        net.set_initial(Marking({"p": 1}))
        reduced = LazyStateSpace(net, reduction=True, visible_actions=())
        with pytest.raises(UnboundedNetError) as excinfo:
            reduced.explore_all()
        assert excinfo.value.bound is None  # proven, not a budget abort

    def test_product_requires_sync_actions_visible(self):
        left = loop("l", ["x", "s"])
        right = loop("r", ["y", "s"])
        hidden = LazyStateSpace(
            left, reduction=True, visible_actions={"x"}
        )
        with pytest.raises(ValueError, match="synchronisation action"):
            SynchronousProduct(hidden, LazyStateSpace(right), sync={"s"})

    def test_product_accepts_reduced_components_with_visible_sync(self):
        left = loop("l", ["x", "s"])
        right = loop("r", ["y", "s"])
        product = SynchronousProduct(
            LazyStateSpace(left, reduction=True),
            LazyStateSpace(right, reduction=True),
            sync={"s"},
        )
        states = list(product.iter_bfs())
        assert states  # explorable end to end
        oracle = SynchronousProduct(
            LazyStateSpace(left), LazyStateSpace(right), sync={"s"}
        )
        assert languages_equal(
            product.to_net(), oracle.to_net(), engine="eager"
        )

    def test_compare_languages_reduction_flag_agrees(self):
        net = self.independent_pair()
        net.add_transition({"p2", "q2"}, "a", {"p1", "q1"})
        other = chain("c", ["a"])
        for mode in ("equal", "contained"):
            plain = compare_languages(net, other, mode=mode, silent=("u",))
            por = compare_languages(
                net, other, mode=mode, silent=("u",), reduction=True
            )
            assert plain.verdict == por.verdict
            assert por.stats.states <= plain.stats.states
