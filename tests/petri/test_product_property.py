"""Property-based agreement between the on-the-fly engine and the eager
:class:`ReachabilityGraph` / DFA oracle on random (non-safe) nets.

The eager implementations predate the demand-driven engine and are kept
as the test oracle; every property here asserts that both paths compute
the same answer — state counts, language verdicts, counterexamples,
bisimilarity and receptiveness — on hypothesis-generated nets whose
initial markings are *not* restricted to be safe.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.petri.net import EPSILON
from repro.petri.product import LazyStateSpace, compare_languages
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError
from repro.petri.simulation import TokenGame
from repro.stg.stg import Stg
from repro.verify.equivalence import strongly_bisimilar, weakly_bisimilar
from repro.verify.language import (
    dfa_of_net,
    distinguishing_trace,
    language_contained,
    languages_equal,
)
from repro.verify.receptiveness import check_receptiveness

from tests.strategies import bounded_multi_token_nets, bounded_nets, petri_nets

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

# The acceptance bar for engine agreement: >= 200 random nets.
THOROUGH = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

SIGNAL_ACTIONS = ["a+", "a-", "b+", "b-"]


@THOROUGH
@given(net=bounded_multi_token_nets())
def test_state_spaces_agree_on_multi_token_nets(net):
    """Same reachable markings, same state count, same edge count."""
    eager = ReachabilityGraph(net)
    lazy = LazyStateSpace(net)
    assert lazy.explore_all() == eager.num_states()
    assert lazy.stats.edges == eager.num_edges()
    assert set(lazy.iter_bfs()) == eager.states


@RELAXED
@given(net=bounded_multi_token_nets(), data=st.data())
def test_traces_replay_to_their_state(net, data):
    """Every discovery trace is firable and lands on the right marking."""
    lazy = LazyStateSpace(net)
    states = list(lazy.iter_bfs())
    target = data.draw(st.sampled_from(states), label="target state")
    game = TokenGame(net)
    for tid, action in lazy.trace_to(target):
        assert net.transitions[tid].action == action
        game.fire_tid(tid)
    assert game.marking == target


@RELAXED
@given(net=petri_nets())
def test_unboundedness_verdicts_agree(net):
    """Both engines raise (or don't) on the same possibly-unbounded net."""
    budget = 500
    try:
        ReachabilityGraph(net, max_states=budget)
        eager_outcome = None
    except UnboundedNetError as error:
        eager_outcome = (error.witness, error.bound)
    try:
        LazyStateSpace(net, max_states=budget).explore_all()
        lazy_outcome = None
    except UnboundedNetError as error:
        lazy_outcome = (error.witness, error.bound)
    assert eager_outcome == lazy_outcome


@THOROUGH
@given(net1=bounded_nets(), net2=bounded_nets())
def test_language_verdicts_agree(net1, net2):
    """Equality, both containments and the distinguishing trace agree
    between the subset-construction oracle and the lazy pair walk."""
    eq_eager = languages_equal(net1, net2, engine="eager")
    eq_lazy = languages_equal(net1, net2, engine="onthefly")
    assert eq_eager == eq_lazy
    for first, second in ((net1, net2), (net2, net1)):
        assert language_contained(
            first, second, engine="eager"
        ) == language_contained(first, second, engine="onthefly")
    trace = distinguishing_trace(net1, net2, engine="onthefly")
    assert (trace is None) == eq_eager
    if trace is not None:
        # The counterexample must separate the two weak languages.
        universe = (net1.actions | net2.actions) - {EPSILON}
        d1 = dfa_of_net(net1, silent={EPSILON}, alphabet=universe)
        d2 = dfa_of_net(net2, silent={EPSILON}, alphabet=universe)
        assert d1.accepts(trace) != d2.accepts(trace)


@RELAXED
@given(net1=bounded_nets(), net2=bounded_nets())
def test_strong_language_comparison_agrees_with_strict_dfa(net1, net2):
    """With no silent labels the lazy walk must match the eager DFA on
    the *strong* (epsilon-visible) language."""
    universe = net1.actions | net2.actions
    d1 = dfa_of_net(net1, silent=set(), alphabet=universe)
    d2 = dfa_of_net(net2, silent=set(), alphabet=universe)
    from repro.verify.language import dfa_equal

    result = compare_languages(net1, net2, silent=())
    assert result.verdict == dfa_equal(d1, d2)
    if result.counterexample is not None:
        assert d1.accepts(result.counterexample) != d2.accepts(
            result.counterexample
        )


@RELAXED
@given(net1=bounded_nets(), net2=bounded_nets())
def test_bisimulation_verdicts_agree(net1, net2):
    assert strongly_bisimilar(net1, net2, engine="onthefly") == (
        strongly_bisimilar(net1, net2, engine="eager")
    )
    assert weakly_bisimilar(net1, net2, engine="onthefly") == (
        weakly_bisimilar(net1, net2, engine="eager")
    )


@RELAXED
@given(
    net1=bounded_nets(
        max_places=4, max_transitions=3, actions=SIGNAL_ACTIONS, max_states=400
    ),
    net2=bounded_nets(
        max_places=4, max_transitions=3, actions=SIGNAL_ACTIONS, max_states=400
    ),
)
def test_receptiveness_verdicts_agree(net1, net2):
    """Same verdict and the same set of failing obligations, whichever
    engine discovers the composite state space."""
    producer = Stg(net1, outputs={"a", "b"})
    consumer = Stg(net2, inputs={"a", "b"})
    reports = {}
    for engine in ("eager", "onthefly"):
        reports[engine] = check_receptiveness(
            producer,
            consumer,
            method="reachability",
            max_states=20_000,
            engine=engine,
        )
    eager, lazy = reports["eager"], reports["onthefly"]
    assert eager.is_receptive() == lazy.is_receptive()
    failed = lambda report: {  # noqa: E731
        (f.obligation.action, f.obligation.producer, f.obligation.consumer)
        for f in report.failures
    }
    assert failed(eager) == failed(lazy)
    # On-the-fly failures always carry a replayable shortest trace.
    composite = lazy.composite
    for failure in lazy.failures:
        assert failure.trace is not None and failure.tids is not None
        game = TokenGame(composite.net)
        for tid in failure.tids:
            game.fire_tid(tid)
        assert game.marking == failure.marking
