"""Stress tests for the spill-to-disk visited store.

The store's one job is *exact* membership under any memory budget: the
tests here squeeze it through the nastiest regimes — a zero budget that
forces disk on the very first insert, reopen-after-close durability,
and a real exploration (a channel bank) completing under a budget far
smaller than its visited set.
"""

from __future__ import annotations

import os

import pytest

from repro.core.circuit import compose_many
from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.parallel import parallel_explore
from repro.petri.reachability import ReachabilityGraph
from repro.petri.visited import VisitedStore, pack_wide_key


def keys(n: int, width: int = 8) -> list[bytes]:
    return [i.to_bytes(width, "little") for i in range(n)]


def channel_bank(channels: int):
    modules = []
    for index in range(channels):
        modules.append(
            four_phase_master(req=f"r{index}", ack=f"a{index}", name=f"m{index}")
        )
        modules.append(
            four_phase_slave(req=f"r{index}", ack=f"a{index}", name=f"s{index}")
        )
    return compose_many(modules)


def test_zero_budget_spills_immediately_and_stays_exact():
    """Budget 0: the first insert already exceeds the budget, so every
    key ends up on disk — membership and counts must not notice."""
    with VisitedStore(memory_budget=0) as store:
        material = keys(500)
        for key in material:
            assert store.add(key) is True
        assert store.spilled
        assert store.spill_count >= 1
        assert store.spilled_keys >= 1
        assert len(store) == 500
        # Exact dedup across the memory/disk boundary.
        for key in material:
            assert store.add(key) is False
            assert key in store
        assert len(store) == 500
        assert b"not-there" not in store


def test_every_insert_crosses_the_spill_boundary():
    """Interleave duplicate inserts with fresh ones while spilled: the
    new-key verdict of ``add`` must stay correct insert by insert."""
    store = VisitedStore(memory_budget=0)
    seen = set()
    for i in range(300):
        key = (i % 100).to_bytes(4, "big")
        assert store.add(key) is (key not in seen)
        seen.add(key)
    assert len(store) == 100
    store.close()


def test_in_memory_regime_never_touches_disk():
    store = VisitedStore(memory_budget=1024 * 1024)
    assert store.update(keys(100)) == 100
    assert not store.spilled
    assert store.spill_count == 0
    assert store.memory_keys == 100
    assert store.memory_bytes > 0
    store.close()


def test_reopen_after_close_sees_every_key(tmp_path):
    """The reopen contract: with an explicit path, close() persists
    everything — including keys that never left memory."""
    path = tmp_path / "visited.sqlite"
    store = VisitedStore(memory_budget=10_000, path=path)
    material = keys(1000)
    store.update(material[:600])
    store.close()
    assert path.exists()

    reopened = VisitedStore(memory_budget=10_000, path=path)
    assert len(reopened) == 600
    for key in material[:600]:
        assert key in reopened
        assert reopened.add(key) is False
    assert reopened.update(material[600:]) == 400
    reopened.close()

    third = VisitedStore(path=path)
    assert len(third) == 1000
    third.close()


def test_temporary_spill_file_is_removed_on_close():
    store = VisitedStore(memory_budget=0)
    store.add(b"k")
    spill_path = store.path
    assert spill_path is not None and os.path.exists(spill_path)
    store.close()
    assert not os.path.exists(spill_path)


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        VisitedStore(memory_budget=-1)


def test_pack_wide_key_is_injective_on_samples():
    states = [(0, 1, 2), (1, 0, 2), (2, 1, 0), (0, 1, 3), (255, 256, 257)]
    packed = {pack_wide_key(state) for state in states}
    assert len(packed) == len(states)
    assert pack_wide_key((0, 1, 2)) == pack_wide_key((0, 1, 2))


def test_channel_bank_completes_under_tiny_budget():
    """Scalability marker: channel-bank(4) (256 states, 32 places -> a
    32-byte packed key each, ~24 KiB of key material with overhead)
    completes under a 2 KiB budget — the visited set does not fit in
    memory, yet counts match the unconstrained serial exploration."""
    net = channel_bank(4).net
    serial = ReachabilityGraph(net)
    result = parallel_explore(net, workers=1, memory_budget=2048)
    assert result.states == serial.num_states() == 4**4
    assert result.edges == serial.num_edges()
    report = result.worker_reports[0]
    assert report["spill_count"] >= 1
    assert report["spilled_keys"] > 0
    # The whole set never sat in memory at once.
    assert report["visited_memory_keys"] < result.states
