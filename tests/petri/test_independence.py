"""Unit tests for the static independence relation and the stubborn-set
selector — the structural half of ``engine="por"``."""

import pytest

from repro.petri.independence import IndependenceRelation, StubbornSelector
from repro.petri.marking import Marking
from repro.petri.net import PetriNet


def diamond() -> PetriNet:
    """Two fully independent transitions (concurrent components)."""
    net = PetriNet("diamond", places=["p1", "p2", "q1", "q2"])
    net.add_transition({"p1"}, "u", {"p2"})  # t0
    net.add_transition({"q1"}, "u", {"q2"})  # t1
    net.set_initial(Marking({"p1": 1, "q1": 1}))
    return net


def choice() -> PetriNet:
    """Two transitions competing for one input place."""
    net = PetriNet("choice", places=["p", "a1", "b1"])
    net.add_transition({"p"}, "a", {"a1"})  # t0
    net.add_transition({"p"}, "b", {"b1"})  # t1
    net.set_initial(Marking({"p": 1}))
    return net


class TestIndependenceRelation:
    def test_disjoint_transitions_are_independent(self):
        relation = IndependenceRelation(diamond())
        assert relation.independent(0, 1)
        assert relation.conflicting(0) == ()
        assert relation.conflicting(1) == ()

    def test_shared_input_place_is_a_conflict(self):
        relation = IndependenceRelation(choice())
        assert not relation.independent(0, 1)
        assert relation.conflicting(0) == (1,)
        assert relation.conflicting(1) == (0,)

    def test_no_self_conflict_or_self_independence(self):
        relation = IndependenceRelation(choice())
        assert 0 not in relation.conflicting(0)
        assert not relation.independent(0, 0)

    def test_strict_producers_exclude_self_loops(self):
        net = PetriNet("loops", places=["p", "q"])
        net.add_transition({"p"}, "a", {"p", "q"})  # self-loop on p, produces q
        net.add_transition({"q"}, "b", {"p"})  # strictly produces p
        relation = IndependenceRelation(net)
        assert relation.strict_producers("q") == (0,)
        assert relation.strict_producers("p") == (1,)
        assert relation.strict_producers("nowhere") == ()

    def test_transitions_changing_tracks_both_directions(self):
        net = PetriNet("chg", places=["p", "q", "r"])
        net.add_transition({"p"}, "a", {"q"})  # changes p and q
        net.add_transition({"r"}, "b", {"r"})  # pure self-loop: changes nothing
        relation = IndependenceRelation(net)
        assert relation.transitions_changing(["p"]) == {0}
        assert relation.transitions_changing(["q"]) == {0}
        assert relation.transitions_changing(["r"]) == frozenset()
        assert relation.transitions_changing(["p", "q"]) == {0}


class TestStubbornSelector:
    def test_reduces_independent_diamond_to_one_transition(self):
        net = diamond()
        selector = StubbornSelector(net, visible_tids=())
        reduced = selector.reduced_enabled(net.initial, (0, 1))
        assert reduced is not None and len(reduced) == 1

    def test_conflicting_pair_is_never_split(self):
        net = choice()
        selector = StubbornSelector(net, visible_tids=())
        assert selector.reduced_enabled(net.initial, (0, 1)) is None

    def test_visible_seed_blocks_reduction(self):
        net = diamond()
        selector = StubbornSelector(net, visible_tids=(0, 1))
        assert selector.reduced_enabled(net.initial, (0, 1)) is None

    def test_partially_visible_diamond_reduces_to_invisible_side(self):
        net = diamond()
        selector = StubbornSelector(net, visible_tids=(0,))
        reduced = selector.reduced_enabled(net.initial, (0, 1))
        assert reduced == (1,)

    def test_single_enabled_transition_is_not_reduced(self):
        net = choice()
        selector = StubbornSelector(net, visible_tids=())
        assert selector.reduced_enabled(net.initial, (0,)) is None

    def test_disabled_member_pulls_in_scapegoat_producers(self):
        # t0 and t2 are independent, but t1 (disabled, shares place p
        # with t0) waits on place m which only t2 produces: a stubborn
        # set seeded with t0 must also contain t2.
        net = PetriNet("scape", places=["p", "m", "q1", "q2", "r"])
        net.add_transition({"p"}, "u", {"r"})  # t0 enabled
        net.add_transition({"p", "m"}, "u", {"r"})  # t1 disabled (m empty)
        net.add_transition({"q1"}, "u", {"m", "q2"})  # t2 enabled, produces m
        net.set_initial(Marking({"p": 1, "q1": 1}))
        selector = StubbornSelector(net, visible_tids=())
        reduced = selector.reduced_enabled(net.initial, (0, 2))
        # Seeding with t2 closes to {t2} alone (nothing conflicts);
        # seeding with t0 would drag in t1 and then t2.
        assert reduced == (2,)

    def test_deterministic_across_runs(self):
        net = diamond()
        selector = StubbornSelector(net, visible_tids=())
        first = selector.reduced_enabled(net.initial, (0, 1))
        for _ in range(5):
            assert selector.reduced_enabled(net.initial, (0, 1)) == first

    def test_shared_relation_can_be_injected(self):
        net = diamond()
        relation = IndependenceRelation(net)
        selector = StubbornSelector(net, visible_tids=(), relation=relation)
        assert selector.relation is relation
        assert selector.reduced_enabled(net.initial, (0, 1)) is not None
