"""Tests for the token-game simulator and random walks."""

import pytest

from repro.models.library import mutex_arbiter
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.simulation import (
    SimulationError,
    TokenGame,
    estimate_action_frequencies,
    random_walk,
)


def cycle() -> PetriNet:
    net = PetriNet("cycle")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return net


class TestTokenGame:
    def test_initial_state(self):
        game = TokenGame(cycle())
        assert game.marking == Marking({"p0": 1})
        assert [t.action for t in game.enabled()] == ["a"]

    def test_fire_by_action(self):
        game = TokenGame(cycle())
        game.fire("a")
        assert game.marking == Marking({"p1": 1})
        assert game.trace() == ("a",)

    def test_fire_disabled_raises(self):
        game = TokenGame(cycle())
        with pytest.raises(SimulationError):
            game.fire("b")

    def test_fire_tid_checks_enabling(self):
        game = TokenGame(cycle())
        with pytest.raises(SimulationError):
            game.fire_tid(1)

    def test_replay(self):
        game = TokenGame(cycle())
        game.replay(["a", "b", "a"])
        assert game.marking == Marking({"p1": 1})
        assert game.trace() == ("a", "b", "a")

    def test_undo(self):
        game = TokenGame(cycle())
        game.replay(["a", "b"])
        game.undo()
        assert game.marking == Marking({"p1": 1})
        assert game.trace() == ("a",)

    def test_undo_empty_history_raises(self):
        with pytest.raises(SimulationError):
            TokenGame(cycle()).undo()

    def test_reset(self):
        game = TokenGame(cycle())
        game.replay(["a", "b", "a"])
        game.reset()
        assert game.marking == Marking({"p0": 1})
        assert game.trace() == ()

    def test_can_fire(self):
        game = TokenGame(cycle())
        assert game.can_fire("a")
        assert not game.can_fire("b")

    def test_ambiguous_label_takes_lowest_tid(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"x"}, tid=5)
        net.add_transition({"p"}, "a", {"y"}, tid=3)
        net.set_initial(Marking({"p": 1}))
        game = TokenGame(net)
        game.fire("a")
        assert game.marking == Marking({"y": 1})


class TestRandomWalk:
    def test_walk_is_deterministic_per_seed(self):
        first = random_walk(cycle(), steps=50, seed=42)
        second = random_walk(cycle(), steps=50, seed=42)
        assert first.trace == second.trace

    def test_deadlock_reported(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        net.set_initial(Marking({"p": 1}))
        result = random_walk(net, steps=10)
        assert result.deadlocked
        assert result.steps == 1

    def test_monitor_failure_stops_walk(self):
        result = random_walk(
            cycle(),
            steps=100,
            monitors=[("never-p1", lambda m: m["p1"] == 0)],
        )
        assert result.monitor_failures == ("never-p1",)
        assert result.steps == 1

    def test_mutual_exclusion_monitor_holds(self):
        result = random_walk(
            mutex_arbiter().net,
            steps=2000,
            seed=7,
            monitors=[("mutex", lambda m: m["crit1"] + m["crit2"] <= 1)],
        )
        assert result.monitor_failures == ()
        assert result.steps == 2000

    def test_weights_bias_choice(self):
        net = PetriNet()
        net.add_transition({"p"}, "hot", {"p"})
        net.add_transition({"p"}, "cold", {"p"})
        net.set_initial(Marking({"p": 1}))
        freq = estimate_action_frequencies(net, steps=2000, seed=1)
        assert 0.4 < freq["hot"] < 0.6  # uniform by default
        biased = random_walk(net, steps=2000, seed=1, weights={"hot": 9.0})
        hot = sum(1 for a in biased.trace if a == "hot") / len(biased.trace)
        assert hot > 0.8

    def test_frequency_profile_of_cycle(self):
        freq = estimate_action_frequencies(cycle(), steps=999, seed=3)
        assert set(freq) == {"a", "b"}
        assert abs(freq["a"] - freq["b"]) < 0.01
