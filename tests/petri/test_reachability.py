"""Tests for reachability-graph construction and behavioural queries."""

import pytest

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import (
    ReachabilityGraph,
    UnboundedNetError,
    firing_sequences,
)


def cycle() -> PetriNet:
    net = PetriNet("cycle")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return net


def fork_join() -> PetriNet:
    """A concurrent diamond: fork into two parallel branches, then join."""
    net = PetriNet("fork_join")
    net.add_transition({"s"}, "fork", {"l", "r"})
    net.add_transition({"l"}, "x", {"l2"})
    net.add_transition({"r"}, "y", {"r2"})
    net.add_transition({"l2", "r2"}, "join", {"s"})
    net.set_initial(Marking({"s": 1}))
    return net


def unbounded() -> PetriNet:
    net = PetriNet("producer")
    net.add_transition({"p"}, "make", {"p", "q"})
    net.set_initial(Marking({"p": 1}))
    return net


class TestExploration:
    def test_cycle_has_two_states(self):
        graph = ReachabilityGraph(cycle())
        assert graph.num_states() == 2
        assert graph.num_edges() == 2

    def test_fork_join_interleaves(self):
        graph = ReachabilityGraph(fork_join())
        # s, (l,r), (l2,r), (l,r2), (l2,r2)
        assert graph.num_states() == 5
        assert graph.num_edges() == 6

    def test_unbounded_net_detected(self):
        with pytest.raises(UnboundedNetError):
            ReachabilityGraph(unbounded())

    def test_state_budget_enforced(self):
        # A bounded but large net: 12 independent toggles -> 2^12 states.
        net = PetriNet("wide")
        for i in range(12):
            net.add_transition({f"a{i}"}, f"t{i}", {f"b{i}"})
            net.add_place(f"a{i}", tokens=1)
        with pytest.raises(UnboundedNetError):
            ReachabilityGraph(net, max_states=100)

    def test_empty_net_single_state(self):
        graph = ReachabilityGraph(PetriNet())
        assert graph.num_states() == 1
        assert graph.is_deadlock_free() is False


class TestUnboundedNetErrorReporting:
    """The two raise sites must consistently report what was exceeded:
    the covering heuristic carries a witness (= frontier) and no bound;
    a budget abort carries the exceeded ``max_states`` and the frontier
    marking that did not fit."""

    def test_covering_detection_reports_witness_no_bound(self):
        with pytest.raises(UnboundedNetError) as excinfo:
            ReachabilityGraph(unbounded())
        error = excinfo.value
        assert error.bound is None
        assert error.witness is not None
        assert error.frontier == error.witness
        # The witness strictly covers the initial marking's place 'q'.
        assert error.witness["q"] >= 1

    def test_budget_abort_reports_bound_and_frontier(self):
        net = PetriNet("wide")
        for i in range(12):
            net.add_transition({f"a{i}"}, f"t{i}", {f"b{i}"})
            net.add_place(f"a{i}", tokens=1)
        with pytest.raises(UnboundedNetError) as excinfo:
            ReachabilityGraph(net, max_states=100)
        error = excinfo.value
        assert error.bound == 100
        assert error.frontier is not None
        assert str(100) in str(error)

    def test_budget_abort_frontier_is_reachable(self):
        net = PetriNet("wide")
        for i in range(6):
            net.add_transition({f"a{i}"}, f"t{i}", {f"b{i}"})
            net.add_place(f"a{i}", tokens=1)
        with pytest.raises(UnboundedNetError) as excinfo:
            ReachabilityGraph(net, max_states=10)
        frontier = excinfo.value.frontier
        # The frontier marking really is reachable: a larger budget
        # finds it among the states.
        graph = ReachabilityGraph(net)
        assert frontier in graph.states


class TestProperties:
    def test_cycle_is_live_safe_reversible(self):
        graph = ReachabilityGraph(cycle())
        assert graph.is_safe()
        assert graph.is_live()
        assert graph.is_reversible()
        assert graph.is_strongly_connected()

    def test_one_shot_net_is_not_live(self):
        net = PetriNet("one_shot")
        net.add_transition({"p"}, "a", {"q"})
        net.set_initial(Marking({"p": 1}))
        graph = ReachabilityGraph(net)
        assert not graph.is_live()
        assert graph.deadlocks() == [Marking({"q": 1})]

    def test_dead_transition_reported(self):
        net = cycle()
        net.add_transition({"never"}, "z", {"p0"})
        graph = ReachabilityGraph(net)
        assert [t.action for t in graph.dead_transitions()] == ["z"]

    def test_bound_of_two_token_net(self):
        net = PetriNet("two_tokens")
        net.add_transition({"p"}, "a", {"q"})
        net.set_initial(Marking({"p": 2}))
        graph = ReachabilityGraph(net)
        assert graph.bound() == 2
        assert not graph.is_safe()

    def test_partially_live_net_is_not_live(self):
        # 'a' can always fire but 'b' only once: not live.
        net = PetriNet()
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "a", {"p0"})
        net.add_transition({"p0"}, "b", {"dead_end"})
        net.set_initial(Marking({"p0": 1}))
        assert not ReachabilityGraph(net).is_live()

    def test_irreversible_but_live(self):
        # After 'setup', loops forever between p1/p2; never returns to p0.
        net = PetriNet()
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "b", {"p2"})
        net.add_transition({"p2"}, "a", {"p1"})
        net.set_initial(Marking({"p0": 1}))
        graph = ReachabilityGraph(net)
        assert not graph.is_reversible()
        assert not graph.is_live()  # 'a' via p0 variant becomes dead? no:
        # transition 0 (p0->p1) can never fire again, so the *net* is not
        # live even though actions keep occurring.


class TestFiringSequences:
    def test_depth_zero_yields_empty_trace_only(self):
        assert list(firing_sequences(cycle(), 0)) == [()]

    def test_sequences_are_prefix_closed(self):
        sequences = set(firing_sequences(fork_join(), 4))
        for trace in sequences:
            assert trace[:-1] in sequences or trace == ()

    def test_interleavings_enumerated(self):
        sequences = set(firing_sequences(fork_join(), 3))
        assert ("fork", "x", "y") in sequences
        assert ("fork", "y", "x") in sequences

    def test_depth_limit_respected(self):
        assert all(len(t) <= 2 for t in firing_sequences(cycle(), 2))
