"""Tests for trace semantics (Definitions 4.1, 4.8, 4.9)."""

from repro.models.paper_figures import fig2_left, fig2_right
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.petri.traces import (
    bounded_language,
    hide_language,
    is_prefix_closed,
    observable,
    observable_language,
    parallel_compose_languages,
    parallel_compose_traces,
    prefix_closure,
    project_language,
    project_trace,
    rename_language,
    synchronizable,
)


class TestBoundedLanguage:
    def test_contains_empty_trace(self):
        assert () in bounded_language(fig2_left(), 0)

    def test_depth_one_of_fig2_left(self):
        assert bounded_language(fig2_left(), 1) == {(), ("a",), ("b",)}

    def test_prefix_closed(self):
        assert is_prefix_closed(bounded_language(fig2_left(), 4))

    def test_deadlocked_net_has_only_empty_trace(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        assert bounded_language(net, 5) == {()}


class TestProjectionHideRename:
    def test_project_trace(self):
        assert project_trace(("a", "b", "a", "c"), {"a", "c"}) == ("a", "a", "c")

    def test_project_language(self):
        language = {("a", "b"), ("b",)}
        assert project_language(language, {"a"}) == {("a",), ()}

    def test_hide_is_projection_onto_complement(self):
        language = {("a", "b"), ("b", "c")}
        assert hide_language(language, "b") == {("a",), ("c",)}

    def test_hide_multiple_actions(self):
        language = {("a", "b", "c")}
        assert hide_language(language, {"a", "c"}) == {("b",)}

    def test_hide_with_explicit_alphabet(self):
        assert hide_language({()}, "a", alphabet={"a", "b"}) == {()}

    def test_rename_language(self):
        assert rename_language({("a", "b")}, {"a": "x"}) == {("x", "b")}

    def test_observable_drops_epsilon(self):
        assert observable(("a", EPSILON, "b", EPSILON)) == ("a", "b")
        assert observable_language({(EPSILON,)}) == {()}


class TestTraceComposition:
    def test_paper_example_non_synchronizable(self):
        """The paper's example: a.b.c || c.a.b is empty when all symbols
        are common."""
        alphabet = {"a", "b", "c"}
        assert not synchronizable(("a", "b", "c"), ("c", "a", "b"), alphabet, alphabet)

    def test_identical_common_traces_synchronize(self):
        alphabet = {"a", "b"}
        result = parallel_compose_traces(("a", "b"), ("a", "b"), alphabet, alphabet)
        assert result == {("a", "b")}

    def test_disjoint_alphabets_give_all_shuffles(self):
        result = parallel_compose_traces(("a",), ("x", "y"), {"a"}, {"x", "y"})
        assert result == {("a", "x", "y"), ("x", "a", "y"), ("x", "y", "a")}

    def test_partial_synchronization(self):
        # common symbol 's'; private 'a' left, 'x' right.
        result = parallel_compose_traces(
            ("a", "s"), ("x", "s"), {"a", "s"}, {"x", "s"}
        )
        assert result == {("a", "x", "s"), ("x", "a", "s")}

    def test_max_length_truncation(self):
        result = parallel_compose_traces(("a",), ("x",), {"a"}, {"x"}, max_length=1)
        assert result == frozenset()
        result = parallel_compose_traces(("a",), ("a",), {"a"}, {"a"}, max_length=1)
        assert result == {("a",)}

    def test_empty_traces_compose_to_empty_trace(self):
        assert parallel_compose_traces((), (), {"a"}, {"b"}) == {()}

    def test_language_composition_is_prefix_closed(self):
        left = prefix_closure({("a", "s")})
        right = prefix_closure({("x", "s")})
        composed = parallel_compose_languages(left, right, {"a", "s"}, {"x", "s"})
        assert is_prefix_closed(composed)


class TestTheorem45BoundedForm:
    """Theorem 4.5 at bounded depth: the depth-k language of N1||N2 equals
    the depth-k truncation of composing the depth-k languages."""

    def test_fig2_composition(self):
        from repro.algebra.compose import parallel

        depth = 5
        left, right = fig2_left(), fig2_right()
        composed_net = parallel(left, right)
        direct = bounded_language(composed_net, depth)
        via_traces = parallel_compose_languages(
            bounded_language(left, depth),
            bounded_language(right, depth),
            left.actions,
            right.actions,
            max_length=depth,
        )
        assert direct == via_traces


class TestPrefixClosure:
    def test_closure_adds_prefixes(self):
        assert prefix_closure({("a", "b")}) == {(), ("a",), ("a", "b")}

    def test_is_prefix_closed_detects_gap(self):
        assert not is_prefix_closed({("a", "b")})
        assert is_prefix_closed({(), ("a",)})
