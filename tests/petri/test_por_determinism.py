"""Determinism of the reduced exploration (``engine="por"``).

The DFS driver of :mod:`repro.petri.dfs` assumes the stubborn-set
selector proposes the *same* subset at the same marking every time —
across repeated runs, and across the ``dict`` and ``compiled``
backends, whose state encodings differ but whose decisions must not.
These tests pin that contract end to end:

* the full explored-state *sequence* (not just the set) of a reduced
  exploration is identical run over run, under both provisos;
* the ``dict`` and ``compiled`` backends discover byte-identical
  marking sequences and agree on every reduction counter;
* :meth:`StubbornSelector._scapegoat` — the one spot where a sloppy
  implementation could consult set iteration order — is a pure
  function of the net and the marking: shuffling the declaration order
  of places and presets never changes its choice.
"""

from __future__ import annotations

import random

import pytest

from repro.core.circuit import compose_many
from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.independence import StubbornSelector
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.product import LazyStateSpace

SEED = 0xC1A0


def channel_bank(channels: int):
    modules = []
    for index in range(channels):
        modules.append(
            four_phase_master(req=f"r{index}", ack=f"a{index}", name=f"m{index}")
        )
        modules.append(
            four_phase_slave(req=f"r{index}", ack=f"a{index}", name=f"s{index}")
        )
    return compose_many(modules)


def discovery_sequence(net, backend: str, proviso: str) -> list[Marking]:
    space = LazyStateSpace(
        net,
        reduction=True,
        visible_actions=(),
        backend=backend,
        proviso=proviso,
    )
    sequence = list(space.iter_discovery())
    assert len(sequence) == space.num_explored()
    return sequence


class TestRunToRunDeterminism:
    @pytest.mark.parametrize("proviso", ["fresh", "stack"])
    def test_identical_explored_state_sequences(self, proviso):
        net = channel_bank(3).net
        first = discovery_sequence(net, "dict", proviso)
        second = discovery_sequence(net, "dict", proviso)
        assert first == second

    @pytest.mark.parametrize("proviso", ["fresh", "stack"])
    def test_identical_counters(self, proviso):
        net = channel_bank(3).net
        runs = []
        for _ in range(2):
            space = LazyStateSpace(
                net,
                reduction=True,
                visible_actions=(),
                proviso=proviso,
            )
            space.explore_all()
            runs.append(
                (
                    space.stats.states,
                    space.stats.edges,
                    space.stats.reduced_states,
                    space.stats.sleep_skips,
                    space.stats.cycle_expansions,
                )
            )
        assert runs[0] == runs[1]


class TestBackendDeterminism:
    @pytest.mark.parametrize("proviso", ["fresh", "stack"])
    def test_dict_and_compiled_discover_identical_sequences(self, proviso):
        net = channel_bank(3).net
        assert discovery_sequence(net, "dict", proviso) == (
            discovery_sequence(net, "compiled", proviso)
        )

    def test_backends_agree_on_reduction_counters(self):
        net = channel_bank(3).net
        counters = []
        for backend in ("dict", "compiled"):
            space = LazyStateSpace(
                net,
                reduction=True,
                visible_actions=(),
                backend=backend,
                proviso="stack",
            )
            space.explore_all()
            counters.append(
                (
                    space.stats.states,
                    space.stats.edges,
                    space.stats.reduced_states,
                    space.stats.sleep_skips,
                    space.stats.cycle_expansions,
                )
            )
        assert counters[0] == counters[1]


class TestScapegoatDeterminism:
    """``_scapegoat`` picks the empty input place of a disabled stubborn
    member whose strict-producer set is smallest.  Its audit point: the
    scan must run over ``sorted(preset)`` with a strict ``<`` cost
    comparison, so the winner is a pure function of the net and the
    marking — never of dict/set iteration order."""

    PLACES = ["e1", "e2", "e3", "e4", "m1"]

    def build(self, place_order, preset_order) -> PetriNet:
        """The same net, declared in a permuted order: one disabled
        transition with four empty input places, each fed by a
        different number of strict producers (e2 is cheapest)."""
        net = PetriNet("scape", places=list(place_order))
        net.add_transition(set(preset_order), "goal", {"m1"})  # t0, disabled
        feeders = {"e1": 2, "e2": 1, "e3": 3, "e4": 2}
        for place, producers in sorted(feeders.items()):
            for index in range(producers):
                net.add_transition({"m1"}, f"feed_{place}_{index}", {place})
        net.set_initial(Marking({"m1": 1}))
        return net

    def test_choice_survives_declaration_shuffles(self):
        rng = random.Random(SEED)
        choices = set()
        for _ in range(10):
            place_order = self.PLACES[:]
            preset_order = ["e1", "e2", "e3", "e4"]
            rng.shuffle(place_order)
            rng.shuffle(preset_order)
            net = self.build(place_order, preset_order)
            selector = StubbornSelector(net, visible_tids=())
            choices.add(selector._scapegoat(0, net.initial))
        assert choices == {"e2"}  # fewest strict producers, always

    def test_tie_breaks_on_place_name(self):
        # e1 and e4 tie at two producers each once e2/e3 are marked:
        # the sorted scan must settle on the lexicographically first.
        net = self.build(self.PLACES, ["e1", "e2", "e3", "e4"])
        selector = StubbornSelector(net, visible_tids=())
        marking = net.initial.add(["e2", "e3"])
        assert selector._scapegoat(0, marking) == "e1"
