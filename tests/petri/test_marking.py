"""Unit tests for markings (Definition 2.2 token arithmetic)."""

import pytest

from repro.petri.marking import Marking


class TestConstruction:
    def test_zero_counts_are_normalized_away(self):
        assert Marking({"p": 0, "q": 1}) == Marking({"q": 1})

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Marking({"p": -1})

    def test_from_places_counts_duplicates(self):
        marking = Marking.from_places(["p", "p", "q"])
        assert marking["p"] == 2
        assert marking["q"] == 1

    def test_missing_place_reads_zero(self):
        assert Marking({"p": 1})["absent"] == 0

    def test_equal_markings_hash_equal(self):
        assert hash(Marking({"p": 1, "q": 0})) == hash(Marking({"p": 1}))

    def test_mapping_interface(self):
        marking = Marking({"p": 2, "q": 1})
        assert set(marking) == {"p", "q"}
        assert len(marking) == 2
        assert "p" in marking and "r" not in marking

    def test_equality_against_plain_dict(self):
        assert Marking({"p": 1}) == {"p": 1}


class TestAlgebra:
    def test_add_and_remove_roundtrip(self):
        marking = Marking({"p": 1})
        assert marking.add(["q"]).remove(["q"]) == marking

    def test_remove_from_empty_place_raises(self):
        with pytest.raises(ValueError):
            Marking({}).remove(["p"])

    def test_covers_is_pointwise(self):
        big = Marking({"p": 2, "q": 1})
        small = Marking({"p": 1})
        assert big.covers(small)
        assert not small.covers(big)
        assert big.covers(big)

    def test_total_and_marked_places(self):
        marking = Marking({"p": 2, "q": 1})
        assert marking.total() == 3
        assert marking.marked_places() == {"p", "q"}

    def test_is_safe(self):
        assert Marking({"p": 1, "q": 1}).is_safe()
        assert not Marking({"p": 2}).is_safe()

    def test_restrict(self):
        marking = Marking({"p": 1, "q": 2})
        assert marking.restrict(["q", "r"]) == Marking({"q": 2})

    def test_rename_merges_counts(self):
        marking = Marking({"p": 1, "q": 2})
        assert marking.rename({"p": "m", "q": "m"}) == Marking({"m": 3})

    def test_rename_keeps_unlisted(self):
        assert Marking({"p": 1}).rename({}) == Marking({"p": 1})
