"""The channel-bank blind spot, now fixed (ROADMAP item 5).

Channel banks — parallel four-phase master/slave handshake pairs — are
pure cycles, and the original ``proviso="fresh"`` ignoring-prevention
rule fully re-expanded every one of them: ``BENCH_por.json`` used to
record ``channel-bank(4)`` at 256 states with *and* without
``reduction=True``.  The DFS-stack proviso with sleep sets
(:mod:`repro.petri.dfs`, the default for direct exploration) closes the
gap: a bank of ``n`` independent channels reduces to ``3*2^(n-1)+1``
states — 25 instead of 256 for ``n = 4``.

Two tests pin the fix from both sides:

* the former ``xfail(strict=False)`` anchor, now a hard assertion of
  strict reduction — if the proviso ever regresses to full cycle
  expansion this fails loudly instead of quietly dropping an XPASS;
* an exact pin of the reduced and full counts against the committed
  ``BENCH_por.json`` trajectory, so a *silent* change in either
  direction (reduction weakening, reduction deepening, or the full
  space changing) shows up as a hard failure and forces the benchmark
  file to be refreshed deliberately.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.circuit import compose_many
from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.product import LazyStateSpace

BENCH_POR = Path(__file__).parent.parent.parent / "benchmarks" / "BENCH_por.json"

CHANNELS = 4

#: The reduced deadlock-preserving exploration of channel-bank(n) under
#: the DFS-stack proviso: one shared idle marking plus three live
#: phases per channel, doubling per extra channel instead of
#: quadrupling.  Pinned exactly so reduction changes are deliberate.
REDUCED_STATES = 3 * 2 ** (CHANNELS - 1) + 1


def channel_bank(channels: int):
    modules = []
    for index in range(channels):
        modules.append(
            four_phase_master(req=f"r{index}", ack=f"a{index}", name=f"m{index}")
        )
        modules.append(
            four_phase_slave(req=f"r{index}", ack=f"a{index}", name=f"s{index}")
        )
    return compose_many(modules)


def explored_states(reduction: bool) -> int:
    net = channel_bank(CHANNELS).net
    space = LazyStateSpace(net, reduction=reduction, visible_actions=())
    space.explore_all()
    return space.stats.states


def test_por_reduces_channel_bank_below_full_space():
    """The former xfail anchor, flipped: strict reduction on the pure
    cycles the fresh proviso was blind on."""
    assert explored_states(reduction=True) < 4**CHANNELS


def test_channel_bank_blind_spot_is_pinned():
    """The fixed counts, asserted exactly and cross-checked against the
    committed benchmark entry: full torus 4^n, reduced 3*2^(n-1)+1."""
    full = explored_states(reduction=False)
    reduced = explored_states(reduction=True)
    assert full == 4**CHANNELS
    assert reduced == REDUCED_STATES
    assert reduced < full  # the blind spot is gone

    if BENCH_POR.exists():
        recorded = json.loads(BENCH_POR.read_text())["instances"][
            f"channel-bank({CHANNELS}) deadlock-preserving"
        ]
        assert recorded["onthefly"] == full
        assert recorded["por"] == reduced
