"""Characterization of POR's channel-bank blind spot (ROADMAP item 5).

``BENCH_por.json`` records the stubborn-set engine achieving *zero*
reduction on channel banks — ``channel-bank(4)`` explores 256 states
with and without ``reduction=True`` — because the ignoring-prevention
proviso re-expands every pure cycle.  These tests pin that behaviour
from both sides:

* an ``xfail(strict=False)`` anchor asserting strict reduction, which
  today fails and will flip to XPASS the moment a weaker proviso (e.g.
  a DFS-stack condition, or sleep sets on top of the existing
  ``StubbornSelector``) lands — making the fix visible in the test
  report without blocking CI until then;
* a plain passing test asserting today's 256 == 256 equality and its
  consistency with the committed ``BENCH_por.json`` trajectory, so a
  *silent* change in either direction (reduction appearing, or the
  full space growing) shows up as a hard failure.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.circuit import compose_many
from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.product import LazyStateSpace

BENCH_POR = Path(__file__).parent.parent.parent / "benchmarks" / "BENCH_por.json"

CHANNELS = 4


def channel_bank(channels: int):
    modules = []
    for index in range(channels):
        modules.append(
            four_phase_master(req=f"r{index}", ack=f"a{index}", name=f"m{index}")
        )
        modules.append(
            four_phase_slave(req=f"r{index}", ack=f"a{index}", name=f"s{index}")
        )
    return compose_many(modules)


def explored_states(reduction: bool) -> int:
    net = channel_bank(CHANNELS).net
    space = LazyStateSpace(net, reduction=reduction, visible_actions=())
    space.explore_all()
    return space.stats.states


@pytest.mark.xfail(
    strict=False,
    reason=(
        "ROADMAP item 5: the ignoring-prevention proviso re-expands every "
        "pure cycle, so channel banks get zero reduction (256 -> 256 in "
        "BENCH_por.json). A weaker proviso or sleep sets should flip this "
        "to XPASS."
    ),
)
def test_por_reduces_channel_bank_below_full_space():
    assert explored_states(reduction=True) < 4**CHANNELS


def test_channel_bank_blind_spot_is_pinned():
    """Today's reality, asserted exactly: the reduced exploration visits
    the *entire* 4^n torus, matching the committed benchmark entry."""
    full = explored_states(reduction=False)
    reduced = explored_states(reduction=True)
    assert full == 4**CHANNELS
    assert reduced == full  # the blind spot

    if BENCH_POR.exists():
        recorded = json.loads(BENCH_POR.read_text())["instances"][
            f"channel-bank({CHANNELS}) deadlock-preserving"
        ]
        assert recorded["onthefly"] == full
        assert recorded["por"] == reduced
