"""Compiled backend: lowering correctness and dict-parity guarantees.

The compiled backend must be *observationally identical* to the dict
backend — same states, same discovery order, same errors (to the byte),
same witnesses, same reduction decisions — only faster.  This module
pins that contract:

* unit tests of the lowering itself (indices, codecs, encode/decode,
  deficit counters);
* hypothesis differential tests running both backends on random nets
  (enabledness, firing walks, hashing/equality, eager and lazy BFS,
  unboundedness witnesses, POR reduction);
* a CLI differential asserting byte-identical ``cip verify`` output
  across ``--backend dict/compiled`` x ``--engine eager/onthefly/por``
  on the Fig 5-8 case-study nets.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cli import main
from repro.petri.compiled import (
    BACKENDS,
    DEFAULT_BACKEND,
    CompiledNet,
    PackedMarkingView,
    compile_net,
    resolve_backend,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.product import LazyStateSpace
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError

from tests.strategies import petri_nets, bounded_nets, bounded_multi_token_nets

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)


def demo_net() -> PetriNet:
    """A small conservative net with a conflict and a join."""
    net = PetriNet("demo")
    net.add_transition({"p0"}, "a", {"p1"}, tid=0)
    net.add_transition({"p0"}, "b", {"p2"}, tid=1)
    net.add_transition({"p1", "p3"}, "c", {"p0", "p3"}, tid=2)
    net.set_initial(Marking({"p0": 1, "p3": 1}))
    return net


class TestResolveBackend:
    def test_default(self):
        assert resolve_backend(None) == DEFAULT_BACKEND
        assert DEFAULT_BACKEND in BACKENDS

    def test_identity_on_known(self):
        for backend in BACKENDS:
            assert resolve_backend(backend) == backend

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("sparse")


class TestLowering:
    def test_dense_indices_cover_sorted_places(self):
        cnet = demo_net().compiled()
        assert cnet.place_names == tuple(sorted(demo_net().places))
        assert [cnet.place_index[p] for p in cnet.place_names] == list(
            range(cnet.num_places)
        )

    def test_transitions_in_tid_order(self):
        cnet = demo_net().compiled()
        assert cnet.tids == (0, 1, 2)
        assert cnet.actions == ("a", "b", "c")

    def test_index_tuples_match_transition_sets(self):
        net = demo_net()
        cnet = net.compiled()
        for dense, transition in enumerate(cnet.transitions):
            assert cnet.pre[dense] == tuple(
                sorted(cnet.place_index[p] for p in transition.preset)
            )
            assert cnet.consume[dense] == tuple(
                sorted(cnet.place_index[p] for p in transition.consume)
            )
            assert cnet.produce[dense] == tuple(
                sorted(cnet.place_index[p] for p in transition.produce)
            )

    def test_consumer_adjacency(self):
        cnet = demo_net().compiled()
        by_place = {
            place: tuple(
                dense
                for dense, t in enumerate(cnet.transitions)
                if place in t.preset
            )
            for place in cnet.place_names
        }
        for i, place in enumerate(cnet.place_names):
            assert cnet.consumers[i] == by_place[place]

    def test_compile_cached_and_invalidated(self):
        net = demo_net()
        first = net.compiled()
        assert net.compiled() is first
        net.add_transition({"p2"}, "d", {"p0"})
        second = net.compiled()
        assert second is not first
        assert second.num_transitions == first.num_transitions + 1


class TestCodecs:
    def test_conservative_net_gets_bytes_codec(self):
        cnet = demo_net().compiled()
        assert cnet.codec == "bytes"
        assert cnet.token_bound == 2
        assert cnet.bounded_certified
        assert isinstance(cnet.initial_state, bytes)

    def test_small_nonconservative_net_gets_wide_codec(self):
        net = PetriNet("fork")
        net.add_transition({"p0"}, "a", {"p1", "p2"}, tid=0)
        net.set_initial(Marking({"p0": 1}))
        cnet = net.compiled()
        assert cnet.codec == "wide"
        assert not cnet.bounded_certified
        assert isinstance(cnet.initial_state, tuple)

    def test_invariant_certificate_on_composite_fork_join(self):
        """The Fig 5/7 composite is not token-conservative (rendez-vous
        fusion forks), but the LP invariant certifies a bound and the
        bytes codec applies."""
        from repro.models.protocol_translator import sender, translator
        from repro.verify.receptiveness import compose_with_obligations

        composite, _ = compose_with_obligations(sender(), translator())
        assert any(
            len(t.produce) > len(t.consume)
            for t in composite.net.transitions.values()
        )
        cnet = composite.net.compiled()
        assert cnet.codec == "bytes"
        assert cnet.bounded_certified

    def test_encode_decode_roundtrip(self):
        net = demo_net()
        cnet = net.compiled()
        marking = Marking({"p1": 1, "p3": 1})
        assert cnet.decode(cnet.encode(marking)) == marking

    def test_encode_rejects_unknown_place(self):
        cnet = demo_net().compiled()
        with pytest.raises(KeyError):
            cnet.encode(Marking({"nowhere": 1}))

    def test_bytes_encode_rejects_overflow(self):
        cnet = demo_net().compiled()
        assert cnet.codec == "bytes"
        with pytest.raises(ValueError):
            cnet.encode(Marking({"p0": 300}))

    def test_wide_codec_has_no_count_limit(self):
        net = PetriNet("fork")
        net.add_transition({"p0"}, "a", {"p1", "p2"}, tid=0)
        net.set_initial(Marking({"p0": 1}))
        cnet = net.compiled()
        big = Marking({"p0": 100_000})
        assert cnet.decode(cnet.encode(big)) == big


class TestPackedMarkingView:
    def test_mapping_surface(self):
        net = demo_net()
        cnet = net.compiled()
        view = PackedMarkingView(cnet, cnet.initial_state)
        assert view["p0"] == 1
        assert view["p1"] == 0
        assert view["unknown"] == 0
        assert set(view) == {"p0", "p3"}
        assert len(view) == 2
        assert dict(view.items()) == dict(net.initial.items())


class TestDeficitCounters:
    def test_initial_enabled_matches_dict_engine(self):
        net = demo_net()
        cnet = net.compiled()
        expected = tuple(
            cnet.tid_index[t.tid] for t in net.enabled_transitions(net.initial)
        )
        assert cnet.initial_enabled == expected

    def test_successor_matches_full_rescan(self):
        net = demo_net()
        cnet = net.compiled()
        state = cnet.initial_state
        deficits, enabled = cnet.initial_deficits, cnet.initial_enabled
        for _ in range(20):
            if not enabled:
                break
            dense = enabled[0]
            state, deficits, enabled, _ = cnet.successor(
                state, deficits, enabled, dense
            )
            assert (deficits, enabled) == cnet.analyze_state(state)


@RELAXED
@given(net=st.one_of(bounded_nets(), bounded_multi_token_nets()))
def test_enabledness_and_firing_parity(net):
    """Walk the whole reachable space firing through both
    representations in lockstep: enabled sets, successors and the
    incremental deficit counters agree with the dict engine at every
    state."""
    cnet = net.compiled()
    seen = set()
    stack = [(net.initial, cnet.encode(net.initial))]
    info = {stack[0][1]: cnet.analyze_state(stack[0][1])}
    while stack:
        marking, state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        assert cnet.decode(state) == marking
        deficits, enabled = info.pop(state)
        dict_enabled = net.enabled_transitions(marking)
        assert [cnet.tids[d] for d in enabled] == [t.tid for t in dict_enabled]
        for dense, transition in zip(enabled, dict_enabled):
            assert cnet.is_enabled(dense, state)
            child, child_deficits, child_enabled, _ = cnet.successor(
                state, deficits, enabled, dense
            )
            assert (child_deficits, child_enabled) == cnet.analyze_state(child)
            assert child == cnet.fire(state, dense)
            successor = net.fire(transition, marking, check=False)
            assert cnet.decode(child) == successor
            info.setdefault(child, (child_deficits, child_enabled))
            stack.append((successor, child))


@RELAXED
@given(net=st.one_of(bounded_nets(), bounded_multi_token_nets()))
def test_hashing_and_equality_parity(net):
    """Packed states are equal (and hash-equal) exactly when the
    markings they encode are equal — the visited-set contract."""
    graph = ReachabilityGraph(net, backend="dict")
    cnet = net.compiled()
    packed = {marking: cnet.encode(marking) for marking in graph.states}
    assert len(set(packed.values())) == len(packed)
    for marking, state in packed.items():
        again = cnet.encode(Marking(dict(marking)))
        assert again == state
        assert hash(again) == hash(state)
        assert cnet.decode(state) == marking
        assert hash(cnet.decode(state)) == hash(marking)


@RELAXED
@given(net=st.one_of(bounded_nets(), bounded_multi_token_nets()))
def test_eager_graph_parity(net):
    """Full ReachabilityGraph equality across backends: states, edge
    lists (including order), deadlocks, bound and frontier peak."""
    dict_graph = ReachabilityGraph(net, backend="dict")
    compiled_graph = ReachabilityGraph(net, backend="compiled")
    assert compiled_graph.states == dict_graph.states
    assert list(compiled_graph.edges) == list(dict_graph.edges)
    assert compiled_graph.num_edges() == dict_graph.num_edges()
    assert sorted(map(repr, compiled_graph.deadlocks())) == sorted(
        map(repr, dict_graph.deadlocks())
    )
    assert compiled_graph.bound() == dict_graph.bound()
    assert compiled_graph.frontier_peak == dict_graph.frontier_peak


@RELAXED
@given(net=petri_nets())
def test_unboundedness_witness_parity(net):
    """On arbitrary (possibly unbounded) nets both backends either
    succeed with the same space or raise UnboundedNetError with the
    same message and the same witness marking."""
    outcomes = {}
    for backend in BACKENDS:
        try:
            graph = ReachabilityGraph(net, max_states=300, backend=backend)
            outcomes[backend] = ("ok", graph.num_states(), graph.num_edges())
        except UnboundedNetError as error:
            outcomes[backend] = ("err", str(error), error.witness)
    assert outcomes["compiled"] == outcomes["dict"]


@RELAXED
@given(net=st.one_of(bounded_nets(), bounded_multi_token_nets()))
def test_lazy_space_parity(net):
    """Demand-driven parity: BFS discovery sequence, successor edges
    and shortest traces agree across backends."""
    dict_space = LazyStateSpace(net, backend="dict")
    compiled_space = LazyStateSpace(net, backend="compiled")
    dict_seq = list(dict_space.iter_bfs())
    compiled_seq = list(compiled_space.iter_bfs())
    assert compiled_seq == dict_seq
    for marking in dict_seq:
        assert compiled_space.successors(marking) == dict_space.successors(
            marking
        )
        assert compiled_space.trace_to(marking) == dict_space.trace_to(marking)
    assert compiled_space.num_explored() == dict_space.num_explored()
    assert compiled_space.stats.edges == dict_space.stats.edges


@RELAXED
@given(net=st.one_of(bounded_nets(), bounded_multi_token_nets()))
def test_por_reduction_parity(net):
    """Stubborn-set decisions are backend-independent: the reduced
    space has the same states, edges and reduction count."""
    spaces = {
        backend: LazyStateSpace(net, reduction=True, backend=backend)
        for backend in BACKENDS
    }
    explored = {b: s.explore_all() for b, s in spaces.items()}
    assert explored["compiled"] == explored["dict"]
    assert (
        spaces["compiled"].stats.reduced_states
        == spaces["dict"].stats.reduced_states
    )
    assert spaces["compiled"].stats.edges == spaces["dict"].stats.edges


@pytest.fixture(scope="module")
def fig_files(tmp_path_factory):
    """The Fig 5-8 case-study modules as .json CLI inputs."""
    from repro.io.json_io import save
    from repro.models.protocol_translator import (
        inconsistent_sender,
        receiver,
        sender,
        translator,
    )

    root = tmp_path_factory.mktemp("figs")
    paths = {}
    for name, model in (
        ("fig5_sender", sender),
        ("fig6_receiver", receiver),
        ("fig7_translator", translator),
        ("fig8_inconsistent", inconsistent_sender),
    ):
        path = root / f"{name}.json"
        save(model(), str(path))
        paths[name] = str(path)
    return paths


class TestCliBackendDifferential:
    """`cip verify` must print byte-identical output and return the
    same exit code for every engine x backend combination."""

    @pytest.mark.parametrize("engine", ["eager", "onthefly", "por"])
    @pytest.mark.parametrize(
        "left,right,expected",
        [("fig5_sender", "fig7_translator", 0), ("fig8_inconsistent", "fig7_translator", 1)],
    )
    def test_verify_outputs_identical(
        self, fig_files, capsys, engine, left, right, expected
    ):
        outputs = {}
        for backend in BACKENDS:
            code = main(
                [
                    "verify",
                    fig_files[left],
                    fig_files[right],
                    "--engine",
                    engine,
                    "--backend",
                    backend,
                ]
            )
            assert code == expected
            outputs[backend] = capsys.readouterr().out
        assert outputs["compiled"] == outputs["dict"]

    def test_info_outputs_identical(self, fig_files, capsys):
        outputs = {}
        for backend in BACKENDS:
            assert (
                main(["info", fig_files["fig7_translator"], "--backend", backend])
                == 0
            )
            outputs[backend] = capsys.readouterr().out
        assert outputs["compiled"] == outputs["dict"]


class TestObsMetrics:
    def test_compile_emits_span_and_gauges(self):
        from repro.obs import metrics as obs

        net = demo_net()
        with obs.record() as recorder:
            compile_net(net)
        payload = recorder.to_dict()
        spans = [s for s in payload["spans"] if s["name"] == "compile.net"]
        assert len(spans) == 1
        assert spans[0]["meta"]["codec"] == "bytes"
        assert payload["counters"]["compile.nets"] == 1
        assert payload["gauges"]["compile.encode_width_bytes"] == len(
            net.places
        )

    def test_search_span_records_backend(self):
        from repro.models.library import four_phase_master, four_phase_slave
        from repro.verify.receptiveness import check_receptiveness

        report = check_receptiveness(
            four_phase_master(),
            four_phase_slave(),
            method="reachability",
            backend="compiled",
        )
        span = next(
            s
            for s in report.metrics["spans"]
            if s["name"] == "verify.receptiveness.search"
        )
        assert span["meta"]["backend"] == "compiled"
