"""Tests for Karp-Miller coverability analysis."""

from repro.petri.coverability import (
    OMEGA,
    can_cover,
    coverability_tree,
    is_bounded,
    place_bounds,
    unbounded_places,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet


def producer() -> PetriNet:
    """p self-regenerates and pumps tokens into q: q is unbounded."""
    net = PetriNet("producer")
    net.add_transition({"p"}, "make", {"p", "q"})
    net.set_initial(Marking({"p": 1}))
    return net


def cycle() -> PetriNet:
    net = PetriNet("cycle")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return net


class TestBoundedness:
    def test_cycle_is_bounded(self):
        assert is_bounded(cycle())

    def test_producer_is_unbounded(self):
        assert not is_bounded(producer())

    def test_unbounded_places_identified(self):
        assert unbounded_places(producer()) == {"q"}

    def test_producer_consumer_unbounded_buffer(self):
        net = PetriNet()
        net.add_transition({"idle"}, "produce", {"idle", "buffer"})
        net.add_transition({"buffer"}, "consume", set())
        net.set_initial(Marking({"idle": 1}))
        assert unbounded_places(net) == {"buffer"}

    def test_deadlocked_net_is_bounded(self):
        net = PetriNet()
        net.add_place("p", tokens=3)
        assert is_bounded(net)


class TestBounds:
    def test_place_bounds_of_cycle(self):
        assert place_bounds(cycle()) == {"p0": 1, "p1": 1}

    def test_omega_bound_reported(self):
        bounds = place_bounds(producer())
        assert bounds["q"] == OMEGA
        assert bounds["p"] == 1

    def test_two_token_bound(self):
        net = PetriNet()
        net.add_transition({"a"}, "x", {"b"})
        net.set_initial(Marking({"a": 2}))
        assert place_bounds(net) == {"a": 2, "b": 2}


class TestCoverability:
    def test_can_cover_reachable_marking(self):
        assert can_cover(cycle(), Marking({"p1": 1}))

    def test_cannot_cover_two_tokens_in_safe_net(self):
        assert not can_cover(cycle(), Marking({"p0": 2}))

    def test_can_cover_arbitrary_count_in_unbounded_place(self):
        assert can_cover(producer(), Marking({"q": 50}))

    def test_tree_structure(self):
        tree = coverability_tree(cycle())
        assert len(tree.nodes) == 2
        assert tree.is_bounded()
