"""Unit tests for the labeled Petri net structure (Definition 2.1)."""

import pytest

from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet, disjoint_pair


def simple_cycle() -> PetriNet:
    net = PetriNet("cycle")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return net


class TestConstruction:
    def test_places_created_implicitly(self):
        net = PetriNet()
        net.add_transition({"x"}, "a", {"y"})
        assert net.places == {"x", "y"}

    def test_alphabet_extended_by_labels(self):
        net = PetriNet(actions={"z"})
        net.add_transition({"x"}, "a", {"y"})
        assert net.actions == {"z", "a"}

    def test_explicit_tid_collision_rejected(self):
        net = PetriNet()
        net.add_transition({"x"}, "a", {"y"}, tid=5)
        with pytest.raises(ValueError):
            net.add_transition({"x"}, "b", {"y"}, tid=5)

    def test_auto_tids_skip_used_ids(self):
        net = PetriNet()
        net.add_transition({"x"}, "a", {"y"}, tid=0)
        second = net.add_transition({"x"}, "b", {"y"})
        assert second.tid != 0

    def test_remove_place_requires_isolation(self):
        net = simple_cycle()
        with pytest.raises(ValueError):
            net.remove_place("p0")
        net.remove_transition(0)
        net.remove_transition(1)
        net.remove_place("p1")
        assert "p1" not in net.places

    def test_validate_passes_on_wellformed_net(self):
        simple_cycle().validate()

    def test_validate_rejects_foreign_label(self):
        net = simple_cycle()
        net.actions.discard("a")
        with pytest.raises(ValueError):
            net.validate()

    def test_add_place_with_tokens(self):
        net = PetriNet()
        net.add_place("p", tokens=2)
        assert net.initial["p"] == 2


class TestDynamics:
    def test_enabled_requires_all_preset_tokens(self):
        net = PetriNet()
        t = net.add_transition({"x", "y"}, "a", {"z"})
        assert not net.is_enabled(t, Marking({"x": 1}))
        assert net.is_enabled(t, Marking({"x": 1, "y": 1}))

    def test_fire_moves_tokens(self):
        net = simple_cycle()
        t = net.transitions[0]
        assert net.fire(t, net.initial) == Marking({"p1": 1})

    def test_fire_disabled_raises(self):
        net = simple_cycle()
        with pytest.raises(ValueError):
            net.fire(net.transitions[1], net.initial)

    def test_self_loop_place_needs_token_but_keeps_it(self):
        net = PetriNet()
        t = net.add_transition({"x", "loop"}, "a", {"y", "loop"})
        assert not net.is_enabled(t, Marking({"x": 1}))
        after = net.fire(t, Marking({"x": 1, "loop": 1}))
        assert after == Marking({"y": 1, "loop": 1})

    def test_enabled_transitions_ordered_by_tid(self):
        net = PetriNet()
        net.add_transition({"p"}, "b", {"q"}, tid=7)
        net.add_transition({"p"}, "a", {"q"}, tid=3)
        order = [t.tid for t in net.enabled_transitions(Marking({"p": 1}))]
        assert order == [3, 7]

    def test_epsilon_is_an_ordinary_label(self):
        net = PetriNet()
        net.add_transition({"p"}, EPSILON, {"q"})
        assert EPSILON in net.actions


class TestQueries:
    def test_consumers_and_producers(self):
        net = simple_cycle()
        assert [t.action for t in net.consumers("p0")] == ["a"]
        assert [t.action for t in net.producers("p0")] == ["b"]

    def test_transitions_with_action(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        net.add_transition({"q"}, "a", {"p"})
        net.add_transition({"p"}, "b", {"q"})
        assert len(net.transitions_with_action("a")) == 2

    def test_arcs_counts_both_directions(self):
        net = PetriNet()
        net.add_transition({"x", "y"}, "a", {"z"})
        assert net.arcs() == 3

    def test_stats(self):
        stats = simple_cycle().stats()
        assert stats == {"places": 2, "transitions": 2, "arcs": 4, "tokens": 1}


class TestCopyRename:
    def test_copy_is_independent(self):
        net = simple_cycle()
        clone = net.copy()
        clone.add_transition({"p0"}, "c", {"p1"})
        assert len(net.transitions) == 2
        assert len(clone.transitions) == 3

    def test_renamed_places_updates_everything(self):
        net = simple_cycle()
        renamed = net.renamed_places({"p0": "start"})
        renamed.validate()
        assert renamed.initial == Marking({"start": 1})
        assert renamed.transitions[0].preset == {"start"}

    def test_renamed_places_rejects_merges(self):
        net = simple_cycle()
        with pytest.raises(ValueError):
            net.renamed_places({"p0": "p1"})

    def test_prefixed_places(self):
        net = simple_cycle().prefixed_places("X.")
        assert net.places == {"X.p0", "X.p1"}

    def test_with_fresh_tids(self):
        net = simple_cycle().with_fresh_tids(10)
        assert sorted(net.transitions) == [10, 11]
        net.validate()

    def test_guards_survive_renaming(self):
        net = simple_cycle()
        net.set_guard("p0", 0, "guard-object")
        renamed = net.renamed_places({"p0": "start"})
        assert renamed.guard_of("start", 0) == "guard-object"


class TestDisjointPair:
    def test_colliding_places_are_prefixed(self):
        left, right = disjoint_pair(simple_cycle(), simple_cycle())
        assert not (left.places & right.places)
        assert not (set(left.transitions) & set(right.transitions))

    def test_disjoint_nets_left_untouched(self):
        one = simple_cycle()
        other = simple_cycle().renamed_places({"p0": "q0", "p1": "q1"})
        left, right = disjoint_pair(one, other)
        assert left.places == {"p0", "p1"}
        assert right.places == {"q0", "q1"}
