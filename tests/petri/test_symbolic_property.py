"""Soundness of the symbolic engine, property-tested against eager.

The state-equation engine is a semi-decision procedure: INCONCLUSIVE is
always allowed, but every CONCLUSIVE verdict is a *proof* and must
therefore agree with the eager oracle on any net hypothesis can dream
up.  Each property enumerates the ground truth explicitly (reachable
markings, fired actions, receptiveness verdicts) and checks that no
conclusive symbolic answer ever contradicts it.

When a property fails, the shrunk counterexample net(s) are persisted
as JSON under ``tests/petri/symbolic_failures/`` (hypothesis replays
the minimal example last, so the file left behind is the fully shrunk
net) for offline replay via :func:`repro.io.json_io.net_from_dict` —
the same harness the POR differential suite uses.
"""

from __future__ import annotations

import json
from pathlib import Path

from hypothesis import HealthCheck, given, settings

from repro.io.json_io import net_to_dict
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.petri.product import LazyStateSpace, compare_languages
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError
from repro.petri.symbolic import (
    bounded,
    dead_actions,
    language_precheck,
    marking_unreachable,
    predicate_unreachable,
)
from repro.stg.stg import Stg
from repro.verify.receptiveness import check_receptiveness

from tests.strategies import bounded_nets, multi_token_nets

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

THOROUGH = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

SILENT = frozenset({EPSILON, "u"})

SIGNAL_ACTIONS = ["a+", "a-", "b+", "b-"]

FAILURE_DIR = Path(__file__).parent / "symbolic_failures"


class persists_counterexamples:
    """On assertion failure, write the example nets to FAILURE_DIR."""

    def __init__(self, label: str, **nets: PetriNet):
        self.label = label
        self.nets = nets

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None and issubclass(exc_type, AssertionError):
            FAILURE_DIR.mkdir(exist_ok=True)
            payload = {
                name: net_to_dict(net) for name, net in self.nets.items()
            }
            path = FAILURE_DIR / f"{self.label}.json"
            path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return False


def reachable_markings(net: PetriNet) -> set[Marking]:
    space = LazyStateSpace(net)
    space.explore_all()
    return set(space.iter_bfs())


@THOROUGH
@given(net=multi_token_nets())
def test_bounded_verdict_sound(net):
    """A conclusive 'bounded' must never be contradicted by the eager
    construction hitting an unbounded witness (the strategy draws
    genuinely unbounded nets, so the dangerous direction is hit)."""
    with persists_counterexamples("bounded", net=net):
        verdict = bounded(net)
        if not (verdict.conclusive and verdict.holds):
            return  # inconclusive is always allowed
        try:
            ReachabilityGraph(net, max_states=3000)
        except UnboundedNetError:
            raise AssertionError(
                f"symbolic called an unbounded net bounded: {verdict.reason}"
            ) from None


@THOROUGH
@given(net=bounded_nets(max_states=1500))
def test_predicate_unreachable_sound(net):
    """Conclusive place-marking verdicts agree with the enumerated
    reachable set; a conclusive 'reachable' (exact mode) must produce a
    genuinely reachable witness."""
    with persists_counterexamples("predicate", net=net):
        reached = reachable_markings(net)
        for place in sorted(net.places):
            verdict = predicate_unreachable(net, marked=[place])
            truly_unreachable = all(m[place] == 0 for m in reached)
            if not verdict.conclusive:
                continue
            if verdict.holds:
                assert truly_unreachable, (place, verdict.reason)
            else:
                assert not truly_unreachable, (place, verdict.reason)
                assert verdict.witness in reached, (place, verdict.witness)


@RELAXED
@given(net=bounded_nets(max_states=1500))
def test_marking_unreachable_sound(net):
    """Exact-marking verdicts, probed with both genuinely reachable
    targets and a perturbed (token added) variant of each."""
    with persists_counterexamples("marking", net=net):
        reached = reachable_markings(net)
        probes = list(reached)[:5]
        place = min(net.places) if net.places else None
        for marking in list(probes):
            if place is not None:
                bumped = dict(marking)
                bumped[place] = bumped.get(place, 0) + 1
                probes.append(Marking(bumped))
        for target in probes:
            verdict = marking_unreachable(net, target)
            if not verdict.conclusive:
                continue
            if verdict.holds:
                assert target not in reached, (target, verdict.reason)
            else:
                assert target in reached, (target, verdict.reason)


@THOROUGH
@given(net=bounded_nets(max_states=1500))
def test_dead_actions_sound(net):
    """No conclusively-dead action ever fires in the full state space."""
    with persists_counterexamples("dead_actions", net=net):
        dead, _ = dead_actions(net)
        space = LazyStateSpace(net)
        space.explore_all()
        fired = {
            action
            for marking in space.iter_bfs()
            for action, _, _ in space.successors(marking)
        }
        assert not (dead & fired), dead & fired


@RELAXED
@given(net1=bounded_nets(), net2=bounded_nets())
def test_language_precheck_sound(net1, net2):
    """A conclusive language pre-check verdict must match the eager
    language comparison, in both modes."""
    with persists_counterexamples("precheck", net1=net1, net2=net2):
        for mode in ("equal", "contained"):
            verdict = language_precheck(net1, net2, mode=mode, silent=SILENT)
            if not verdict.conclusive:
                continue
            truth = compare_languages(
                net1, net2, mode=mode, silent=SILENT
            ).verdict
            assert verdict.holds == truth, (mode, verdict.reason)


@RELAXED
@given(
    net1=bounded_nets(
        max_places=4, max_transitions=3, actions=SIGNAL_ACTIONS, max_states=400
    ),
    net2=bounded_nets(
        max_places=4, max_transitions=3, actions=SIGNAL_ACTIONS, max_states=400
    ),
)
def test_receptiveness_parity_with_eager(net1, net2):
    """engine=symbolic reports the same receptiveness verdict and the
    same failing obligations as eager: conclusively-safe obligations
    are safe, and the explicit fallback covers everything undecided."""
    with persists_counterexamples("receptiveness", net1=net1, net2=net2):
        producer = Stg(net1, outputs={"a", "b"})
        consumer = Stg(net2, inputs={"a", "b"})
        reports = {
            engine: check_receptiveness(
                producer,
                consumer,
                method="reachability",
                max_states=20_000,
                engine=engine,
            )
            for engine in ("eager", "symbolic")
        }
        eager, symbolic = reports["eager"], reports["symbolic"]
        assert symbolic.is_receptive() == eager.is_receptive()
        failed = lambda r: {  # noqa: E731
            (f.obligation.action, f.obligation.producer) for f in r.failures
        }
        assert failed(symbolic) == failed(eager)
        assert symbolic.symbolic is not None
        counts = symbolic.symbolic
        assert counts["safe"] + counts["failed"] + counts["undecided"] == len(
            symbolic.obligations
        )
