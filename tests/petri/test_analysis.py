"""Tests for behavioural property analysis."""

import pytest

from repro.petri.analysis import (
    analyze,
    conflict_pairs,
    dead_transitions,
    is_bounded,
    is_live,
    is_live_safe,
    is_safe,
    is_structurally_strongly_connected,
    isolated_places,
    source_transitions,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet


def cycle() -> PetriNet:
    net = PetriNet("cycle")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return net


class TestAnalyze:
    def test_cycle_summary(self):
        props = analyze(cycle())
        assert props.bounded and props.safe and props.live
        assert props.deadlock_free and props.reversible
        assert props.states == 2
        assert props.dead_transition_ids == ()

    def test_str_rendering_mentions_key_flags(self):
        text = str(analyze(cycle()))
        assert "safe" in text and "live" in text

    def test_dead_transitions_in_summary(self):
        net = cycle()
        net.add_transition({"nowhere"}, "z", {"p0"})
        assert analyze(net).dead_transition_ids == (2,)


class TestPredicates:
    def test_is_bounded_true_false(self):
        assert is_bounded(cycle())
        unbounded = PetriNet()
        unbounded.add_transition({"p"}, "a", {"p", "q"})
        unbounded.set_initial(Marking({"p": 1}))
        assert not is_bounded(unbounded)

    def test_is_safe(self):
        assert is_safe(cycle())
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        net.set_initial(Marking({"p": 2}))
        assert not is_safe(net)

    def test_is_live_safe(self):
        assert is_live_safe(cycle())
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        net.set_initial(Marking({"p": 1}))
        assert not is_live_safe(net)

    def test_dead_transitions(self):
        net = cycle()
        net.add_transition({"nowhere"}, "z", {"p0"})
        assert [t.action for t in dead_transitions(net)] == ["z"]


class TestStructural:
    def test_cycle_strongly_connected(self):
        assert is_structurally_strongly_connected(cycle())

    def test_linear_chain_not_strongly_connected(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        assert not is_structurally_strongly_connected(net)

    def test_single_place_counts_as_strongly_connected(self):
        net = PetriNet()
        net.add_place("p")
        assert is_structurally_strongly_connected(net)

    def test_disconnected_components_detected(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"p2"})
        net.add_transition({"p2"}, "b", {"p"})
        net.add_transition({"q"}, "c", {"q2"})
        net.add_transition({"q2"}, "d", {"q"})
        assert not is_structurally_strongly_connected(net)

    def test_isolated_places(self):
        net = cycle()
        net.add_place("floating")
        assert isolated_places(net) == {"floating"}

    def test_source_transitions(self):
        net = PetriNet()
        net.add_transition(set(), "spawn", {"p"})
        assert [t.action for t in source_transitions(net)] == ["spawn"]

    def test_conflict_pairs(self):
        net = PetriNet()
        net.add_transition({"s"}, "a", {"x"})
        net.add_transition({"s"}, "b", {"y"})
        net.add_transition({"z"}, "c", {"s"})
        pairs = conflict_pairs(net)
        assert len(pairs) == 1
        assert {pairs[0][0].action, pairs[0][1].action} == {"a", "b"}
