"""Differential testing of the sharded parallel explorer.

Every property runs the same exploration question serially (the eager
oracle) and through :func:`repro.petri.parallel.parallel_explore` at
``workers in {1, 2, 4}`` x ``{dict, compiled}``, and asserts agreement
on state counts, edge counts, deadlock sets and Prop 5.5 verdicts.
The parallel engine's whole value rests on these being byte-identical:
a sharded exploration that drops, double-counts or re-orders even one
state is worse than no parallel engine at all.

Failing examples are persisted fully shrunk under
``tests/petri/parallel_failures/`` (same persistence contract as the
POR harness) for offline replay via
:func:`repro.io.json_io.net_from_dict`.

Worker subprocesses are expensive relative to these tiny nets, so the
in-process paths (``workers=1``, with and without a spill budget) get
the high example counts, while the multiprocess matrix runs fewer,
fatter examples.
"""

from __future__ import annotations

import json
from pathlib import Path

from hypothesis import HealthCheck, given, settings

from repro.io.json_io import net_to_dict
from repro.petri.net import PetriNet
from repro.petri.parallel import parallel_explore
from repro.petri.reachability import ReachabilityGraph
from repro.stg.stg import Stg
from repro.verify.receptiveness import check_receptiveness

from tests.strategies import bounded_multi_token_nets, bounded_nets

BACKENDS = ("dict", "compiled")
WORKER_COUNTS = (1, 2, 4)

#: In-process (workers=1) properties: cheap, so run many examples.
THOROUGH = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

#: Multiprocess matrix: each example spawns 2+4 workers per backend.
HEAVY = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

FAILURE_DIR = Path(__file__).parent / "parallel_failures"

SIGNAL_ACTIONS = ["a+", "a-", "b+", "b-"]


class persists_counterexamples:
    """On assertion failure, write the example nets to FAILURE_DIR
    (hypothesis replays the minimal example last, so the file left
    behind holds the fully shrunk net)."""

    def __init__(self, label: str, **nets: PetriNet):
        self.label = label
        self.nets = nets

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None and issubclass(exc_type, AssertionError):
            FAILURE_DIR.mkdir(exist_ok=True)
            payload = {
                name: net_to_dict(net) for name, net in self.nets.items()
            }
            path = FAILURE_DIR / f"{self.label}.json"
            path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return False


def serial_reference(net: PetriNet):
    graph = ReachabilityGraph(net, max_states=5000)
    return (
        graph.num_states(),
        graph.num_edges(),
        frozenset(graph.deadlocks()),
    )


def assert_cell_matches(net: PetriNet, reference, workers: int, backend: str):
    result = parallel_explore(
        net, workers=workers, max_states=5000, backend=backend
    )
    states, edges, deadlocks = reference
    label = f"workers={workers}/{backend}"
    assert result.states == states, label
    assert result.edges == edges, label
    assert result.deadlock_set() == deadlocks, label


@THOROUGH
@given(net=bounded_multi_token_nets())
def test_single_worker_matches_serial_both_backends(net):
    """workers=1 (the serial degradation) over both backends, plus the
    forced-spill path: identical counts and deadlock sets."""
    with persists_counterexamples("single_worker", net=net):
        reference = serial_reference(net)
        for backend in BACKENDS:
            assert_cell_matches(net, reference, workers=1, backend=backend)
        spilled = parallel_explore(
            net, workers=1, max_states=5000, memory_budget=0
        )
        assert (
            spilled.states,
            spilled.edges,
            spilled.deadlock_set(),
        ) == reference


@HEAVY
@given(net=bounded_multi_token_nets())
def test_worker_matrix_matches_serial(net):
    """The full workers x backends matrix agrees with the oracle."""
    with persists_counterexamples("worker_matrix", net=net):
        reference = serial_reference(net)
        for backend in BACKENDS:
            for workers in WORKER_COUNTS[1:]:
                assert_cell_matches(
                    net, reference, workers=workers, backend=backend
                )


@HEAVY
@given(net=bounded_nets())
def test_sharded_run_is_deterministic(net):
    """Two sharded runs of the same net agree with each other exactly —
    including the canonically-ordered deadlock list, not just the set."""
    with persists_counterexamples("determinism", net=net):
        one = parallel_explore(net, workers=2, max_states=5000)
        two = parallel_explore(net, workers=2, max_states=5000)
        assert one.states == two.states
        assert one.edges == two.edges
        assert one.deadlocks == two.deadlocks


@HEAVY
@given(
    net1=bounded_nets(
        max_places=4, max_transitions=3, actions=SIGNAL_ACTIONS, max_states=400
    ),
    net2=bounded_nets(
        max_places=4, max_transitions=3, actions=SIGNAL_ACTIONS, max_states=400
    ),
)
def test_receptiveness_verdicts_agree_with_serial(net1, net2):
    """Prop 5.5 through the parallel path: same verdict and the same
    failing obligations as the serial eager engine, at every worker
    count."""
    with persists_counterexamples("receptiveness", net1=net1, net2=net2):
        producer = Stg(net1, outputs={"a", "b"})
        consumer = Stg(net2, inputs={"a", "b"})

        def check(workers):
            return check_receptiveness(
                producer,
                consumer,
                method="reachability",
                max_states=20_000,
                engine="eager",
                workers=workers,
            )

        eager = check(workers=None)
        failed = lambda r: {  # noqa: E731
            (f.obligation.action, f.obligation.producer) for f in r.failures
        }
        for workers in (1, 2):
            report = check_receptiveness(
                producer,
                consumer,
                method="reachability",
                max_states=20_000,
                engine="eager",
                workers=workers,
                memory_budget=0 if workers == 1 else None,
            )
            assert report.is_receptive() == eager.is_receptive(), workers
            assert failed(report) == failed(eager), workers
            assert report.states_explored == eager.states_explored, workers
