"""Tests for structural theory: invariants, siphons, traps, boundedness."""

import numpy as np
import pytest

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph
from repro.petri.structural import (
    SemiflowBudgetError,
    fraction_rank,
    incidence_matrix,
    invariant_value,
    is_covered_by_p_invariants,
    is_siphon,
    is_structurally_bounded,
    is_trap,
    minimal_siphons,
    minimal_traps,
    p_invariants,
    p_invariants_partial,
    siphon_trap_property,
    t_invariants,
    t_invariants_partial,
)


def cycle() -> PetriNet:
    net = PetriNet("cycle")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return net


def fork_join() -> PetriNet:
    net = PetriNet("fork_join")
    net.add_transition({"s"}, "fork", {"l", "r"})
    net.add_transition({"l", "r"}, "join", {"s"})
    net.set_initial(Marking({"s": 1}))
    return net


class TestIncidence:
    def test_cycle_matrix(self):
        places, tids, matrix = incidence_matrix(cycle())
        assert places == ["p0", "p1"]
        assert tids == [0, 1]
        assert matrix.tolist() == [[-1, 1], [1, -1]]

    def test_self_loop_contributes_zero(self):
        net = PetriNet()
        net.add_transition({"p", "loop"}, "a", {"q", "loop"})
        places, _, matrix = incidence_matrix(net)
        row = matrix[places.index("loop")]
        assert row.tolist() == [0]

    def test_state_equation_consistency(self):
        """M' = M0 + C.count holds along any firing sequence."""
        net = fork_join()
        places, tids, matrix = incidence_matrix(net)
        graph = ReachabilityGraph(net)
        # fire fork once from initial marking.
        t = net.transitions[0]
        after = net.fire(t, net.initial)
        m0 = np.array([net.initial[p] for p in places])
        count = np.zeros(len(tids), dtype=np.int64)
        count[tids.index(0)] = 1
        predicted = m0 + matrix @ count
        assert predicted.tolist() == [after[p] for p in places]


class TestInvariants:
    def test_cycle_p_invariant(self):
        invariants = p_invariants(cycle())
        assert invariants == [{"p0": 1, "p1": 1}]

    def test_fork_join_minimal_invariants(self):
        """s+l and s+r are each conserved (their sum 2s+l+r is a valid
        but non-minimal invariant and must not be reported)."""
        invariants = p_invariants(fork_join())
        assert {"s": 1, "l": 1} in invariants
        assert {"s": 1, "r": 1} in invariants
        assert {"s": 2, "l": 1, "r": 1} not in invariants

    def test_invariant_value_constant_over_reachable_states(self):
        net = fork_join()
        invariants = p_invariants(net)
        graph = ReachabilityGraph(net)
        for invariant in invariants:
            values = {invariant_value(invariant, m) for m in graph.states}
            assert len(values) == 1

    def test_cycle_t_invariant(self):
        invariants = t_invariants(cycle())
        assert invariants == [{0: 1, 1: 1}]

    def test_acyclic_net_has_no_t_invariant(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        assert t_invariants(net) == []

    def test_coverage_by_p_invariants(self):
        assert is_covered_by_p_invariants(cycle())
        producer = PetriNet()
        producer.add_transition({"p"}, "a", {"p", "q"})
        assert not is_covered_by_p_invariants(producer)


class TestSemiflowBudget:
    """The enumeration budget must never be a *silent* truncation: a
    truncated invariant basis loses completeness (coverage claims,
    symbolic constraint strength) even though each surviving row stays
    a valid semiflow, so the caller has to be told."""

    def test_exceeding_the_budget_raises_by_default(self):
        with pytest.raises(SemiflowBudgetError) as info:
            p_invariants(fork_join(), max_vectors=1)
        assert info.value.vectors > info.value.max_vectors == 1
        assert "max_vectors=1" in str(info.value)
        assert "_partial" in str(info.value)

    def test_partial_api_reports_truncation(self):
        invariants, truncated = p_invariants_partial(
            fork_join(), max_vectors=1
        )
        assert truncated
        # Truncation costs completeness, never validity: every
        # surviving vector is still a genuine P-semiflow.
        places, _, matrix = incidence_matrix(fork_join())
        for invariant in invariants:
            weights = np.array([invariant.get(p, 0) for p in places])
            assert (weights @ matrix == 0).all()

    def test_partial_api_raise_mode(self):
        with pytest.raises(SemiflowBudgetError):
            p_invariants_partial(fork_join(), max_vectors=1, on_budget="raise")

    def test_within_budget_is_not_truncated(self):
        invariants, truncated = p_invariants_partial(fork_join())
        assert not truncated
        assert len(invariants) == 2
        t_inv, t_truncated = t_invariants_partial(cycle())
        assert not t_truncated
        assert t_inv == [{0: 1, 1: 1}]

    def test_t_invariants_budget_raises_too(self):
        net = PetriNet("two_cycles")
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "b", {"p0"})
        net.add_transition({"p0"}, "c", {"p1"})
        with pytest.raises(SemiflowBudgetError):
            t_invariants(net, max_vectors=1)

    def test_invalid_on_budget_value_rejected(self):
        with pytest.raises(ValueError):
            p_invariants_partial(fork_join(), on_budget="ignore")


class TestStructuralBoundedness:
    def test_conservative_net_structurally_bounded(self):
        assert is_structurally_bounded(cycle())
        assert is_structurally_bounded(fork_join())

    def test_producer_not_structurally_bounded(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"p", "q"})
        assert not is_structurally_bounded(net)


class TestRank:
    def test_fraction_rank(self):
        assert fraction_rank(np.array([[1, 2], [2, 4]])) == 1
        assert fraction_rank(np.array([[1, 0], [0, 1]])) == 2


class TestSiphonsTraps:
    def test_cycle_place_set_is_siphon_and_trap(self):
        net = cycle()
        both = frozenset({"p0", "p1"})
        assert is_siphon(net, both)
        assert is_trap(net, both)

    def test_empty_set_is_neither(self):
        assert not is_siphon(cycle(), frozenset())
        assert not is_trap(cycle(), frozenset())

    def test_sink_place_is_trap_not_siphon(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        net.set_initial(Marking({"p": 1}))
        assert is_trap(net, frozenset({"q"}))
        assert not is_siphon(net, frozenset({"q"}))
        assert is_siphon(net, frozenset({"p"}))

    def test_minimal_siphons_of_cycle(self):
        assert minimal_siphons(cycle()) == [frozenset({"p0", "p1"})]

    def test_minimal_traps_of_cycle(self):
        assert minimal_traps(cycle()) == [frozenset({"p0", "p1"})]

    def test_commoner_condition_on_live_free_choice_net(self):
        assert siphon_trap_property(cycle())

    def test_commoner_condition_fails_on_token_free_cycle(self):
        net = cycle()
        net.set_initial(Marking({}))
        assert not siphon_trap_property(net)
