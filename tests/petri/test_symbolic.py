"""Unit tests for the state-equation symbolic engine.

Covers the exact phase-1 simplex, the component-restricted state
equation builder, trap-constraint refinement (on a net where the plain
equation is feasible and only the trap cut decides), the marked-graph
exactness path, boundedness certificates, dead actions, the language
pre-check, and the solver-optional SMT backend (script shape always;
solver verdicts only when one is installed).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.obs import metrics as obs
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.petri.reachability import ReachabilityGraph
from repro.petri.symbolic import (
    LinearSystem,
    StateEquation,
    SymbolicVerdict,
    analyze,
    bounded,
    dead_actions,
    initial_actions,
    language_precheck,
    marking_unreachable,
    predicate_unreachable,
    smt_available,
    smt_bmc_script,
    smt_kinduction_step_script,
    smt_state_equation_script,
    smt_unreachable,
    symbolic_receptiveness,
)


def cycle() -> PetriNet:
    net = PetriNet("cycle")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return net


def trap_net() -> PetriNet:
    """The canonical refinement-requiring net: the plain state equation
    can "empty" the trap {a, b} (x1 = x2 = 1 cancels out), but the
    initially-marked trap constraint M(a)+M(b) >= 1 cuts it off."""
    net = PetriNet("trap")
    net.add_transition({"a"}, "t1", {"b"})
    net.add_transition({"a", "b"}, "t2", {"a"})
    net.set_initial(Marking({"a": 1}))
    return net


def source_net() -> PetriNet:
    net = PetriNet("source")
    net.add_transition({"p"}, "grow", {"p", "q"})
    net.set_initial(Marking({"p": 1}))
    return net


class TestLinearSystem:
    def test_feasible_system_yields_exact_rationals(self):
        system = LinearSystem(("x", "y"))
        system.inequality((2, 1), 4)
        system.equality((1, 3), 3)
        solution = system.solve()
        assert solution is not None
        for value in solution.values():
            assert isinstance(value, Fraction)
        x, y = solution["x"], solution["y"]
        assert 2 * x + y <= 4
        assert x + 3 * y == 3

    def test_infeasible_system(self):
        system = LinearSystem(("x",))
        system.inequality((1,), 1)
        system.inequality((-1,), -2)  # x >= 2 contradicts x <= 1
        assert system.solve() is None

    def test_equality_forces_fractional_solution(self):
        system = LinearSystem(("x",))
        system.equality((3,), 1)
        solution = system.solve()
        assert solution == {"x": Fraction(1, 3)}

    def test_empty_variable_edge_cases(self):
        consistent = LinearSystem(())
        consistent.equality((), 0)
        assert consistent.solve() == {}
        contradictory = LinearSystem(())
        contradictory.equality((), 1)
        assert contradictory.solve() is None

    def test_coefficient_arity_checked(self):
        system = LinearSystem(("x", "y"))
        with pytest.raises(ValueError):
            system.inequality((1,), 0)


class TestStateEquation:
    def test_unknown_focus_place_rejected(self):
        with pytest.raises(ValueError):
            StateEquation(cycle(), {"nope"})

    def test_component_restriction_drops_other_components(self):
        net = PetriNet("two-components")
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"q0"}, "b", {"q1"})
        net.set_initial(Marking({"p0": 1, "q0": 1}))
        equation = StateEquation(net, {"p0"})
        assert set(equation.places) == {"p0", "p1"}
        assert len(equation.tids) == 1

    def test_no_restriction_keeps_everything(self):
        net = PetriNet("two-components")
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"q0"}, "b", {"q1"})
        net.set_initial(Marking({"p0": 1, "q0": 1}))
        equation = StateEquation(net, {"p0"}, restrict=False)
        assert set(equation.places) == {"p0", "p1", "q0", "q1"}

    def test_witness_marking_freezes_other_components(self):
        net = PetriNet("two-components")
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"q0"}, "b", {"q1"})
        net.set_initial(Marking({"p0": 1, "q0": 1}))
        equation = StateEquation(net, {"p0"})
        system = equation.base_system()
        equation.require_marked(system, "p1")
        solution = system.solve()
        witness = equation.witness_marking(solution)
        assert witness["p1"] == 1
        assert witness["q0"] == 1  # untouched component keeps M0


class TestPredicateUnreachable:
    def test_invariant_contradiction_is_conclusive(self):
        """p0 and p1 share one token: both marked at once is impossible,
        and the plain state equation already proves it."""
        verdict = predicate_unreachable(cycle(), marked=("p0", "p1"))
        assert verdict.conclusive and verdict.holds
        assert verdict.stats["refinement_rounds"] == 0

    def test_trap_refinement_is_load_bearing(self):
        """Emptying {a, b} is state-equation feasible; only the
        initially-marked-trap cut makes the verdict conclusive."""
        verdict = predicate_unreachable(trap_net(), empty=("a", "b"))
        assert verdict.conclusive and verdict.holds
        assert verdict.stats["refinement_rounds"] >= 1
        # Ground truth: no reachable marking empties both places.
        for marking in ReachabilityGraph(trap_net()).states:
            assert marking["a"] or marking["b"]

    def test_exact_mode_yields_witness_on_marked_graph(self):
        verdict = predicate_unreachable(cycle(), marked=("p1",))
        assert verdict.conclusive and not verdict.holds
        assert verdict.witness == Marking({"p1": 1})

    def test_feasible_inexact_net_is_inconclusive(self):
        """trap_net is not a marked graph, so a feasible system proves
        nothing: marked=(b,) is actually reachable but the verdict must
        stay inconclusive rather than guess."""
        verdict = predicate_unreachable(trap_net(), marked=("b",))
        assert not verdict.conclusive
        assert verdict.holds is None

    def test_conclusive_verdicts_enforce_holds(self):
        with pytest.raises(ValueError):
            SymbolicVerdict(True, None, "broken")
        with pytest.raises(ValueError):
            SymbolicVerdict(False, True, "broken")


class TestMarkingUnreachable:
    def test_two_tokens_in_one_token_cycle(self):
        verdict = marking_unreachable(cycle(), Marking({"p0": 1, "p1": 1}))
        assert verdict.conclusive and verdict.holds

    def test_reachable_marking_on_marked_graph_is_conclusively_false(self):
        verdict = marking_unreachable(cycle(), Marking({"p1": 1}))
        assert verdict.conclusive and not verdict.holds
        assert verdict.witness == Marking({"p1": 1})

    def test_unknown_target_place_rejected(self):
        with pytest.raises(ValueError):
            marking_unreachable(cycle(), Marking({"ghost": 1}))


class TestBounded:
    def test_invariant_covered_net(self):
        verdict = bounded(cycle())
        assert verdict.conclusive and verdict.holds
        assert "P-invariant" in verdict.reason

    def test_structural_certificate_without_full_coverage(self):
        """A strictly-consumed place lies in no P-semiflow, but a
        positive weighting that never increases still certifies
        boundedness."""
        net = PetriNet("drain")
        net.add_transition({"p", "q"}, "a", {"q"})
        net.set_initial(Marking({"p": 1, "q": 1}))
        verdict = bounded(net)
        assert verdict.conclusive and verdict.holds
        assert "structurally bounded" in verdict.reason

    def test_unbounded_source_is_inconclusive_never_wrong(self):
        verdict = bounded(source_net())
        assert not verdict.conclusive

    def test_empty_net(self):
        verdict = bounded(PetriNet("empty"))
        assert verdict.conclusive and verdict.holds


class TestDeadActions:
    def test_dead_transition_found(self):
        """d consumes from a place that can never be marked: its preset
        enabling condition is state-equation infeasible."""
        net = PetriNet("with-dead")
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "b", {"p0"})
        net.add_transition({"p0", "p1"}, "d", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        dead, stats = dead_actions(net)
        assert dead == frozenset({"d"})
        assert stats["systems"] >= 1
        # Ground truth: no reachable marking enables d.
        for marking in ReachabilityGraph(net).states:
            assert not (marking["p0"] and marking["p1"])

    def test_alphabet_only_action_is_dead(self):
        net = cycle()
        net.actions.add("phantom")
        dead, _ = dead_actions(net)
        assert "phantom" in dead

    def test_live_actions_not_reported(self):
        dead, _ = dead_actions(cycle())
        assert "a" not in dead and "b" not in dead

    def test_initial_actions_exact(self):
        assert initial_actions(cycle()) == frozenset({"a"})


class TestLanguagePrecheck:
    def test_separating_one_letter_word(self):
        left = cycle()  # 'a' fires immediately
        right = PetriNet("silent")
        right.add_transition({"q"}, "c", {"q"})
        right.set_initial(Marking({}))  # c can never fire
        verdict = language_precheck(left, right, mode="equal")
        assert verdict.conclusive and not verdict.holds
        assert verdict.witness == ("a",)

    def test_both_languages_epsilon(self):
        left = PetriNet("idle1")
        left.add_transition({"p"}, "a", {"p"})
        left.set_initial(Marking({}))
        right = PetriNet("idle2")
        right.add_transition({"q"}, "b", {"q"})
        right.set_initial(Marking({}))
        verdict = language_precheck(left, right, mode="equal")
        assert verdict.conclusive and verdict.holds

    def test_containment_of_empty_left(self):
        left = PetriNet("idle")
        left.add_transition({"p"}, "a", {"p"})
        left.set_initial(Marking({}))
        verdict = language_precheck(left, cycle(), mode="contained")
        assert verdict.conclusive and verdict.holds

    def test_equal_nets_are_inconclusive(self):
        verdict = language_precheck(cycle(), cycle(), mode="equal")
        assert not verdict.conclusive

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            language_precheck(cycle(), cycle(), mode="superset")


class TestSymbolicReceptiveness:
    def test_handshake_bank_is_conclusively_safe(self):
        from repro.models.library import four_phase_master, four_phase_slave
        from repro.verify.receptiveness import compose_with_obligations

        composite, obligations = compose_with_obligations(
            four_phase_master(), four_phase_slave()
        )
        outcome = symbolic_receptiveness(composite.net, obligations)
        assert outcome.conclusive
        assert len(outcome.safe) == len(obligations)
        assert not outcome.failed and not outcome.undecided
        assert outcome.stats["systems"] >= 1

    def test_counters_emitted(self):
        from repro.models.library import four_phase_master, four_phase_slave
        from repro.verify.receptiveness import compose_with_obligations

        composite, obligations = compose_with_obligations(
            four_phase_master(), four_phase_slave()
        )
        with obs.record() as recorder:
            symbolic_receptiveness(composite.net, obligations)
        payload = recorder.to_dict()
        counters = payload["counters"]
        assert counters["engine.symbolic.systems"] >= 1
        assert counters["engine.symbolic.conclusive"] == len(obligations)
        assert counters.get("engine.symbolic.inconclusive", 0) == 0


class TestAnalyze:
    def test_bounded_net_payload(self):
        with obs.record() as recorder:
            result = analyze(cycle())
        assert result["bounded"].conclusive
        assert result["dead_actions"] == frozenset()
        payload = recorder.to_dict()
        spans = [s for s in payload["spans"] if s["name"] == "engine.symbolic.analyze"]
        assert spans and spans[0]["meta"]["bounded_conclusive"] is True

    def test_unbounded_source_inconclusive(self):
        result = analyze(source_net())
        assert not result["bounded"].conclusive


class TestSmtScripts:
    def test_state_equation_script_shape(self):
        script = smt_state_equation_script(cycle(), marked=("p1",))
        assert script.startswith("(set-logic QF_LIA)")
        assert script.rstrip().endswith("(check-sat)")
        assert "(declare-const x0 Int)" in script
        assert "(declare-const x1 Int)" in script
        # The invariant p0 + p1 = 1 must appear as an equality.
        assert "(assert (= " in script

    def test_bmc_script_anchors_initial_marking(self):
        script = smt_bmc_script(cycle(), marked=("p1",), depth=2)
        assert "(assert (= m0_0 1))" in script  # p0 starts at 1
        assert "(assert (= m0_1 0))" in script
        assert "m2_" in script and "m3_" not in script

    def test_kinduction_script_anchors_state_equation(self):
        script = smt_kinduction_step_script(cycle(), marked=("p1",), k=1)
        assert "(declare-const y0 Int)" in script
        assert "s1_" in script

    def test_no_solver_is_clean_inconclusive(self):
        if smt_available():  # pragma: no cover - solver-present machines
            pytest.skip("an SMT solver is installed")
        verdict = smt_unreachable(cycle(), marked=("p0", "p1"))
        assert not verdict.conclusive
        assert "no SMT solver" in verdict.reason

    def test_solver_agrees_with_rational_engine(self):
        if not smt_available():
            pytest.skip("no SMT solver on PATH")
        verdict = smt_unreachable(cycle(), marked=("p0", "p1"))
        assert verdict.conclusive and verdict.holds  # pragma: no cover
        reachable = smt_unreachable(cycle(), marked=("p1",))
        assert reachable.conclusive  # pragma: no cover
        assert not reachable.holds  # pragma: no cover
