"""Tests for net-class detection and the polynomial marked-graph checks."""

import pytest

from repro.petri.classify import (
    classify,
    is_asymmetric_choice,
    is_extended_free_choice,
    is_free_choice,
    is_marked_graph,
    is_state_machine,
    marked_graph_cycles,
    marked_graph_is_live,
    marked_graph_is_live_safe,
)
from repro.petri.analysis import is_live, is_live_safe
from repro.petri.marking import Marking
from repro.petri.net import PetriNet


def marked_graph_cycle(tokens: int = 1) -> PetriNet:
    net = PetriNet("mg")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.set_initial(Marking({"p0": tokens}))
    return net


def state_machine_choice() -> PetriNet:
    net = PetriNet("sm")
    net.add_transition({"s"}, "a", {"x"})
    net.add_transition({"s"}, "b", {"y"})
    net.add_transition({"x"}, "c", {"s"})
    net.add_transition({"y"}, "d", {"s"})
    net.set_initial(Marking({"s": 1}))
    return net


def non_free_choice() -> PetriNet:
    """Classic arbiter-style confusion: shared place with unequal presets."""
    net = PetriNet("arbiter")
    net.add_transition({"mutex", "r1"}, "g1", {"c1"})
    net.add_transition({"mutex", "r2"}, "g2", {"c2"})
    net.add_transition({"c1"}, "d1", {"mutex", "r1"})
    net.add_transition({"c2"}, "d2", {"mutex", "r2"})
    net.set_initial(Marking({"mutex": 1, "r1": 1, "r2": 1}))
    return net


class TestClasses:
    def test_marked_graph_flags(self):
        flags = classify(marked_graph_cycle())
        assert flags.marked_graph
        assert flags.state_machine  # single pre/post everywhere too
        assert flags.free_choice

    def test_state_machine_with_choice_not_marked_graph(self):
        net = state_machine_choice()
        assert is_state_machine(net)
        assert not is_marked_graph(net)
        assert is_free_choice(net)

    def test_fork_join_is_marked_graph_not_state_machine(self):
        net = PetriNet()
        net.add_transition({"s"}, "fork", {"l", "r"})
        net.add_transition({"l", "r"}, "join", {"s"})
        net.set_initial(Marking({"s": 1}))
        assert is_marked_graph(net)
        assert not is_state_machine(net)

    def test_non_free_choice_detected(self):
        net = non_free_choice()
        assert not is_free_choice(net)
        assert not is_extended_free_choice(net)
        assert not is_asymmetric_choice(net)
        assert classify(net).most_specific() == "general"

    def test_extended_free_choice(self):
        net = PetriNet()
        net.add_transition({"s1", "s2"}, "a", {"x"})
        net.add_transition({"s1", "s2"}, "b", {"y"})
        net.set_initial(Marking({"s1": 1, "s2": 1}))
        assert not is_free_choice(net)
        assert is_extended_free_choice(net)

    def test_asymmetric_choice(self):
        net = PetriNet()
        net.add_transition({"s1"}, "a", {"x"})
        net.add_transition({"s1", "s2"}, "b", {"y"})
        assert not is_extended_free_choice(net)
        assert is_asymmetric_choice(net)

    def test_most_specific_names(self):
        assert classify(marked_graph_cycle()).most_specific() == (
            "state machine + marked graph"
        )
        assert classify(state_machine_choice()).most_specific() == "state machine"


class TestMarkedGraphChecks:
    def test_cycles_of_simple_loop(self):
        cycles = marked_graph_cycles(marked_graph_cycle())
        assert len(cycles) == 1
        assert set(cycles[0]) == {"p0", "p1"}

    def test_cycle_analysis_rejects_non_mg(self):
        with pytest.raises(ValueError):
            marked_graph_cycles(state_machine_choice())

    def test_live_iff_token_on_cycle(self):
        assert marked_graph_is_live(marked_graph_cycle())
        empty = marked_graph_cycle(tokens=0)
        empty.set_initial(Marking({}))
        assert not marked_graph_is_live(empty)

    def test_polynomial_live_matches_reachability(self):
        net = marked_graph_cycle()
        assert marked_graph_is_live(net) == is_live(net)

    def test_live_safe_single_token(self):
        assert marked_graph_is_live_safe(marked_graph_cycle(tokens=1))

    def test_two_tokens_not_safe(self):
        assert not marked_graph_is_live_safe(marked_graph_cycle(tokens=2))

    def test_polynomial_live_safe_matches_reachability(self):
        """Cross-validate the structural check on a fork/join pipeline."""
        net = PetriNet()
        net.add_transition({"s"}, "fork", {"l", "r"})
        net.add_transition({"l"}, "x", {"l2"})
        net.add_transition({"r"}, "y", {"r2"})
        net.add_transition({"l2", "r2"}, "join", {"s"})
        net.set_initial(Marking({"s": 1}))
        assert marked_graph_is_live_safe(net) == is_live_safe(net)

    def test_unmarked_subcycle_kills_liveness(self):
        net = PetriNet()
        # Outer marked cycle plus an inner unmarked cycle sharing nothing.
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "b", {"p0"})
        net.add_transition({"q0"}, "c", {"q1"})
        net.add_transition({"q1"}, "d", {"q0"})
        net.set_initial(Marking({"p0": 1}))
        assert not marked_graph_is_live(net)
