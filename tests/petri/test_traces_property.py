"""Property-based tests of the trace-language operators (Defs 4.8/4.9
and the projection/hide/rename laws the paper's proofs rely on)."""

from hypothesis import given, settings, strategies as st

from repro.petri.traces import (
    hide_language,
    is_prefix_closed,
    parallel_compose_traces,
    prefix_closure,
    project_language,
    project_trace,
    rename_language,
    synchronizable,
)

ALPHABET = ["a", "b", "c", "d"]

traces = st.lists(st.sampled_from(ALPHABET), max_size=6).map(tuple)
alphabets = st.sets(st.sampled_from(ALPHABET), max_size=4).map(frozenset)
languages = st.sets(traces, max_size=8).map(frozenset)

RELAXED = settings(max_examples=200, deadline=None)


@RELAXED
@given(trace=traces, first=alphabets, second=alphabets)
def test_projection_composes_as_intersection(trace, first, second):
    """project(project(t, A), B) = project(t, A & B)."""
    assert project_trace(project_trace(trace, first), second) == project_trace(
        trace, first & second
    )


@RELAXED
@given(trace=traces, alphabet=alphabets)
def test_projection_idempotent(trace, alphabet):
    once = project_trace(trace, alphabet)
    assert project_trace(once, alphabet) == once


@RELAXED
@given(language=languages, alphabet=alphabets)
def test_hide_is_complement_projection(language, alphabet):
    """hide(L, H) = project(L, A \\ H) over the full alphabet."""
    hidden = hide_language(language, alphabet, alphabet=ALPHABET)
    assert hidden == project_language(language, set(ALPHABET) - alphabet)


@RELAXED
@given(language=languages)
def test_prefix_closure_is_closed_and_minimal(language):
    closed = prefix_closure(language)
    assert is_prefix_closed(closed)
    assert language <= closed
    # Minimality: every trace in the closure is a prefix of an original.
    for trace in closed:
        assert any(
            original[: len(trace)] == trace for original in language
        ) or trace == ()


@RELAXED
@given(language=languages, mapping_target=st.sampled_from(ALPHABET))
def test_rename_preserves_lengths(language, mapping_target):
    renamed = rename_language(language, {"a": mapping_target})
    assert {len(t) for t in renamed} <= {len(t) for t in language}


@RELAXED
@given(t1=traces, t2=traces)
def test_shuffle_projections_recover_operands(t1, t2):
    """Definition 4.8 directly: every composed trace projects back to
    the operands."""
    a1 = frozenset({"a", "b"})
    a2 = frozenset({"b", "c"})
    t1 = project_trace(t1, a1)
    t2 = project_trace(t2, a2)
    for shuffle in parallel_compose_traces(t1, t2, a1, a2):
        assert project_trace(shuffle, a1) == t1
        assert project_trace(shuffle, a2) == t2


@RELAXED
@given(t1=traces, t2=traces)
def test_shuffle_symmetry(t1, t2):
    a1 = frozenset({"a", "b"})
    a2 = frozenset({"b", "c"})
    t1 = project_trace(t1, a1)
    t2 = project_trace(t2, a2)
    assert parallel_compose_traces(t1, t2, a1, a2) == parallel_compose_traces(
        t2, t1, a2, a1
    )


@RELAXED
@given(t1=traces)
def test_trace_synchronizes_with_itself(t1):
    alphabet = frozenset(ALPHABET)
    assert synchronizable(t1, t1, alphabet, alphabet)
    assert parallel_compose_traces(t1, t1, alphabet, alphabet) == frozenset(
        {t1}
    )


@RELAXED
@given(t1=traces, t2=traces)
def test_disjoint_alphabet_shuffle_count(t1, t2):
    """With disjoint alphabets the composition has C(n+m, n) shuffles
    when both traces have distinct interleavings; at minimum it is
    non-empty and each shuffle has length n+m."""
    a1 = frozenset({"a", "b"})
    a2 = frozenset({"c", "d"})
    t1 = project_trace(t1, a1)
    t2 = project_trace(t2, a2)
    shuffles = parallel_compose_traces(t1, t2, a1, a2)
    assert shuffles
    assert all(len(s) == len(t1) + len(t2) for s in shuffles)
    import math

    expected = math.comb(len(t1) + len(t2), len(t1))
    assert len(shuffles) == expected
