"""Differential testing of the exploration engines.

Every property here runs the same verification question through
``eager`` (the oracle), ``onthefly`` (the lazy engine PR 1 validated
against the oracle), ``por`` (the stubborn-set reduced engine) and —
where the question supports it — ``symbolic`` (the state-equation
semi-decision engine, whose inconclusive cases fall back to the
explicit search and must therefore reach the same verdicts), and
asserts engine-matrix agreement — on verdicts, on the visible-action
language of the reduced space, and on deadlock sets — over the
non-safe-net strategies in :mod:`tests.strategies`.

When a property fails, the shrunk counterexample net(s) are persisted
as JSON under ``tests/petri/por_failures/`` (hypothesis replays the
minimal example last, so the file left behind is the fully shrunk
net) for offline replay via :func:`repro.io.json_io.net_from_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro.io.json_io import net_to_dict
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.petri.product import LazyStateSpace, compare_languages
from repro.petri.reachability import ReachabilityGraph
from repro.petri.simulation import TokenGame
from repro.stg.stg import Stg
from repro.verify.language import language_contained, languages_equal
from repro.verify.receptiveness import check_receptiveness

from tests.strategies import bounded_multi_token_nets, bounded_nets

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

# The acceptance bar for engine agreement: >= 200 random nets.
THOROUGH = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

#: "u" acts as the hidden/internal label in these properties, so random
#: nets exercise the reduction (with everything visible the stubborn
#: selector can never propose anything).
SILENT = frozenset({EPSILON, "u"})

FAILURE_DIR = Path(__file__).parent / "por_failures"

SIGNAL_ACTIONS = ["a+", "a-", "b+", "b-"]


class persists_counterexamples:
    """On assertion failure, write the example nets to FAILURE_DIR.

    Hypothesis shrinks by re-running the test body on ever-smaller
    examples and replays the minimal one last, so after a failing run
    the persisted file holds the fully shrunk counterexample.
    """

    def __init__(self, label: str, **nets: PetriNet):
        self.label = label
        self.nets = nets

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None and issubclass(exc_type, AssertionError):
            FAILURE_DIR.mkdir(exist_ok=True)
            payload = {
                name: net_to_dict(net) for name, net in self.nets.items()
            }
            path = FAILURE_DIR / f"{self.label}.json"
            path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return False


def reduced_space_as_lts(space: LazyStateSpace) -> PetriNet:
    """The fully-explored (reduced) space as a one-token state-machine
    net, so its language can be compared by the eager DFA oracle."""
    lts = PetriNet("reduced-lts")
    names: dict[Marking, str] = {}
    for marking in space.iter_bfs():
        names.setdefault(marking, f"s{len(names)}")
    for marking in list(names):
        for action, _, target in space.successors(marking):
            lts.add_transition(
                {names[marking]}, action, {names[target]}
            )
    lts.set_initial(Marking({names[space.initial]: 1}))
    for name in names.values():
        lts.add_place(name)
    return lts


@THOROUGH
@given(net1=bounded_nets(), net2=bounded_nets())
def test_language_verdicts_agree_across_engines(net1, net2):
    """Equality and containment verdicts across the four-way matrix:
    eager == onthefly == por == symbolic (the symbolic pre-check either
    concludes exactly or falls back to the explicit comparison)."""
    with persists_counterexamples("language_verdicts", net1=net1, net2=net2):
        for mode in ("equal", "contained"):
            verdicts = {
                engine: languages_equal(
                    net1, net2, silent=SILENT, engine=engine
                )
                if mode == "equal"
                else compare_languages(
                    net1,
                    net2,
                    mode=mode,
                    silent=SILENT,
                    reduction=engine == "por",
                ).verdict
                for engine in ("eager", "onthefly", "por")
            }
            verdicts["symbolic"] = (
                languages_equal(net1, net2, silent=SILENT, engine="symbolic")
                if mode == "equal"
                else language_contained(
                    net1, net2, silent=SILENT, engine="symbolic"
                )
            )
            for engine in ("onthefly", "por", "symbolic"):
                assert verdicts[engine] == verdicts["eager"], (mode, verdicts)


@THOROUGH
@given(
    net1=bounded_nets(
        max_places=4, max_transitions=3, actions=SIGNAL_ACTIONS, max_states=400
    ),
    net2=bounded_nets(
        max_places=4, max_transitions=3, actions=SIGNAL_ACTIONS, max_states=400
    ),
)
def test_receptiveness_verdicts_agree_across_engines(net1, net2):
    """Same Prop 5.5 verdict and failing obligations across the
    four-way matrix (symbolic decides what it can and falls back to
    the explicit search for the rest), and every por witness trace
    replays on the unreduced composite."""
    with persists_counterexamples("receptiveness", net1=net1, net2=net2):
        producer = Stg(net1, outputs={"a", "b"})
        consumer = Stg(net2, inputs={"a", "b"})
        reports = {
            engine: check_receptiveness(
                producer,
                consumer,
                method="reachability",
                max_states=20_000,
                engine=engine,
            )
            for engine in ("eager", "onthefly", "por", "symbolic")
        }
        eager = reports["eager"]
        for engine in ("onthefly", "por", "symbolic"):
            report = reports[engine]
            assert report.is_receptive() == eager.is_receptive(), engine
            failed = lambda r: {  # noqa: E731
                (f.obligation.action, f.obligation.producer)
                for f in r.failures
            }
            assert failed(report) == failed(eager), engine
        # por edges are real firings: witnesses replay on the full net.
        por = reports["por"]
        for failure in por.failures:
            assert failure.trace is not None and failure.tids is not None
            game = TokenGame(por.composite.net)
            for tid in failure.tids:
                game.fire_tid(tid)
            assert game.marking == failure.marking


@RELAXED
@given(net=bounded_multi_token_nets())
def test_deadlock_sets_preserved(net):
    """With nothing visible the reduced space still reaches *exactly*
    the deadlock markings of the full space."""
    with persists_counterexamples("deadlocks", net=net):
        eager = set(ReachabilityGraph(net).deadlocks())
        space = LazyStateSpace(net, reduction=True, visible_actions=())
        reduced = {
            marking
            for marking in space.iter_bfs()
            if not space.successors(marking)
        }
        assert reduced == eager
        assert space.num_explored() <= ReachabilityGraph(net).num_states()


@RELAXED
@given(net=bounded_multi_token_nets())
def test_visible_language_preserved_by_reduction(net):
    """The reduced space, replayed as an LTS, has the same visible
    language as the full net (Thm 4.5/4.7 checks stay exact)."""
    with persists_counterexamples("visible_language", net=net):
        space = LazyStateSpace(
            net,
            reduction=True,
            visible_actions=frozenset(net.actions) - SILENT,
        )
        space.explore_all()
        lts = reduced_space_as_lts(space)
        assert languages_equal(lts, net, silent=SILENT, engine="eager")


@RELAXED
@given(net=bounded_nets())
def test_reduction_never_explores_more(net):
    """The reduced space is a subgraph of the full space: state and
    edge counts can only shrink, and every reduced state is reachable
    in the full graph."""
    with persists_counterexamples("state_counts", net=net):
        full = LazyStateSpace(net)
        full.explore_all()
        reduced = LazyStateSpace(net, reduction=True, visible_actions=())
        reduced.explore_all()
        assert reduced.stats.states <= full.stats.states
        assert reduced.stats.edges <= full.stats.edges
        full_states = set(full.iter_bfs())
        assert set(reduced.iter_bfs()) <= full_states


@RELAXED
@given(net=bounded_multi_token_nets())
def test_reduction_is_deterministic(net):
    """Two runs over the same net produce identical reduced spaces —
    same states in the same BFS order, same stats."""
    one = LazyStateSpace(net, reduction=True, visible_actions=())
    two = LazyStateSpace(net, reduction=True, visible_actions=())
    assert list(one.iter_bfs()) == list(two.iter_bfs())
    assert one.stats == two.stats


# -- corpus families: the nets the fresh proviso was blind on ---------------
#
# PR 5's parsed fixtures include the two families where the original
# always-expand-on-cycle proviso achieved zero reduction: channel banks
# (pure handshake cycles) and pipeline grids.  The hypothesis
# properties above rarely generate such regular cyclic structure, so
# the three-way parity checks are repeated here on the concrete
# fixtures, under both ignoring-prevention provisos.

CORPUS = Path(__file__).parent.parent / "corpus"

CORPUS_FAMILIES = [
    "channel_bank_1.net",
    "channel_bank_2.net",
    "pipeline_2.net",
    "pipeline_3.net",
]

PROVISOS = ["fresh", "stack"]


def corpus_net(name: str) -> PetriNet:
    from repro.io.formats import load_stg

    return load_stg(str(CORPUS / name)).net


def corpus_silent(net: PetriNet) -> frozenset[str]:
    """A deterministic half/half visibility split: every other action
    (in sorted order) is hidden, so the selector has something to
    reduce while the language stays non-trivial."""
    return frozenset(sorted(a for a in net.actions if a != EPSILON)[::2]) | {
        EPSILON
    }


@pytest.mark.parametrize("proviso", PROVISOS)
@pytest.mark.parametrize("name", CORPUS_FAMILIES)
def test_corpus_family_deadlock_sets_agree(name, proviso):
    """Deadlock-set parity on the corpus families: the reduced space
    reaches exactly the deadlock markings of the eager oracle."""
    net = corpus_net(name)
    eager = set(ReachabilityGraph(net).deadlocks())
    space = LazyStateSpace(
        net, reduction=True, visible_actions=(), proviso=proviso
    )
    reduced = {
        marking
        for marking in space.iter_bfs()
        if not space.successors(marking)
    }
    assert reduced == eager
    assert space.num_explored() <= ReachabilityGraph(net).num_states()


@pytest.mark.parametrize("proviso", PROVISOS)
@pytest.mark.parametrize("name", CORPUS_FAMILIES)
def test_corpus_family_visible_language_preserved(name, proviso):
    """Visible-language parity on the corpus families, via the LTS
    replay against the eager DFA oracle."""
    net = corpus_net(name)
    silent = corpus_silent(net)
    space = LazyStateSpace(
        net,
        reduction=True,
        visible_actions=frozenset(net.actions) - silent,
        proviso=proviso,
    )
    space.explore_all()
    lts = reduced_space_as_lts(space)
    assert languages_equal(lts, net, silent=silent, engine="eager")


@pytest.mark.parametrize(
    "name1, name2",
    [
        ("channel_bank_1.net", "channel_bank_1.net"),
        ("channel_bank_1.net", "channel_bank_2.net"),
        ("pipeline_2.net", "pipeline_3.net"),
        ("channel_bank_2.net", "pipeline_2.net"),
    ],
)
def test_corpus_family_language_verdicts_agree(name1, name2):
    """Four-way verdict parity on corpus family pairs: whatever the
    eager oracle answers, the lazy, reduced and symbolic engines must
    echo."""
    net1, net2 = corpus_net(name1), corpus_net(name2)
    silent = corpus_silent(net1) | corpus_silent(net2)
    verdicts = {
        engine: languages_equal(net1, net2, silent=silent, engine=engine)
        for engine in ("eager", "onthefly", "por", "symbolic")
    }
    for engine in ("onthefly", "por", "symbolic"):
        assert verdicts[engine] == verdicts["eager"], verdicts
    assert verdicts["eager"] is (name1 == name2)


def test_corpus_channel_bank_strictly_reduces_under_stack_proviso():
    """The fix, witnessed on the corpus fixture itself: bank(2) shrinks
    from the 16-state torus to 7 states under the stack proviso, while
    the fresh proviso still recovers the full space."""
    net = corpus_net("channel_bank_2.net")
    by_proviso = {}
    for proviso in PROVISOS:
        space = LazyStateSpace(
            net, reduction=True, visible_actions=(), proviso=proviso
        )
        space.explore_all()
        by_proviso[proviso] = space.stats.states
    assert by_proviso["fresh"] == 16  # the historic blind spot
    assert by_proviso["stack"] == 7  # 3 * 2**(n-1) + 1 for n = 2
