"""Unit tests for the sharded parallel explorer.

The differential suite (:mod:`tests.petri.test_parallel_differential`)
proves parity on random nets; these tests pin the contract piece by
piece on known nets — budget aborts, deadlock decoding, obligation
witnesses, worker validation, graph reconstruction, metrics.
"""

from __future__ import annotations

import pytest

from repro.core.circuit import compose_many
from repro.models.library import four_phase_master, four_phase_slave
from repro.obs import metrics as obs
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.parallel import (
    MAX_WORKERS,
    parallel_explore,
    parallel_reachability_graph,
    parse_memory_budget,
    resolve_workers,
)
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError

WORKER_COUNTS = (1, 2, 4)


def channel_bank(channels: int):
    modules = []
    for index in range(channels):
        modules.append(
            four_phase_master(req=f"r{index}", ack=f"a{index}", name=f"m{index}")
        )
        modules.append(
            four_phase_slave(req=f"r{index}", ack=f"a{index}", name=f"s{index}")
        )
    return compose_many(modules)


def deadlocking_net() -> PetriNet:
    """Two tokens racing into a sink: several distinct deadlocks."""
    net = PetriNet("race")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p0"}, "b", {"p2"})
    net.add_transition({"p1"}, "c", {"p3"})
    net.set_initial(Marking.from_places(["p0", "p0"]))
    return net


# -- knob validation ---------------------------------------------------------


def test_resolve_workers_accepts_range():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(MAX_WORKERS) == MAX_WORKERS


@pytest.mark.parametrize("bad", [0, -1, MAX_WORKERS + 1, 1.5, "2", True])
def test_resolve_workers_rejects_invalid(bad):
    with pytest.raises(ValueError):
        resolve_workers(bad)


def test_parse_memory_budget():
    assert parse_memory_budget("0") == 0
    assert parse_memory_budget("4096") == 4096
    assert parse_memory_budget("64K") == 64 * 1024
    assert parse_memory_budget("64m") == 64 * 1024**2
    assert parse_memory_budget(" 2G ") == 2 * 1024**3


@pytest.mark.parametrize("bad", ["", "x", "12Q", "-5", "1.5M", "M"])
def test_parse_memory_budget_rejects_invalid(bad):
    with pytest.raises(ValueError):
        parse_memory_budget(bad)


# -- exploration contract ----------------------------------------------------


@pytest.mark.parametrize("backend", ["dict", "compiled"])
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_counts_and_deadlocks_match_serial(backend, workers):
    net = deadlocking_net()
    serial = ReachabilityGraph(net)
    result = parallel_explore(net, workers=workers, backend=backend)
    assert result.states == serial.num_states()
    assert result.edges == serial.num_edges()
    assert result.deadlock_set() == frozenset(serial.deadlocks())


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_more_workers_than_states(workers):
    net = PetriNet("tiny")
    net.add_transition({"p0"}, "a", {"p1"})
    net.set_initial(Marking.from_places(["p0"]))
    result = parallel_explore(net, workers=workers)
    assert result.states == 2
    assert result.edges == 1
    assert result.deadlocks == [Marking.from_places(["p1"])]


def test_transitionless_net_is_its_own_deadlock():
    net = PetriNet("static")
    net.add_place("p0")
    net.set_initial(Marking.from_places(["p0"]))
    for workers in WORKER_COUNTS:
        result = parallel_explore(net, workers=workers)
        assert result.states == 1
        assert result.edges == 0
        assert result.deadlocks == [net.initial]


@pytest.mark.parametrize("workers", [1, 2])
def test_max_states_budget_raises_with_bound(workers):
    net = channel_bank(3).net  # 64 states
    with pytest.raises(UnboundedNetError) as excinfo:
        parallel_explore(net, workers=workers, max_states=10)
    assert excinfo.value.bound == 10
    # Exactly at the budget: completes (same contract as the serial
    # engines, which only raise past max_states).
    assert parallel_explore(net, workers=workers, max_states=64).states == 64


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_obligation_witnesses_are_canonical(workers):
    """The Prop 5.5 predicate evaluated shard-side: same failing
    obligations as a serial scan, and the witness is the *minimum* key
    match — identical across worker counts and repeated runs."""
    net = deadlocking_net()
    graph = ReachabilityGraph(net)
    # Obligation: "p3 marked" producer with an unsatisfiable consumer.
    obligations = [
        (frozenset({"p3"}), (frozenset({"p0", "p1", "p2", "p3"}),)),
        (frozenset({"p0"}), (frozenset({"p0"}),)),  # never fails
    ]
    expected = {
        marking
        for marking in graph.states
        if marking["p3"] > 0
        and not (marking["p0"] and marking["p1"] and marking["p2"])
    }
    runs = [
        parallel_explore(net, workers=workers, obligations=obligations)
        for _ in range(2)
    ]
    for result in runs:
        assert set(result.failing) == {0}
        assert result.failing[0] in expected
    assert runs[0].failing == runs[1].failing


def test_witnesses_agree_across_worker_counts():
    net = channel_bank(2).net
    place = sorted(net.places)[0]
    obligations = [(frozenset({place}), (frozenset(net.places),))]
    witnesses = {
        workers: parallel_explore(
            net, workers=workers, obligations=obligations
        ).failing
        for workers in WORKER_COUNTS
    }
    assert witnesses[1] == witnesses[2] == witnesses[4]


# -- the 1-safe bitmask fast path --------------------------------------------


def _explore_kernel(recorder) -> str:
    span = next(
        s
        for s in recorder.to_dict()["spans"]
        if s["name"] == "engine.parallel.explore"
    )
    return span["meta"]["kernel"]


def overflow_net() -> PetriNet:
    """Statically eligible (byte codec, <=1-token initial) but not
    1-safe: two producers race tokens into ``c``."""
    net = PetriNet("unsafe")
    net.add_transition({"a"}, "t1", {"c"})
    net.add_transition({"b"}, "t2", {"c"})
    net.set_initial(Marking.from_places(["a", "b"]))
    return net


def test_one_safe_net_selects_bitmask_kernel():
    net = channel_bank(2).net
    with obs.record() as recorder:
        parallel_explore(net, workers=1, backend="compiled")
    assert _explore_kernel(recorder) == "bitmask"


def test_multi_token_initial_marking_selects_general_kernel():
    with obs.record() as recorder:
        parallel_explore(deadlocking_net(), workers=1, backend="compiled")
    assert _explore_kernel(recorder) == "compiled"


def test_dict_backend_never_uses_bitmask():
    net = channel_bank(2).net
    with obs.record() as recorder:
        parallel_explore(net, workers=1, backend="dict")
    assert _explore_kernel(recorder) == "dict"


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bitmask_overflow_falls_back_to_general_kernel(workers):
    """A firing that would put a second token anywhere aborts the
    bitmask attempt and restarts on the packed kernel — transparently:
    same counts and deadlocks as serial, at every worker count."""
    net = overflow_net()
    serial = ReachabilityGraph(net)
    with obs.record() as recorder:
        result = parallel_explore(net, workers=workers, backend="compiled")
    assert _explore_kernel(recorder) == "compiled"
    assert result.states == serial.num_states()
    assert result.edges == serial.num_edges()
    assert result.deadlock_set() == frozenset(serial.deadlocks())
    # The non-1-safe marking itself survives the fallback intact.
    assert Marking.from_places(["c", "c"]) in result.deadlock_set()


def test_bitmask_graph_keeps_exact_successor_order():
    """Exact (not just multiset) successor-list parity on a 1-safe net
    that takes the bitmask path end to end."""
    net = channel_bank(2).net
    serial = ReachabilityGraph(net)
    graph = parallel_reachability_graph(net, workers=2)
    for marking in serial.states:
        assert graph.successors(marking) == serial.successors(marking)


# -- graph reconstruction ----------------------------------------------------


@pytest.mark.parametrize("backend", ["dict", "compiled"])
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_reachability_graph_reconstruction(backend, workers):
    """The gathered graph is indistinguishable from a serial build:
    same states, same per-state successor multisets, same queries."""
    net = channel_bank(2).net
    serial = ReachabilityGraph(net)
    graph = parallel_reachability_graph(net, workers=workers, backend=backend)
    assert graph.states == serial.states
    assert graph.num_states() == serial.num_states()
    assert graph.num_edges() == serial.num_edges()
    for marking in serial.states:
        assert sorted(graph.successors(marking), key=repr) == sorted(
            serial.successors(marking), key=repr
        )
    assert set(graph.deadlocks()) == set(serial.deadlocks())
    assert graph.is_live() == serial.is_live()
    assert graph.is_reversible() == serial.is_reversible()
    assert graph.is_safe() == serial.is_safe()
    assert graph.fired_tids() == serial.fired_tids()
    assert graph.dead_transitions() == serial.dead_transitions()


def test_successor_edges_keep_engine_order():
    """Per-state successor lists come out in dense/tid order, exactly
    as the serial engines append them."""
    net = deadlocking_net()
    serial = ReachabilityGraph(net)
    graph = parallel_reachability_graph(net, workers=2)
    for marking in serial.states:
        assert graph.successors(marking) == serial.successors(marking)


# -- instrumentation ---------------------------------------------------------


def test_parallel_metrics_published():
    net = channel_bank(2).net
    with obs.record() as recorder:
        parallel_explore(net, workers=2)
    payload = recorder.to_dict()
    assert any(
        span["name"] == "engine.parallel.explore"
        and span["meta"]["workers"] == 2
        for span in payload["spans"]
    )
    gauges = payload["gauges"]
    assert gauges["parallel.workers"] == 2
    shard_states = [
        gauges[f"parallel.worker{i}.shard_states"] for i in range(2)
    ]
    assert sum(shard_states) == 16
    assert payload["counters"]["parallel.states"] == 16
    assert "parallel.batch_flush_ms_max" in gauges
    assert payload["counters"]["parallel.batches"] >= 1


def test_single_worker_spill_metrics_published():
    net = channel_bank(2).net
    with obs.record() as recorder:
        parallel_explore(net, workers=1, memory_budget=0)
    payload = recorder.to_dict()
    assert payload["counters"]["parallel.spill_count"] >= 1
    assert payload["counters"]["parallel.spilled_keys"] > 0
