"""Shared hypothesis strategies: random small bounded Petri nets.

The generators keep nets small enough that exact language comparison via
DFA construction stays fast, but varied enough to cover conflicts,
concurrency, joint presets/postsets and non-safe markings.
"""

from __future__ import annotations

from hypothesis import assume, strategies as st

from repro.algebra.fragment import (  # noqa: F401  (re-exported for tests)
    hidable_transition_ids,
    supported_hide,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError

ACTIONS = ["a", "b", "c", "u"]
PLACES = ["p0", "p1", "p2", "p3", "p4"]

#: Name material for the interop round-trip suite: whitespace, unicode,
#: the .net reserved/structural tokens (braces, ``->``, ``*``/``?``
#: weight suffixes, ``#`` comments, ``:``), astg-style tuples and
#: XML-hostile text.  Newlines/CR are excluded — every format rejects
#: them loudly instead of escaping them.
NASTY_NAMES = [
    "plain",
    "two words",
    " leading",
    "trailing ",
    "tökén",
    "操作",
    "br{ace}s",
    "back\\slash",
    "a->b",
    "p*2",
    "p?1",
    "<a+,x->",
    "# not a comment",
    ".label",
    "a=b",
    "a/b",
    "tr",
    "pl",
    "net",
    "t0",
    "(1)",
    ":",
    "a'b",
]


@st.composite
def petri_nets(
    draw,
    max_places: int = 5,
    max_transitions: int = 5,
    max_tokens: int = 2,
    actions: list[str] | None = None,
) -> PetriNet:
    """A random labeled Petri net (not necessarily bounded)."""
    labels = actions if actions is not None else ACTIONS
    num_places = draw(st.integers(2, max_places))
    places = PLACES[:num_places]
    num_transitions = draw(st.integers(1, max_transitions))
    net = PetriNet("random")
    for _ in range(num_transitions):
        preset = draw(
            st.sets(st.sampled_from(places), min_size=1, max_size=2)
        )
        postset = draw(
            st.sets(st.sampled_from(places), min_size=1, max_size=2)
        )
        action = draw(st.sampled_from(labels))
        net.add_transition(preset, action, postset)
    token_places = draw(
        st.lists(st.sampled_from(places), min_size=1, max_size=max_tokens)
    )
    net.set_initial(Marking.from_places(token_places))
    return net


@st.composite
def bounded_nets(draw, max_states: int = 3000, **kwargs) -> PetriNet:
    """A random *bounded* net (unbounded draws are discarded)."""
    net = draw(petri_nets(**kwargs))
    try:
        ReachabilityGraph(net, max_states=max_states)
    except UnboundedNetError:
        assume(False)
    return net


@st.composite
def safe_initial_nets(draw, **kwargs) -> PetriNet:
    """A random bounded net whose *initial* marking is safe
    (precondition of Definitions 4.3 and 4.5)."""
    net = draw(bounded_nets(**kwargs))
    assume(net.initial.is_safe())
    return net


@st.composite
def multi_token_nets(draw, max_extra_tokens: int = 4, **kwargs) -> PetriNet:
    """A random net whose initial marking is guaranteed *non-safe*:
    at least one place starts with two or more tokens.

    Exercises the multiset (general-net) paths of the exploration
    engines, which the safe STG models never reach.
    """
    net = draw(petri_nets(**kwargs))
    place = draw(st.sampled_from(sorted(net.places)))
    extra = draw(st.integers(2, max_extra_tokens))
    counts = dict(net.initial)
    counts[place] = counts.get(place, 0) + extra
    net.set_initial(Marking(counts))
    return net


@st.composite
def bounded_multi_token_nets(draw, max_states: int = 3000, **kwargs) -> PetriNet:
    """A random *bounded* net with a non-safe initial marking."""
    net = draw(multi_token_nets(**kwargs))
    try:
        ReachabilityGraph(net, max_states=max_states)
    except UnboundedNetError:
        assume(False)
    return net


@st.composite
def interop_nets(draw, max_places: int = 4, max_transitions: int = 4) -> PetriNet:
    """A random net built from :data:`NASTY_NAMES`: hostile place and
    action names, isolated places, non-safe markings, unused alphabet
    labels — the torture input for the exact-round-trip formats."""
    names = draw(
        st.lists(
            st.sampled_from(NASTY_NAMES),
            min_size=2,
            max_size=max_places,
            unique=True,
        )
    )
    net = PetriNet(draw(st.sampled_from(NASTY_NAMES)))
    for name in names:
        net.add_place(name)
    num_transitions = draw(st.integers(0, max_transitions))
    for _ in range(num_transitions):
        preset = draw(st.sets(st.sampled_from(names), min_size=0, max_size=2))
        postset = draw(st.sets(st.sampled_from(names), min_size=0, max_size=2))
        action = draw(st.sampled_from(NASTY_NAMES + ["a+", "b-", "eps"]))
        net.add_transition(preset, action, postset)
    if draw(st.booleans()):
        net.actions.add(draw(st.sampled_from(NASTY_NAMES)))
    counts = {
        place: draw(st.integers(0, 3))
        for place in draw(
            st.lists(st.sampled_from(names), max_size=max_places, unique=True)
        )
    }
    net.set_initial(Marking(counts))
    return net
