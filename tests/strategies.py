"""Shared hypothesis strategies: random small bounded Petri nets.

The generators keep nets small enough that exact language comparison via
DFA construction stays fast, but varied enough to cover conflicts,
concurrency, joint presets/postsets and non-safe markings.
"""

from __future__ import annotations

from hypothesis import assume, strategies as st

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError

ACTIONS = ["a", "b", "c", "u"]
PLACES = ["p0", "p1", "p2", "p3", "p4"]


@st.composite
def petri_nets(
    draw,
    max_places: int = 5,
    max_transitions: int = 5,
    max_tokens: int = 2,
    actions: list[str] | None = None,
) -> PetriNet:
    """A random labeled Petri net (not necessarily bounded)."""
    labels = actions if actions is not None else ACTIONS
    num_places = draw(st.integers(2, max_places))
    places = PLACES[:num_places]
    num_transitions = draw(st.integers(1, max_transitions))
    net = PetriNet("random")
    for _ in range(num_transitions):
        preset = draw(
            st.sets(st.sampled_from(places), min_size=1, max_size=2)
        )
        postset = draw(
            st.sets(st.sampled_from(places), min_size=1, max_size=2)
        )
        action = draw(st.sampled_from(labels))
        net.add_transition(preset, action, postset)
    token_places = draw(
        st.lists(st.sampled_from(places), min_size=1, max_size=max_tokens)
    )
    net.set_initial(Marking.from_places(token_places))
    return net


@st.composite
def bounded_nets(draw, max_states: int = 3000, **kwargs) -> PetriNet:
    """A random *bounded* net (unbounded draws are discarded)."""
    net = draw(petri_nets(**kwargs))
    try:
        ReachabilityGraph(net, max_states=max_states)
    except UnboundedNetError:
        assume(False)
    return net


@st.composite
def safe_initial_nets(draw, **kwargs) -> PetriNet:
    """A random bounded net whose *initial* marking is safe
    (precondition of Definitions 4.3 and 4.5)."""
    net = draw(bounded_nets(**kwargs))
    assume(net.initial.is_safe())
    return net


@st.composite
def multi_token_nets(draw, max_extra_tokens: int = 4, **kwargs) -> PetriNet:
    """A random net whose initial marking is guaranteed *non-safe*:
    at least one place starts with two or more tokens.

    Exercises the multiset (general-net) paths of the exploration
    engines, which the safe STG models never reach.
    """
    net = draw(petri_nets(**kwargs))
    place = draw(st.sampled_from(sorted(net.places)))
    extra = draw(st.integers(2, max_extra_tokens))
    counts = dict(net.initial)
    counts[place] = counts.get(place, 0) + extra
    net.set_initial(Marking(counts))
    return net


@st.composite
def bounded_multi_token_nets(draw, max_states: int = 3000, **kwargs) -> PetriNet:
    """A random *bounded* net with a non-safe initial marking."""
    net = draw(multi_token_nets(**kwargs))
    try:
        ReachabilityGraph(net, max_states=max_states)
    except UnboundedNetError:
        assume(False)
    return net


def hidable_transition_ids(net: PetriNet, label: str) -> list[int]:
    """Transitions with ``label`` that Definition 4.10's construction
    supports exactly under the paper's set-based (weight-free) formalism.

    Excluded:

    * self-loops (divergence — the paper excludes them),
    * transitions whose successors consume from the hidden preset or
      produce into leftover postset places: the paper's set-based
      postsets cannot express the arc *weights* those cases need (the
      formalism's transition relation lives in ``2^P x A x 2^P``).
    """
    result = []
    for tid, t in sorted(net.transitions.items()):
        if t.action != label or t.is_self_looping():
            continue
        if not t.preset or not t.postset:
            continue
        supported = True
        for other_tid, other in net.transitions.items():
            if other_tid == tid:
                continue
            if other.preset & t.postset:
                if other.preset & t.preset:
                    supported = False  # successor competing for the preset
                if other.postset & (t.postset - other.preset):
                    supported = False  # duplicate would need arc weight 2
        if supported:
            result.append(tid)
    return result


def supported_hide(net: PetriNet, labels) -> PetriNet | None:
    """:func:`repro.algebra.hide.hide`, but guarded *step by step*.

    Proposition 4.6 (order-independence of contraction) only holds while
    every individual contraction stays inside the fragment the set-based
    formalism supports — and contracting one transition can push a
    *remaining* hidden transition outside that fragment (e.g. its fused
    preset place gains a competing successor).  Checking
    :func:`hidable_transition_ids` on the original net alone is
    therefore not enough.  This helper mirrors ``hide``'s contraction
    loop, re-validating the next candidate against the *current* net at
    each step, and returns ``None`` as soon as an unsupported
    contraction would be required.
    """
    from repro.algebra.hide import hide_transition

    label_set = {labels} if isinstance(labels, str) else set(labels)
    current = net.copy()
    steps = 0
    while True:
        candidates = [
            t
            for _, t in sorted(current.transitions.items())
            if t.action in label_set
        ]
        if not candidates:
            break
        steps += 1
        if steps > 10_000:
            return None
        target = candidates[0]
        if target.preset == target.postset:
            # Mirrors hide(): an unobservable no-op, safe to delete.
            current.remove_transition(target.tid)
            continue
        if target.tid not in hidable_transition_ids(current, target.action):
            return None
        current = hide_transition(current, target.tid)
    current.actions -= label_set
    current.name = f"hide({net.name})"
    return current
