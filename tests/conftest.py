"""Shared fixtures: the checked-in mini-corpus under ``tests/corpus/``.

The same fixtures back the unit tests (``tests/bench/``) and the
benchmark suite (``benchmarks/conftest.py`` imports them), so both
always sweep the same instance set.  Regenerate the model-derived files
with ``PYTHONPATH=src python tests/corpus/_generate.py``.
"""

import os
from pathlib import Path

import pytest

# Keep the suite hermetic: a developer's populated ~/.cache/cip (or a
# CIP_CACHE_DIR pointing at one) must not leak verdicts into CLI runs
# under test.  ``--cache-dir`` still overrides this, so the cache tests
# opt back in explicitly with temporary directories.
os.environ.setdefault("CIP_NO_CACHE", "1")

CORPUS_DIR = Path(__file__).parent / "corpus"


@pytest.fixture(scope="session")
def corpus_dir() -> Path:
    """The checked-in mini-corpus directory."""
    return CORPUS_DIR


@pytest.fixture(scope="session")
def corpus_paths(corpus_dir) -> list[Path]:
    """Every net file in the mini-corpus (all four formats), sorted."""
    from repro.bench.corpus import discover

    return discover(corpus_dir)
