"""Tests for receptiveness checking (Props 5.5/5.6, Thm 5.7)."""

import pytest

from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import Stg
from repro.verify.receptiveness import (
    check_receptiveness,
    check_receptiveness_with_hiding,
    compose_with_obligations,
)


def impatient_master() -> Stg:
    """Drops the request without waiting for the acknowledge: the
    4-phase discipline is broken (the Figure 8 pattern in miniature)."""
    net = PetriNet("impatient")
    net.add_transition({"m0"}, "r+", {"m1"})
    net.add_transition({"m1"}, "r-", {"m2"})
    net.add_transition({"m2"}, "a+", {"m3"})
    net.add_transition({"m3"}, "a-", {"m0"})
    net.set_initial(Marking({"m0": 1}))
    return Stg(net, inputs={"a"}, outputs={"r"})


class TestComposeWithObligations:
    def test_obligations_cover_both_directions(self):
        composite, obligations = compose_with_obligations(
            four_phase_master(), four_phase_slave()
        )
        actions = {o.action for o in obligations}
        assert actions == {"r+", "r-", "a+", "a-"}
        producers = {o.action: o.producer for o in obligations}
        assert producers["r+"] == "master"
        assert producers["a+"] == "slave"

    def test_composite_structure(self):
        composite, _ = compose_with_obligations(
            four_phase_master(), four_phase_slave()
        )
        assert len(composite.net.transitions) == 4  # all fused

    def test_common_outputs_rejected(self):
        with pytest.raises(ValueError):
            compose_with_obligations(four_phase_master(), four_phase_master())


class TestReachabilityMethod:
    def test_matched_handshake_is_receptive(self):
        report = check_receptiveness(
            four_phase_master(), four_phase_slave(), method="reachability"
        )
        assert report.is_receptive()
        assert "receptive" in str(report)

    def test_impatient_master_fails(self):
        report = check_receptiveness(
            impatient_master(), four_phase_slave(), method="reachability"
        )
        assert not report.is_receptive()
        assert "r-" in report.failing_actions()
        assert "NOT receptive" in str(report)

    def test_failure_attribution(self):
        """The premature r- is attributed to the impatient master (the
        stranded a+ is symmetrically attributed to the slave)."""
        report = check_receptiveness(
            impatient_master(), four_phase_slave(), method="reachability"
        )
        by_action = {f.obligation.action: f.obligation for f in report.failures}
        assert by_action["r-"].producer == "impatient"
        assert by_action["r-"].consumer == "slave"
        assert by_action["a+"].producer == "slave"

    def test_cross_product_alternatives_not_false_failures(self):
        """Two consumer alternatives for the same label: the producer is
        fine as long as *some* alternative is ready."""
        producer = four_phase_master()
        slave = PetriNet("slave2")
        # Two r+ consumers in free choice; one of them is always ready.
        slave.add_transition({"s0"}, "r+", {"s1"})
        slave.add_transition({"s0"}, "r+", {"s2"})
        slave.add_transition({"s1"}, "a+", {"s3"})
        slave.add_transition({"s2"}, "a+", {"s3"})
        slave.add_transition({"s3"}, "r-", {"s4"})
        slave.add_transition({"s4"}, "a-", {"s0"})
        slave.set_initial(Marking({"s0": 1}))
        report = check_receptiveness(
            producer, Stg(slave, inputs={"r"}, outputs={"a"}),
            method="reachability",
        )
        assert report.is_receptive()


class TestStructuralMethod:
    def test_marked_graph_receptive_handshake(self):
        report = check_receptiveness(
            four_phase_master(), four_phase_slave(), method="structural"
        )
        assert report.is_receptive()
        assert report.method == "structural"

    def test_structural_detects_failure(self):
        report = check_receptiveness(
            impatient_master(), four_phase_slave(), method="structural"
        )
        assert not report.is_receptive()

    def test_structural_agrees_with_reachability(self):
        """Cross-validate the two methods on marked-graph compositions."""
        for master in (four_phase_master(), impatient_master()):
            structural = check_receptiveness(
                master, four_phase_slave(), method="structural"
            )
            exhaustive = check_receptiveness(
                master, four_phase_slave(), method="reachability"
            )
            assert structural.is_receptive() == exhaustive.is_receptive()
            assert structural.failing_actions() == exhaustive.failing_actions()

    def test_auto_picks_structural_for_marked_graphs(self):
        report = check_receptiveness(four_phase_master(), four_phase_slave())
        assert report.method == "structural"

    def test_auto_falls_back_for_general_nets(self):
        master = four_phase_master()
        # Add a conflict to break the marked-graph property.
        master.net.add_transition({"m0"}, "r+", {"m1"})
        report = check_receptiveness(master, four_phase_slave())
        assert report.method == "reachability"


class TestHidePrimeRefinement:
    def test_private_signals_relabeled_not_contracted(self):
        """A private event on the master's *output* path (gating no
        input) keeps the composition receptive; hide' keeps it as an
        epsilon dummy rather than contracting it away."""
        net = PetriNet("master_led")
        net.add_transition({"m0"}, "r+", {"m1"})
        net.add_transition({"m1"}, "a+", {"m2"})
        net.add_transition({"m2"}, "led+", {"m2b"})
        net.add_transition({"m2b"}, "r-", {"m3"})
        net.add_transition({"m3"}, "a-", {"m0"})
        net.set_initial(Marking({"m0": 1}))
        master = Stg(net, inputs={"a"}, outputs={"r", "led"})
        report = check_receptiveness_with_hiding(master, four_phase_slave())
        assert report.is_receptive()
        # The private 'led' signal is gone from the composite alphabet...
        assert "led+" not in report.composite.net.used_actions()
        # ...but its transition survives as an epsilon dummy (hide').
        from repro.petri.net import EPSILON

        assert report.composite.net.transitions_with_action(EPSILON)

    def test_internal_event_gating_an_input_is_a_failure(self):
        """The information hide' preserves: an input whose consumer is
        only reached via an internal transition is a genuine potential
        failure (the environment may emit before the internal step
        completes); full contraction would have hidden that."""
        net = PetriNet("master_gated")
        net.add_transition({"m0"}, "r+", {"m1"})
        net.add_transition({"m1"}, "led+", {"m1b"})
        net.add_transition({"m1b"}, "a+", {"m2"})
        net.add_transition({"m2"}, "r-", {"m3"})
        net.add_transition({"m3"}, "a-", {"m0"})
        net.set_initial(Marking({"m0": 1}))
        master = Stg(net, inputs={"a"}, outputs={"r", "led"})
        report = check_receptiveness_with_hiding(master, four_phase_slave())
        assert not report.is_receptive()
        assert "a+" in report.failing_actions()

    def test_hiding_does_not_mask_failures(self):
        report = check_receptiveness_with_hiding(
            impatient_master(), four_phase_slave()
        )
        assert not report.is_receptive()


class TestCounterexampleTraces:
    """A failing on-the-fly check must come with a firable trace from
    the composite's initial marking to the failure state, replayable
    step by step through the token game."""

    def failing_report(self, **kwargs):
        return check_receptiveness(
            impatient_master(),
            four_phase_slave(),
            method="reachability",
            engine="onthefly",
            **kwargs,
        )

    def test_failures_carry_traces(self):
        report = self.failing_report()
        assert report.failures
        for failure in report.failures:
            assert failure.trace is not None
            assert failure.tids is not None
            assert len(failure.trace) == len(failure.tids)

    def test_traces_replay_to_the_failure_marking(self):
        from repro.petri.simulation import TokenGame

        report = self.failing_report()
        for failure in report.failures:
            game = TokenGame(report.composite.net)
            for tid, action in zip(failure.tids, failure.trace):
                assert report.composite.net.transitions[tid].action == action
                game.fire_tid(tid)
            assert game.marking == failure.marking

    def test_failure_marking_is_a_prop55_witness(self):
        """At the trace's endpoint the producer is ready to emit but no
        consumer alternative is ready to accept."""
        report = self.failing_report()
        for failure in report.failures:
            obligation = failure.obligation
            assert all(
                failure.marking[p] >= 1 for p in obligation.producer_preset
            )
            for preset in obligation.consumer_presets:
                assert not all(failure.marking[p] >= 1 for p in preset)

    def test_trace_shown_in_failure_message(self):
        report = self.failing_report()
        rendered = str(report)
        assert "(after " in rendered

    def test_eager_engine_agrees_but_has_no_trace(self):
        eager = check_receptiveness(
            impatient_master(),
            four_phase_slave(),
            method="reachability",
            engine="eager",
        )
        lazy = self.failing_report()
        assert eager.failing_actions() == lazy.failing_actions()
        assert eager.engine == "eager" and lazy.engine == "onthefly"
        assert all(f.trace is None for f in eager.failures)

    def test_stop_at_first_explores_no_further(self):
        full = self.failing_report()
        early = self.failing_report(stop_at_first=True)
        assert not early.is_receptive()
        assert len(early.failures) == 1
        assert early.states_explored <= full.states_explored

    def test_receptive_composition_explores_everything(self):
        report = check_receptiveness(
            four_phase_master(),
            four_phase_slave(),
            method="reachability",
            engine="onthefly",
        )
        assert report.is_receptive()
        assert report.states_explored is not None
        eager = check_receptiveness(
            four_phase_master(),
            four_phase_slave(),
            method="reachability",
            engine="eager",
        )
        assert report.states_explored == eager.states_explored

class TestPorEngine:
    """``engine="por"`` must agree with the oracle on every verdict, and
    its reduced exploration must stay deterministic and replayable."""

    def reports(self, first, second, **kwargs):
        return {
            engine: check_receptiveness(
                first, second, method="reachability", engine=engine, **kwargs
            )
            for engine in ("eager", "onthefly", "por")
        }

    def test_verdicts_agree_on_failing_composition(self):
        reports = self.reports(impatient_master(), four_phase_slave())
        assert not reports["eager"].is_receptive()
        for engine in ("onthefly", "por"):
            assert not reports[engine].is_receptive()
            assert (
                reports[engine].failing_actions()
                == reports["eager"].failing_actions()
            )

    def test_verdicts_agree_on_receptive_composition(self):
        reports = self.reports(four_phase_master(), four_phase_slave())
        assert all(report.is_receptive() for report in reports.values())

    def test_por_explores_at_most_onthefly(self):
        reports = self.reports(four_phase_master(), four_phase_slave())
        assert (
            reports["por"].states_explored
            <= reports["onthefly"].states_explored
        )
        assert reports["por"].states_reduced is not None

    def test_por_traces_replay_on_the_unreduced_net(self):
        """Reduced-space edges are real firings: every counterexample
        trace must replay, tid by tid, on the full composite net."""
        from repro.petri.simulation import TokenGame

        report = check_receptiveness(
            impatient_master(),
            four_phase_slave(),
            method="reachability",
            engine="por",
        )
        assert report.failures
        for failure in report.failures:
            assert failure.trace is not None and failure.tids is not None
            game = TokenGame(report.composite.net)
            for tid, action in zip(failure.tids, failure.trace):
                assert report.composite.net.transitions[tid].action == action
                game.fire_tid(tid)
            assert game.marking == failure.marking

    def test_por_runs_are_deterministic(self):
        """Two identical runs return identical traces, tids, markings
        and state counts — the stubborn selection has no hidden
        iteration-order dependence."""
        runs = [
            check_receptiveness(
                impatient_master(),
                four_phase_slave(),
                method="reachability",
                engine="por",
            )
            for _ in range(3)
        ]
        baseline = runs[0]
        for run in runs[1:]:
            assert run.states_explored == baseline.states_explored
            assert run.states_reduced == baseline.states_reduced
            assert [f.trace for f in run.failures] == [
                f.trace for f in baseline.failures
            ]
            assert [f.tids for f in run.failures] == [
                f.tids for f in baseline.failures
            ]
            assert [f.marking for f in run.failures] == [
                f.marking for f in baseline.failures
            ]

    def test_por_with_hiding(self):
        report = check_receptiveness_with_hiding(
            four_phase_master(), four_phase_slave(), engine="por"
        )
        assert report.is_receptive()
        assert report.engine == "por"
