"""Tests for mirror-based conformance and structural isomorphism."""

import pytest

from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.stg.stg import Stg, mirror
from repro.verify.conformance import check_conformance, conforms
from repro.verify.isomorphism import isomorphic, place_bijection


def slow_slave() -> Stg:
    """A conforming implementation: same protocol, one internal epsilon
    delay before acknowledging."""
    net = PetriNet("slow_slave")
    net.add_transition({"s0"}, "r+", {"s1"})
    net.add_transition({"s1"}, EPSILON, {"s1b"})
    net.add_transition({"s1b"}, "a+", {"s2"})
    net.add_transition({"s2"}, "r-", {"s3"})
    net.add_transition({"s3"}, "a-", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


def chatty_slave() -> Stg:
    """A non-conforming implementation: acknowledges before the request
    (an output the spec forbids)."""
    net = PetriNet("chatty")
    net.add_transition({"s0"}, "a+", {"s1"})
    net.add_transition({"s1"}, "r+", {"s2"})
    net.add_transition({"s2"}, "a-", {"s3"})
    net.add_transition({"s3"}, "r-", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


def deaf_slave() -> Stg:
    """Accepts only one request ever: not receptive to the second."""
    net = PetriNet("deaf")
    net.add_transition({"s0"}, "r+", {"s1"})
    net.add_transition({"s1"}, "a+", {"s2"})
    net.add_transition({"s2"}, "r-", {"s3"})
    net.add_transition({"s3"}, "a-", {"s4"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


class TestMirror:
    def test_mirror_swaps_io(self):
        spec = four_phase_slave()
        env = mirror(spec)
        assert env.inputs == spec.outputs
        assert env.outputs == spec.inputs

    def test_mirror_of_mirror_is_original_interface(self):
        spec = four_phase_slave()
        assert mirror(mirror(spec)).inputs == spec.inputs

    def test_mirror_rejects_internals(self):
        spec = four_phase_slave()
        spec.internals.add("x")
        with pytest.raises(ValueError):
            mirror(spec)

    def test_mirror_of_slave_is_master_shaped(self):
        """The slave's mirror behaves like the master (same protocol,
        roles swapped)."""
        from repro.verify.language import languages_equal

        assert languages_equal(
            mirror(four_phase_slave()).net, four_phase_master().net
        )


class TestConformance:
    def test_spec_conforms_to_itself(self):
        assert conforms(four_phase_slave(), four_phase_slave())

    def test_slower_implementation_conforms(self):
        report = check_conformance(slow_slave(), four_phase_slave())
        assert report.conforms(), str(report)

    def test_extra_output_rejected(self):
        report = check_conformance(chatty_slave(), four_phase_slave())
        assert not report.trace_contained
        assert not report.conforms()
        assert "forbids" in str(report)

    def test_non_receptive_implementation_rejected(self):
        report = check_conformance(deaf_slave(), four_phase_slave())
        assert not report.receptiveness.is_receptive()
        assert not report.conforms()

    def test_interface_mismatch_reported(self):
        other = four_phase_slave()
        other.outputs.add("extra")
        report = check_conformance(other, four_phase_slave())
        assert not report.interface_ok
        assert "output mismatch" in str(report)


class TestIsomorphism:
    def test_renamed_net_isomorphic(self):
        net = four_phase_slave().net
        renamed = net.renamed_places({p: f"x_{p}" for p in net.places})
        assert isomorphic(net, renamed)
        bijection = place_bijection(net, renamed)
        assert bijection == {p: f"x_{p}" for p in net.places}

    def test_different_labels_not_isomorphic(self):
        from repro.algebra.operators import sequence_net

        assert not isomorphic(
            sequence_net(["a", "b"]).copy(), sequence_net(["a", "c"])
        )

    def test_different_marking_not_isomorphic(self):
        from repro.algebra.operators import sequence_net

        first = sequence_net(["a", "b"], cyclic=True)
        second = sequence_net(["a", "b"], cyclic=True)
        second.set_initial(Marking({"p1": 1}))
        # Same shape, token elsewhere: still isomorphic (rotation maps
        # p1 to p0 while relabeling transitions... but labels differ:
        # a/b sequence from p1 means b fires first). Structure: place
        # with token must map to place with token AND labels must
        # match; the rotated net is NOT label-isomorphic.
        assert not isomorphic(first, second)

    def test_structure_difference_detected(self):
        left = PetriNet()
        left.add_transition({"p", "q"}, "a", {"r"})
        right = PetriNet()
        right.add_transition({"p"}, "a", {"q", "r"})
        assert not isomorphic(left, right)

    def test_derived_vs_reference(self):
        """The fast-path contraction of the simple chain is isomorphic
        to the hand-built 2-place loop."""
        from repro.algebra.hide import hide
        from repro.models.paper_figures import (
            FIG3_HIDDEN_LABEL,
            fig3_simple_chain,
        )

        derived = hide(fig3_simple_chain(), FIG3_HIDDEN_LABEL)
        reference = PetriNet()
        reference.add_transition({"x"}, "a", {"y"})
        reference.add_transition({"y"}, "b", {"x"})
        reference.set_initial(Marking({"x": 1}))
        assert isomorphic(derived, reference)
