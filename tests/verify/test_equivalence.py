"""Tests for bisimulation and failures semantics."""

from repro.algebra.operators import sequence_net
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.verify.equivalence import (
    deadlock_traces,
    failures,
    failures_refines,
    strongly_bisimilar,
    weakly_bisimilar,
)
from repro.verify.language import languages_equal


def deterministic_ab() -> PetriNet:
    """a then (b or c), decided after a."""
    net = PetriNet("det")
    net.add_transition({"s0"}, "a", {"s1"})
    net.add_transition({"s1"}, "b", {"s2"})
    net.add_transition({"s1"}, "c", {"s3"})
    net.set_initial(Marking({"s0": 1}))
    return net


def nondeterministic_ab() -> PetriNet:
    """(a then b) or (a then c), decided at a — trace-equal to the
    deterministic variant but not bisimilar, and failures-different."""
    net = PetriNet("nondet")
    net.add_transition({"s0"}, "a", {"s1"})
    net.add_transition({"s0"}, "a", {"s2"})
    net.add_transition({"s1"}, "b", {"s3"})
    net.add_transition({"s2"}, "c", {"s4"})
    net.set_initial(Marking({"s0": 1}))
    return net


class TestStrongBisimulation:
    def test_identical_nets_bisimilar(self):
        assert strongly_bisimilar(deterministic_ab(), deterministic_ab())

    def test_unrolled_loop_bisimilar(self):
        loop = sequence_net(["a", "b"], cyclic=True)
        doubled = sequence_net(["a", "b", "a", "b"], cyclic=True)
        assert strongly_bisimilar(loop, doubled)

    def test_classic_counterexample(self):
        """a.(b+c) vs a.b + a.c: trace-equivalent, not bisimilar."""
        det, nondet = deterministic_ab(), nondeterministic_ab()
        assert languages_equal(det, nondet)
        assert not strongly_bisimilar(det, nondet)

    def test_different_languages_not_bisimilar(self):
        assert not strongly_bisimilar(
            sequence_net(["a"]), sequence_net(["b"])
        )

    def test_epsilon_matters_strongly(self):
        plain = sequence_net(["a"])
        padded = sequence_net([EPSILON, "a"])
        assert not strongly_bisimilar(plain, padded)


class TestWeakBisimulation:
    def test_epsilon_padding_ignored(self):
        plain = sequence_net(["a", "b"])
        padded = sequence_net(["a", EPSILON, "b"])
        assert weakly_bisimilar(plain, padded)

    def test_custom_silent_label(self):
        plain = sequence_net(["a", "b"])
        padded = sequence_net(["a", "u", "b"])
        assert weakly_bisimilar(plain, padded, silent={"u", EPSILON})
        assert not weakly_bisimilar(plain, padded)

    def test_weak_still_separates_branching(self):
        assert not weakly_bisimilar(
            deterministic_ab(), nondeterministic_ab()
        )

    def test_hidden_internal_choice_not_weakly_bisimilar(self):
        """tau.b + tau.c is not weakly bisimilar to b + c (the silent
        choice pre-commits)."""
        committed = PetriNet("committed")
        committed.add_transition({"s0"}, EPSILON, {"s1"})
        committed.add_transition({"s0"}, EPSILON, {"s2"})
        committed.add_transition({"s1"}, "b", {"s3"})
        committed.add_transition({"s2"}, "c", {"s4"})
        committed.set_initial(Marking({"s0": 1}))
        external = PetriNet("external")
        external.add_transition({"r0"}, "b", {"r1"})
        external.add_transition({"r0"}, "c", {"r2"})
        external.set_initial(Marking({"r0": 1}))
        assert languages_equal(committed, external)
        assert not weakly_bisimilar(committed, external)


class TestFailures:
    def test_deterministic_refusals(self):
        pairs = failures(deterministic_ab())
        # After 'a' the stable state offers {b, c}: only 'a' is refused.
        assert (("a",), frozenset({"a"})) in pairs
        assert (("a", "b"), frozenset({"a", "b", "c"})) in pairs

    def test_nondeterministic_refusals(self):
        pairs = failures(nondeterministic_ab())
        # After 'a' one branch refuses c, the other refuses b.
        assert (("a",), frozenset({"a", "c"})) in pairs
        assert (("a",), frozenset({"a", "b"})) in pairs

    def test_refinement_detects_new_refusal(self):
        """The nondeterministic variant does NOT failures-refine the
        deterministic one (it can refuse b after a), while the
        deterministic one refines the nondeterministic spec's traces but
        not vice versa."""
        assert not failures_refines(
            nondeterministic_ab(), deterministic_ab()
        )

    def test_refinement_reflexive(self):
        assert failures_refines(deterministic_ab(), deterministic_ab())

    def test_smaller_trace_set_with_same_refusals_refines(self):
        shorter = sequence_net(["a"])
        longer = sequence_net(["a", "b"])
        # 'shorter' deadlocks after a, which 'longer' never allows.
        assert not failures_refines(shorter, longer)

    def test_deadlock_traces(self):
        net = sequence_net(["a", "b"])
        assert deadlock_traces(net) == {("a", "b")}

    def test_live_loop_has_no_deadlock_traces(self):
        net = sequence_net(["a", "b"], cyclic=True)
        assert deadlock_traces(net) == set()

    def test_composition_deadlock_visible_in_failures(self):
        """The Prop 5.3 counterexample (a.b)*||(b.a)* deadlocks at the
        empty trace."""
        from repro.algebra.compose import parallel

        left = sequence_net(["a", "b"], cyclic=True, name="L")
        right = sequence_net(["b", "a"], cyclic=True, name="R")
        composed = parallel(left, right)
        assert () in deadlock_traces(composed)
