"""Tests for exact DFA-based language comparison."""

from repro.algebra.operators import sequence_net
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.verify.language import (
    dfa_contained,
    dfa_equal,
    dfa_of_net,
    distinguishing_trace,
    language_contained,
    languages_equal,
    minimize,
)


def loop_ab() -> PetriNet:
    return sequence_net(["a", "b"], cyclic=True, name="loop")


class TestDfaConstruction:
    def test_loop_dfa_two_live_states(self):
        dfa = dfa_of_net(loop_ab())
        assert dfa.num_live_states() == 2

    def test_accepts_prefixes(self):
        dfa = dfa_of_net(loop_ab())
        assert dfa.accepts(())
        assert dfa.accepts(("a",))
        assert dfa.accepts(("a", "b", "a"))
        assert not dfa.accepts(("b",))
        assert not dfa.accepts(("a", "a"))

    def test_epsilon_closed_by_default(self):
        net = PetriNet()
        net.add_transition({"p"}, EPSILON, {"q"})
        net.add_transition({"q"}, "a", {"r"})
        net.set_initial(Marking({"p": 1}))
        dfa = dfa_of_net(net)
        assert dfa.accepts(("a",))
        assert EPSILON not in dfa.alphabet

    def test_custom_silent_labels(self):
        net = sequence_net(["u", "a"])
        dfa = dfa_of_net(net, silent={"u"})
        assert dfa.accepts(("a",))

    def test_alphabet_override(self):
        dfa = dfa_of_net(loop_ab(), alphabet={"a", "b", "zz"})
        assert "zz" in dfa.alphabet
        assert not dfa.accepts(("zz",))

    def test_minimize_is_idempotent(self):
        dfa = dfa_of_net(loop_ab())
        again = minimize(dfa)
        assert again.num_states == dfa.num_states

    def test_nondeterministic_labels_determinized(self):
        net = PetriNet()
        net.add_transition({"s"}, "a", {"x"})
        net.add_transition({"s"}, "a", {"y"})
        net.add_transition({"x"}, "b", {"z"})
        net.add_transition({"y"}, "c", {"z"})
        net.set_initial(Marking({"s": 1}))
        dfa = dfa_of_net(net)
        assert dfa.accepts(("a", "b"))
        assert dfa.accepts(("a", "c"))


class TestComparison:
    def test_equal_nets(self):
        assert languages_equal(loop_ab(), loop_ab())

    def test_prefix_language_contained(self):
        shorter = sequence_net(["a"])
        longer = sequence_net(["a", "b"])
        assert language_contained(shorter, longer)
        assert not language_contained(longer, shorter)

    def test_distinguishing_trace_found(self):
        shorter = sequence_net(["a"])
        longer = sequence_net(["a", "b"])
        assert distinguishing_trace(longer, shorter) == ("a", "b")

    def test_distinguishing_trace_none_for_equal(self):
        assert distinguishing_trace(loop_ab(), loop_ab()) is None

    def test_dfa_equal_and_contained_consistency(self):
        d1 = dfa_of_net(sequence_net(["a"]), alphabet={"a", "b"})
        d2 = dfa_of_net(sequence_net(["a", "b"]), alphabet={"a", "b"})
        assert dfa_contained(d1, d2)
        assert not dfa_equal(d1, d2)

    def test_unrolled_loop_equivalent(self):
        """(a.b)* and its double unrolling have the same language."""
        doubled = sequence_net(["a", "b", "a", "b"], cyclic=True)
        assert languages_equal(loop_ab(), doubled)

    def test_silent_projection_equality(self):
        """a.u.b with u silent equals a.b."""
        with_internal = sequence_net(["a", "u", "b"])
        plain = sequence_net(["a", "b"])
        assert languages_equal(with_internal, plain, silent={"u", EPSILON})
