"""Hand-checked Prop 5.5 linear encodings.

The symbolic engine turns each synchronization obligation into a
constraint system over the state equation ``M = M0 + C·x``: producer
preset fully marked, one missed place per consumer alternative empty,
every place non-negative.  These tests pin that encoding row by row
against systems computed by hand from the nets' structure — the
four-phase handshake composite (small enough to write out completely),
the Fig 5–8 protocol-translator modules, and the channel-bank family
whose component-restricted systems have a closed-form constant size.
All coefficients must be exact rationals; a float anywhere in a
constraint row is a soundness bug, not a precision detail.
"""

from fractions import Fraction

import pytest

from repro.io.formats import load_stg
from repro.models.library import four_phase_master, four_phase_slave
from repro.models.protocol_translator import sender, translator
from repro.petri.symbolic import (
    StateEquation,
    failure_miss_choices,
    obligation_system,
    symbolic_receptiveness,
)
from repro.verify.receptiveness import compose_with_obligations

CORPUS = "tests/corpus"


def F(*values):
    return tuple(Fraction(v) for v in values)


class TestFourPhaseEncoding:
    """master||slave: 8 places, 4 transitions, every row written out.

    Transition order (sorted tids) is a+, a-, r+, r- = x0..x3, and the
    incidence rows are the two mirrored handshake cycles:

        m0/s0: +a-  -r+        m1/s1: -a+  +r+
        m2/s2: +a+  -r-        m3/s3: -a-  +r-
    """

    ROWS = {
        "m0": F(0, 1, -1, 0),
        "m1": F(-1, 0, 1, 0),
        "m2": F(1, 0, 0, -1),
        "m3": F(0, -1, 0, 1),
        "s0": F(0, 1, -1, 0),
        "s1": F(-1, 0, 1, 0),
        "s2": F(1, 0, 0, -1),
        "s3": F(0, -1, 0, 1),
    }
    M0 = {"m0": 1, "s0": 1}

    def composite(self):
        composite, obligations = compose_with_obligations(
            four_phase_master(), four_phase_slave()
        )
        return composite.net, obligations

    def test_obligations_match_hand_derivation(self):
        """One obligation per channel edge, with the handshake presets."""
        _, obligations = self.composite()
        derived = {
            ob.action: (
                sorted(ob.producer_preset),
                [sorted(p) for p in ob.consumer_presets],
            )
            for ob in obligations
        }
        assert derived == {
            "r+": (["m0"], [["s0"]]),
            "r-": (["m2"], [["s2"]]),
            "a+": (["s1"], [["m1"]]),
            "a-": (["s3"], [["m3"]]),
        }

    def test_miss_choices(self):
        _, obligations = self.composite()
        for ob in obligations:
            consumer = sorted(next(iter(ob.consumer_presets)))
            assert failure_miss_choices(ob) == [consumer]

    def test_incidence_rows_match_hand_table(self):
        net, _ = self.composite()
        equation = StateEquation(net, {"m0", "s0"})
        assert equation.places == tuple(sorted(self.ROWS))
        for place, expected in self.ROWS.items():
            assert equation.coefficients(place) == expected, place

    def test_full_system_for_r_plus(self):
        """The complete 10-row system for the r+ obligation: 8 nonneg
        rows (-C·x <= M0), marked[m0] and empty[s0]."""
        net, obligations = self.composite()
        ob = next(o for o in obligations if o.action == "r+")
        equation, system = obligation_system(net, ob, ["s0"])
        by_tag = {c.tag: c for c in system.constraints}
        assert len(system.constraints) == 10
        for place, row in self.ROWS.items():
            nonneg = by_tag[f"nonneg[{place}]"]
            assert nonneg.relation == "<="
            assert nonneg.coeffs == tuple(-c for c in row)
            assert nonneg.rhs == Fraction(self.M0.get(place, 0))
        marked = by_tag["marked[m0]"]
        assert marked.relation == "<="
        assert marked.coeffs == tuple(-c for c in self.ROWS["m0"])
        assert marked.rhs == Fraction(0)  # M0(m0) - 1
        empty = by_tag["empty[s0]"]
        assert empty.relation == "<="
        assert empty.coeffs == self.ROWS["s0"]
        assert empty.rhs == Fraction(-1)  # -M0(s0)

    def test_mirrored_rows_make_every_obligation_infeasible(self):
        """m_i and s_i have identical incidence rows, so M(m_i) -
        M(s_i) is invariant under every firing; marked[m_i] with
        empty[s_i] forces it >= 1 while it is identically 0 — a
        one-line contradiction.  The engine must prove all four
        obligations safe without any trap refinement."""
        net, obligations = self.composite()
        outcome = symbolic_receptiveness(net, obligations)
        assert outcome.conclusive
        assert len(outcome.safe) == 4
        assert not outcome.failed
        assert outcome.stats["refinement_rounds"] == 0

    def test_all_coefficients_are_exact_rationals(self):
        net, obligations = self.composite()
        for ob in obligations:
            for choice in failure_miss_choices(ob):
                _, system = obligation_system(net, ob, choice)
                for constraint in system.constraints:
                    assert all(
                        isinstance(c, Fraction) for c in constraint.coeffs
                    )
                    assert isinstance(constraint.rhs, Fraction)


class TestTranslatorEncoding:
    """Fig 5 + Fig 7: sender||translator obligations, checked against
    the presets read off the figures' handshake expansions."""

    def composite(self):
        composite, obligations = compose_with_obligations(
            sender(), translator()
        )
        return composite.net, obligations

    def test_obligation_census(self):
        """24 obligations; the falling output edges (a0-, a1-, b0-,
        b1-) each offer two consumer alternatives (the translator's
        free-choice receive branches), everything else one."""
        _, obligations = self.composite()
        assert len(obligations) == 24
        by_action: dict[str, list] = {}
        for ob in obligations:
            by_action.setdefault(ob.action, []).append(ob)
        two_way = {
            action
            for action, obs_ in by_action.items()
            if any(len(ob.consumer_presets) == 2 for ob in obs_)
        }
        assert two_way == {"a0-", "a1-", "b0-", "b1-"}

    def test_a0_minus_miss_choices(self):
        """Hand-read from Fig 7: a0- may be awaited in either receive
        branch, so each producer preset has two one-place misses."""
        _, obligations = self.composite()
        targets = [ob for ob in obligations if ob.action == "a0-"]
        assert {frozenset(ob.producer_preset) for ob in targets} == {
            frozenset({"rec_h1"}),
            frozenset({"reset_h1"}),
        }
        for ob in targets:
            assert failure_miss_choices(ob) == [
                ["rx_rec_h1"],
                ["rx_reset_h1"],
            ]

    def test_system_shape(self):
        """Every choice system is |places| nonneg rows + one marked row
        per producer-preset place + one empty row per missed place."""
        net, obligations = self.composite()
        for ob in obligations[:6]:
            for choice in failure_miss_choices(ob):
                equation, system = obligation_system(net, ob, choice)
                expected = (
                    len(equation.places)
                    + len(ob.producer_preset)
                    + len(set(choice))
                )
                assert system.num_constraints() == expected

    def test_no_failures_and_no_unsound_verdicts(self):
        """The composite is receptive (established by the explicit
        engines), so the symbolic engine may prove obligations safe or
        leave them undecided — but must never report a failure."""
        net, obligations = self.composite()
        outcome = symbolic_receptiveness(net, obligations)
        assert not outcome.failed
        assert len(outcome.safe) + len(outcome.undecided) == 24
        assert len(outcome.safe) >= 16  # the rising-edge obligations


class TestChannelBankClosedForm:
    """Component restriction keeps per-obligation systems at the
    closed-form constant size of ONE channel — 8 places, 4 transitions,
    10 constraints — no matter how many channels the bank has."""

    def bank(self, channels):
        from repro.core.circuit import compose_many

        masters = compose_many(
            [
                four_phase_master(req=f"r{i}", ack=f"a{i}", name=f"m{i}")
                for i in range(channels)
            ]
        )
        slaves = compose_many(
            [
                four_phase_slave(req=f"r{i}", ack=f"a{i}", name=f"s{i}")
                for i in range(channels)
            ]
        )
        composite, obligations = compose_with_obligations(masters, slaves)
        return composite.net, obligations

    @pytest.mark.parametrize("channels", [1, 2, 4])
    def test_constant_system_size(self, channels):
        net, obligations = self.bank(channels)
        assert len(obligations) == 4 * channels
        for ob in obligations:
            for choice in failure_miss_choices(ob):
                equation, system = obligation_system(net, ob, choice)
                assert len(equation.places) == 8
                assert len(equation.variables) == 4
                assert system.num_constraints() == 10

    def test_bank_conclusively_safe(self):
        net, obligations = self.bank(4)
        outcome = symbolic_receptiveness(net, obligations)
        assert outcome.conclusive
        assert len(outcome.safe) == 16
        assert not outcome.failed


class TestUnboundedCorpusNet:
    """The proven-unbounded corpus source must never be called bounded,
    and its state-equation systems must stay exact."""

    def net(self):
        return load_stg(f"{CORPUS}/mcc_unbounded_source.net").net

    def test_bounded_is_not_concluded(self):
        from repro.petri.symbolic import bounded

        verdict = bounded(self.net())
        assert not (verdict.conclusive and verdict.holds)

    def test_state_equation_stays_feasible(self):
        """Unbounded source: every target count on the growing place is
        state-equation feasible, so unreachability is never concluded
        for it."""
        from repro.petri.symbolic import predicate_unreachable

        net = self.net()
        growing = [
            p
            for p in net.places
            if any(
                p in t.postset and p not in t.preset
                for t in net.transitions.values()
            )
        ]
        assert growing
        verdict = predicate_unreachable(net, marked=[growing[0]])
        assert not verdict.conclusive
