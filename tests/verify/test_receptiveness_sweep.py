"""Exhaustive cross-validation of the receptiveness methods.

Sweeps every cyclic ordering of the four handshake events on each side
of a two-wire interface (master drives r, slave drives a).  For every
composition that is a live marked graph, the structural (Theorem 5.7)
and exhaustive (reachability) methods must return the same verdict and
the same failing actions.
"""

from itertools import permutations

import pytest

from repro.petri.classify import is_marked_graph, marked_graph_is_live
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import Stg
from repro.verify.receptiveness import (
    check_receptiveness,
    compose_with_obligations,
)

EVENTS = ("r+", "a+", "r-", "a-")


def cyclic_module(order: tuple[str, ...], driver_of_r: bool, name: str) -> Stg:
    """A 4-place cycle firing the events in the given order.

    Orders that break rise/fall alternation per signal are still valid
    nets (consistency is a separate concern); receptiveness only looks
    at markings.
    """
    net = PetriNet(name)
    for index, event in enumerate(order):
        net.add_transition(
            {f"{name}{index}"},
            event,
            {f"{name}{(index + 1) % len(order)}"},
        )
    net.set_initial(Marking({f"{name}0": 1}))
    if driver_of_r:
        return Stg(net, inputs={"a"}, outputs={"r"})
    return Stg(net, inputs={"r"}, outputs={"a"})


def canonical_orders() -> list[tuple[str, ...]]:
    """All distinct cyclic orderings of the four events starting at r+."""
    rest = [e for e in EVENTS if e != "r+"]
    return [("r+",) + p for p in permutations(rest)]


@pytest.mark.parametrize("master_order", canonical_orders())
@pytest.mark.parametrize("slave_order", canonical_orders())
def test_methods_agree(master_order, slave_order):
    master = cyclic_module(master_order, driver_of_r=True, name="m")
    slave = cyclic_module(slave_order, driver_of_r=False, name="s")
    composite, _ = compose_with_obligations(master, slave)
    in_class = is_marked_graph(composite.net) and marked_graph_is_live(
        composite.net
    )
    if not in_class:
        # Outside Theorem 5.7's class the auto mode must fall back to
        # the exhaustive method (the structural characterisation of
        # reachable markings only holds for live marked graphs).
        report = check_receptiveness(master, slave)
        assert report.method == "reachability"
        return
    structural = check_receptiveness(master, slave, method="structural")
    exhaustive = check_receptiveness(master, slave, method="reachability")
    assert structural.is_receptive() == exhaustive.is_receptive(), (
        master_order,
        slave_order,
    )
    assert structural.failing_actions() == exhaustive.failing_actions()


def test_sweep_contains_both_verdicts():
    """Sanity: the sweep space includes receptive and non-receptive
    compositions (identical orders are receptive; an inverted slave
    is not)."""
    aligned = check_receptiveness(
        cyclic_module(("r+", "a+", "r-", "a-"), True, "m"),
        cyclic_module(("r+", "a+", "r-", "a-"), False, "s"),
        method="reachability",
    )
    assert aligned.is_receptive()
    skewed = check_receptiveness(
        cyclic_module(("r+", "r-", "a+", "a-"), True, "m"),
        cyclic_module(("r+", "a+", "r-", "a-"), False, "s"),
        method="reachability",
    )
    assert not skewed.is_receptive()
