.model master
.inputs a
.outputs r
.graph
r+ m1
a+ m2
r- m3
a- m0
m0 r+
m1 a+
m2 r-
m3 a-
.marking { m0 }
.end
