"""Regenerate the model-derived half of the checked-in mini-corpus.

Run from the repository root::

    PYTHONPATH=src python tests/corpus/_generate.py

The hand-written ``mcc_*`` instances in this directory are NOT touched
— they exercise foreign-file parsing (no ``# cip:`` / toolspecific
carriers) and deliberately odd shapes (deadlocks, non-safe markings,
unicode names, a proven-unbounded source), so they are maintained by
hand.  The leading underscore keeps this file out of corpus discovery.
"""

from __future__ import annotations

import sys
from pathlib import Path

CORPUS = Path(__file__).parent


def channel_bank(channels: int):
    from repro.core.circuit import compose_many
    from repro.models.library import four_phase_master, four_phase_slave

    modules = []
    for index in range(channels):
        modules.append(
            four_phase_master(req=f"r{index}", ack=f"a{index}", name=f"m{index}")
        )
        modules.append(
            four_phase_slave(req=f"r{index}", ack=f"a{index}", name=f"s{index}")
        )
    bank = compose_many(modules)
    bank.net.name = f"channel_bank_{channels}"
    return bank


def pipeline_chain(stages: int):
    from repro.core.circuit import compose_many
    from repro.models.library import pipeline

    chain = compose_many(pipeline(stages))
    chain.net.name = f"pipeline_{stages}"
    return chain


def main() -> int:
    from repro.io.formats import save_stg
    from repro.models.library import four_phase_master
    from repro.models.protocol_translator import (
        inconsistent_sender,
        receiver,
        sender,
        translator,
    )

    figures = {
        "fig5_sender": sender(),
        "fig6_receiver": receiver(),
        "fig7_translator": translator(),
        "fig8_inconsistent": inconsistent_sender(),
    }
    families = {
        "channel_bank_1": channel_bank(1),
        "channel_bank_2": channel_bank(2),
        "pipeline_2": pipeline_chain(2),
        "pipeline_3": pipeline_chain(3),
    }
    for stem, stg in {**figures, **families}.items():
        save_stg(stg, str(CORPUS / f"{stem}.pnml"))
        save_stg(stg, str(CORPUS / f"{stem}.net"))
    # One instance each in the two pre-existing formats, so the corpus
    # sweep covers all four loaders.
    save_stg(sender(), str(CORPUS / "fig5_sender.json"))
    save_stg(four_phase_master(), str(CORPUS / "four_phase_master.g"))
    print(f"wrote {2 * len(figures) + 2 * len(families) + 2} files to {CORPUS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
