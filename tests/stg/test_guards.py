"""Tests for boolean guards and their three-valued evaluation."""

import pytest

from repro.stg.guards import FALSE, TRUE, And, Not, Or, lit, parse_guard


class TestEvaluation:
    def test_literal(self):
        guard = lit("a")
        assert guard.eval({"a": 1}) is True
        assert guard.eval({"a": 0}) is False
        assert guard.eval({"a": None}) is None

    def test_not(self):
        guard = ~lit("a")
        assert guard.eval({"a": 0}) is True
        assert guard.eval({"a": None}) is None

    def test_and_short_circuits_false_over_unknown(self):
        guard = lit("a") & lit("b")
        assert guard.eval({"a": 0, "b": None}) is False
        assert guard.eval({"a": 1, "b": None}) is None
        assert guard.eval({"a": 1, "b": 1}) is True

    def test_or_short_circuits_true_over_unknown(self):
        guard = lit("a") | lit("b")
        assert guard.eval({"a": 1, "b": None}) is True
        assert guard.eval({"a": 0, "b": None}) is None
        assert guard.eval({"a": 0, "b": 0}) is False

    def test_constants(self):
        assert TRUE.eval({}) is True
        assert FALSE.eval({}) is False

    def test_signals_collected(self):
        guard = (lit("a") & ~lit("b")) | lit("c")
        assert guard.signals() == {"a", "b", "c"}

    def test_missing_signal_reads_unknown(self):
        assert lit("zz").eval({}) is None


class TestParser:
    def test_single_literal(self):
        assert parse_guard("DATA") == lit("DATA")

    def test_negation_and_conjunction(self):
        guard = parse_guard("DATA & !STROBE")
        assert guard == And(lit("DATA"), Not(lit("STROBE")))

    def test_precedence_and_binds_tighter(self):
        guard = parse_guard("a & b | c")
        assert guard == Or(And(lit("a"), lit("b")), lit("c"))

    def test_parentheses(self):
        guard = parse_guard("a & (b | c)")
        assert guard == And(lit("a"), Or(lit("b"), lit("c")))

    def test_constants(self):
        assert parse_guard("1") == TRUE
        assert parse_guard("0") == FALSE

    def test_whitespace_tolerated(self):
        assert parse_guard("  a   &b ") == And(lit("a"), lit("b"))

    def test_trailing_junk_rejected(self):
        with pytest.raises(ValueError):
            parse_guard("a b")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ValueError):
            parse_guard("(a & b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_guard("")

    def test_str_roundtrip(self):
        guard = parse_guard("a & !b | c")
        assert parse_guard(str(guard)) == guard
