"""Tests for the Stg wrapper: validation, composition, hiding, renaming."""

import pytest

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.guards import lit
from repro.stg.stg import (
    Stg,
    compose,
    hide_signals,
    hide_signals_to_epsilon,
    rename_signal,
    signal_actions,
)
from repro.verify.language import languages_equal


def handshake_requester(name: str = "req_side") -> Stg:
    """4-phase master: r+ a+ r- a- cyclically; r output, a input."""
    net = PetriNet(name)
    net.add_transition({"p0"}, "r+", {"p1"})
    net.add_transition({"p1"}, "a+", {"p2"})
    net.add_transition({"p2"}, "r-", {"p3"})
    net.add_transition({"p3"}, "a-", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return Stg(net, inputs={"a"}, outputs={"r"})


def handshake_responder(name: str = "ack_side") -> Stg:
    """4-phase slave: sees r as input, drives a."""
    net = PetriNet(name)
    net.add_transition({"q0"}, "r+", {"q1"})
    net.add_transition({"q1"}, "a+", {"q2"})
    net.add_transition({"q2"}, "r-", {"q3"})
    net.add_transition({"q3"}, "a-", {"q0"})
    net.set_initial(Marking({"q0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


class TestBasics:
    def test_signals_union(self):
        stg = handshake_requester()
        assert stg.signals() == {"r", "a"}

    def test_used_signals(self):
        stg = handshake_requester()
        stg.inputs.add("unused")
        assert stg.used_signals() == {"r", "a"}

    def test_input_output_action_classification(self):
        stg = handshake_requester()
        assert stg.is_output_action("r+")
        assert stg.is_input_action("a-")
        assert not stg.is_input_action("r+")

    def test_signal_transitions(self):
        stg = handshake_requester()
        assert [t.action for t in stg.signal_transitions("r")] == ["r+", "r-"]

    def test_default_initial_values_zero(self):
        assert handshake_requester().level("r") == 0

    def test_add_with_guard(self):
        stg = handshake_requester()
        t = stg.add({"p0"}, "x+", {"p1"}, guard=lit("a"))
        stg.outputs.add("x")
        assert stg.net.guard_of("p0", t.tid) == lit("a")

    def test_classical_report(self):
        report = handshake_requester().classical_report()
        assert report == {
            "strongly_connected": True,
            "live": True,
            "safe": True,
            "classical_labels": True,
        }
        assert handshake_requester().is_classical()

    def test_toggle_label_not_classical(self):
        stg = handshake_requester()
        stg.add({"p0"}, "r~", {"p1"})
        assert not stg.classical_report()["classical_labels"]


class TestValidation:
    def test_valid_stg_passes(self):
        handshake_requester().validate()

    def test_overlapping_io_rejected(self):
        stg = handshake_requester()
        stg.inputs.add("r")
        with pytest.raises(ValueError):
            stg.validate()

    def test_undeclared_signal_rejected(self):
        stg = handshake_requester()
        stg.add({"p0"}, "ghost+", {"p1"})
        with pytest.raises(ValueError):
            stg.validate()

    def test_guard_on_undeclared_signal_rejected(self):
        stg = handshake_requester()
        stg.add({"p0"}, "r+", {"p1"}, guard=lit("ghost"))
        with pytest.raises(ValueError):
            stg.validate()


class TestCompose:
    def test_io_resolution(self):
        composite = compose(handshake_requester(), handshake_responder())
        assert composite.outputs == {"r", "a"}
        assert composite.inputs == set()

    def test_common_outputs_rejected(self):
        with pytest.raises(ValueError):
            compose(handshake_requester(), handshake_requester("other"))

    def test_initial_value_mismatch_rejected(self):
        left = handshake_requester()
        right = handshake_responder()
        right.initial_values["r"] = 1
        with pytest.raises(ValueError):
            compose(left, right)

    def test_composition_synchronizes_handshake(self):
        composite = compose(handshake_requester(), handshake_responder())
        from repro.petri.traces import bounded_language

        language = bounded_language(composite.net, 4)
        assert ("r+", "a+", "r-", "a-") in language
        assert ("a+",) not in language

    def test_unmatched_common_signal_event_impossible(self):
        """The responder lacks r- handling: that event becomes impossible
        in the composition (rendez-vous has no partner)."""
        left = handshake_requester()
        right = handshake_responder()
        stripped = PetriNet("partial")
        stripped.add_transition({"q0"}, "r+", {"q1"})
        stripped.add_transition({"q1"}, "a+", {"q0"})
        stripped.set_initial(Marking({"q0": 1}))
        right = Stg(stripped, inputs={"r"}, outputs={"a"})
        composite = compose(left, right)
        assert not composite.net.transitions_with_action("r-")

    def test_signal_actions_helper(self):
        actions = {"r+", "r-", "a+", "eps"}
        assert signal_actions(actions, {"r"}) == {"r+", "r-"}


class TestHideRename:
    def test_hide_output_signal(self):
        composite = compose(handshake_requester(), handshake_responder())
        hidden = hide_signals(composite, {"a"})
        assert hidden.signals() == {"r"}
        assert not signal_actions(hidden.net.actions, {"a"})
        # Visible behaviour unchanged: r+ r- cycle.
        reference = PetriNet("ref")
        reference.add_transition({"x0"}, "r+", {"x1"})
        reference.add_transition({"x1"}, "r-", {"x0"})
        reference.set_initial(Marking({"x0": 1}))
        assert languages_equal(hidden.net, reference)

    def test_hiding_inputs_rejected(self):
        stg = handshake_requester()
        with pytest.raises(ValueError):
            hide_signals(stg, {"a"})

    def test_hide_to_epsilon_preserves_structure(self):
        composite = compose(handshake_requester(), handshake_responder())
        relabeled = hide_signals_to_epsilon(composite, {"a"})
        assert len(relabeled.net.transitions) == len(composite.net.transitions)
        assert "a" not in relabeled.signals()

    def test_rename_signal(self):
        stg = handshake_requester()
        renamed = rename_signal(stg, "r", "req")
        assert renamed.outputs == {"req"}
        assert [t.action for t in renamed.signal_transitions("req")] == [
            "req+",
            "req-",
        ]

    def test_rename_collision_rejected(self):
        with pytest.raises(ValueError):
            rename_signal(handshake_requester(), "r", "a")
