"""Tests for automatic CSC resolution."""

import pytest

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.coding import coding_report
from repro.stg.csc_resolution import (
    CscResolutionError,
    insert_in_series,
    resolve_csc,
)
from repro.stg.stg import Stg, hide_signals_to_epsilon
from repro.verify.language import languages_equal


def csc_broken_stg() -> Stg:
    """The canonical VME-style conflict: code (b=0, i=1) occurs both
    where b must rise and where it must stay low."""
    net = PetriNet("csc_broken")
    net.add_transition({"q0"}, "i+", {"q1"})
    net.add_transition({"q1"}, "b+", {"q2"})
    net.add_transition({"q2"}, "i-", {"q3"})
    net.add_transition({"q3"}, "b-", {"q4"})
    net.add_transition({"q4"}, "i+", {"q5"})
    net.add_transition({"q5"}, "i-", {"q0"})
    net.set_initial(Marking({"q0": 1}))
    return Stg(net, inputs={"i"}, outputs={"b"})


class TestInsertInSeries:
    def test_series_split(self):
        net = PetriNet()
        net.add_transition({"p"}, "a+", {"q"}, tid=0)
        net.set_initial(Marking({"p": 1}))
        inserted = insert_in_series(net, 0, "x+")
        assert len(inserted.transitions) == 2
        assert inserted.transitions[0].action == "a+"
        # a+ now feeds the middle place; x+ produces q.
        from repro.petri.traces import bounded_language

        assert bounded_language(inserted, 2) == {(), ("a+",), ("a+", "x+")}

    def test_guard_preserved(self):
        from repro.stg.guards import lit

        net = PetriNet()
        net.add_transition({"p"}, "a+", {"q"}, tid=0)
        net.set_guard("p", 0, lit("g"))
        inserted = insert_in_series(net, 0, "x+")
        assert inserted.guard_of("p", 0) == lit("g")


class TestResolveCsc:
    def test_vme_controller_is_repaired(self):
        """The canonical case: one CSC conflict, one inserted signal."""
        from repro.models.library import vme_bus_controller

        broken = vme_bus_controller()
        assert not coding_report(broken).csc
        repaired, insertion = resolve_csc(broken)
        report = coding_report(repaired)
        assert report.synthesizable()
        assert insertion.signal == "csc0"
        assert "csc0" in repaired.internals

    def test_visible_language_preserved(self):
        from repro.models.library import vme_bus_controller

        broken = vme_bus_controller()
        repaired, _ = resolve_csc(broken)
        erased = hide_signals_to_epsilon(repaired, {"csc0"})
        assert languages_equal(erased.net, broken.net)

    def test_repaired_stg_synthesizes(self):
        from repro.models.library import vme_bus_controller
        from repro.synth.implementation import synthesize, verify_implementation

        repaired, _ = resolve_csc(vme_bus_controller())
        implementation = synthesize(repaired)
        assert verify_implementation(repaired, implementation).ok
        # The state signal has a real function now.
        assert "csc0" in implementation.functions

    def test_window_effect_defeats_series_insertion(self):
        """The tight two-signal toy conflict cannot be fixed by series
        insertion of a single signal: every insertion creates a
        'window' state whose code collides again.  The resolver must
        report that honestly rather than return a broken net."""
        with pytest.raises(CscResolutionError):
            resolve_csc(csc_broken_stg())

    def test_already_clean_stg_untouched(self):
        from repro.models.library import four_phase_slave

        clean = four_phase_slave()
        repaired, insertion = resolve_csc(clean)
        assert insertion.rise_after == -1
        assert repaired.net.stats() == clean.net.stats()

    def test_existing_signal_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_csc(csc_broken_stg(), signal="b")

    def test_candidate_budget(self):
        with pytest.raises(CscResolutionError):
            resolve_csc(csc_broken_stg(), max_candidates=1)

    def test_inconsistent_stg_rejected(self):
        net = PetriNet()
        net.add_transition({"p0"}, "z+", {"p1"})
        net.add_transition({"p1"}, "z+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        with pytest.raises(CscResolutionError, match="consistency"):
            resolve_csc(Stg(net, outputs={"z"}))
