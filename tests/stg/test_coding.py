"""Tests for the coding-report API."""

from repro.models.library import four_phase_slave, muller_c_element
from repro.models.protocol_translator import sender
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.coding import (
    coding_report,
    csc_conflicts,
    is_synthesizable,
    usc_conflicts,
)
from repro.stg.stg import Stg


def usc_broken_stg() -> Stg:
    """Two handshake rounds through different places: same codes twice,
    same outputs — USC broken, CSC held."""
    net = PetriNet("double_loop")
    net.add_transition({"p0"}, "i+", {"p1"})
    net.add_transition({"p1"}, "i-", {"p2"})
    net.add_transition({"p2"}, "j+", {"p3"})
    net.add_transition({"p3"}, "j-", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return Stg(net, inputs={"i", "j"})


def csc_broken_stg() -> Stg:
    """Code (b=0, i=1) occurs both where b must rise and where it must
    stay low."""
    net = PetriNet("csc_broken")
    net.add_transition({"q0"}, "i+", {"q1"})
    net.add_transition({"q1"}, "b+", {"q2"})
    net.add_transition({"q2"}, "i-", {"q3"})
    net.add_transition({"q3"}, "b-", {"q4"})
    net.add_transition({"q4"}, "i+", {"q5"})
    net.add_transition({"q5"}, "i-", {"q6"})
    net.set_initial(Marking({"q0": 1}))
    return Stg(net, inputs={"i"}, outputs={"b"})


class TestCodingReport:
    def test_clean_design(self):
        report = coding_report(four_phase_slave())
        assert report.synthesizable()
        assert report.usc and report.csc and report.persistent
        assert "USC" in str(report)

    def test_c_element(self):
        assert is_synthesizable(muller_c_element())

    def test_case_study_sender(self):
        report = coding_report(sender())
        assert report.consistent

    def test_usc_only_violation(self):
        report = coding_report(usc_broken_stg())
        assert not report.usc
        assert report.csc  # same (empty) output sets
        assert report.usc_conflicts > 0
        assert report.csc_conflicts == 0
        assert "USC broken" in str(report)

    def test_csc_violation(self):
        report = coding_report(csc_broken_stg())
        assert not report.csc
        assert not report.synthesizable()

    def test_conflict_listings(self):
        assert usc_conflicts(usc_broken_stg())
        assert not csc_conflicts(usc_broken_stg())
        assert csc_conflicts(csc_broken_stg())

    def test_csc_conflicts_align_with_next_state_failure(self):
        """Where the report says CSC broken, next-state extraction must
        raise, and vice versa."""
        import pytest

        from repro.synth.nextstate import CodingError, next_state_tables

        with pytest.raises(CodingError):
            next_state_tables(csc_broken_stg())
        next_state_tables(four_phase_slave())  # no raise