"""Tests for encoded state graphs: consistency, coding, guards, 3-valued
semantics of the generalized signal transitions."""

import pytest

from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.stg.guards import lit
from repro.stg.state_graph import build_state_graph, is_consistent
from repro.stg.stg import Stg


def stg_of(net: PetriNet, **kwargs) -> Stg:
    return Stg(net, **kwargs)


def four_phase() -> Stg:
    net = PetriNet("hs")
    net.add_transition({"p0"}, "r+", {"p1"})
    net.add_transition({"p1"}, "a+", {"p2"})
    net.add_transition({"p2"}, "r-", {"p3"})
    net.add_transition({"p3"}, "a-", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return Stg(net, inputs={"a"}, outputs={"r"})


class TestConsistency:
    def test_four_phase_is_consistent(self):
        graph = build_state_graph(four_phase())
        assert graph.is_consistent()
        assert graph.num_states() == 4

    def test_double_rise_is_inconsistent(self):
        net = PetriNet()
        net.add_transition({"p0"}, "r+", {"p1"})
        net.add_transition({"p1"}, "r+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, outputs={"r"})
        graph = build_state_graph(stg)
        assert not graph.is_consistent()
        assert "already 1" in graph.violations[0].reason

    def test_fall_from_zero_is_inconsistent(self):
        net = PetriNet()
        net.add_transition({"p0"}, "r-", {"p1"})
        net.set_initial(Marking({"p0": 1}))
        assert not is_consistent(Stg(net, outputs={"r"}))

    def test_initial_value_fixes_consistency(self):
        net = PetriNet()
        net.add_transition({"p0"}, "r-", {"p1"})
        net.add_transition({"p1"}, "r+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, outputs={"r"}, initial_values={"r": 1})
        assert is_consistent(stg)

    def test_epsilon_does_not_change_encoding(self):
        net = PetriNet()
        net.add_transition({"p0"}, EPSILON, {"p1"})
        net.add_transition({"p1"}, "r+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, outputs={"r"})
        graph = build_state_graph(stg)
        # After eps, r+ fires; then eps again would redo r+ -> violation.
        assert not graph.is_consistent()


class TestGeneralizedKinds:
    def test_toggle_alternates(self):
        net = PetriNet()
        net.add_transition({"p0"}, "t~", {"p0"})
        # self-loop place: the toggle repeats forever, flipping the value.
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, outputs={"t"})
        graph = build_state_graph(stg)
        assert graph.is_consistent()
        assert graph.num_states() == 2  # encodings 0 and 1

    def test_unstable_then_stable_branches(self):
        net = PetriNet()
        net.add_transition({"p0"}, "d#", {"p1"})
        net.add_transition({"p1"}, "d=", {"p2"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, outputs={"d"})
        graph = build_state_graph(stg)
        finals = {
            s.encoding for s in graph.states if s.marking == Marking({"p2": 1})
        }
        assert finals == {(0,), (1,)}

    def test_stable_on_definite_value_is_noop(self):
        net = PetriNet()
        net.add_transition({"p0"}, "d=", {"p1"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, outputs={"d"}, initial_values={"d": 1})
        graph = build_state_graph(stg)
        assert {s.encoding for s in graph.states} == {(1,)}

    def test_dont_care_is_noop(self):
        net = PetriNet()
        net.add_transition({"p0"}, "d*", {"p1"})
        net.set_initial(Marking({"p0": 1}))
        graph = build_state_graph(Stg(net, outputs={"d"}))
        assert {s.encoding for s in graph.states} == {(0,)}

    def test_rise_resolves_unknown(self):
        net = PetriNet()
        net.add_transition({"p0"}, "d+", {"p1"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, outputs={"d"}, initial_values={"d": None})
        graph = build_state_graph(stg)
        assert graph.is_consistent()
        assert (1,) in {s.encoding for s in graph.states}


class TestGuards:
    def guarded_stg(self, initial_d):
        net = PetriNet()
        stg = Stg(net, inputs=set(), outputs={"r", "d"})
        net.add_transition({"p0"}, "r+", {"p1"}, tid=0)
        net.set_guard("p0", 0, lit("d"))
        net.set_initial(Marking({"p0": 1}))
        stg.initial_values["d"] = initial_d
        return stg

    def test_guard_blocks_when_false(self):
        graph = build_state_graph(self.guarded_stg(0))
        assert graph.num_states() == 1  # r+ never fires

    def test_guard_allows_when_true(self):
        graph = build_state_graph(self.guarded_stg(1))
        assert graph.num_states() == 2

    def test_guard_blocks_on_unknown(self):
        """An X level blocks a guarded transition — the paper's 'wait for
        the line to stabilize' discipline."""
        graph = build_state_graph(self.guarded_stg(None))
        assert graph.num_states() == 1

    def test_guard_after_stabilization(self):
        net = PetriNet()
        stg = Stg(net, outputs={"r"}, inputs={"d"})
        net.add_transition({"p0"}, "d=", {"p1"}, tid=0)
        net.add_transition({"p1"}, "r+", {"p2"}, tid=1)
        net.set_guard("p1", 1, lit("d"))
        net.add_transition({"p1"}, "r-", {"p3"}, tid=2)
        net.set_guard("p1", 2, ~lit("d"))
        net.set_initial(Marking({"p0": 1}))
        stg.initial_values["d"] = None
        stg.initial_values["r"] = 1
        graph = build_state_graph(stg)
        # d stabilizes to 1 -> r+ inconsistent (r already 1)? r starts 1,
        # so guard d chooses r+: violation; instead verify the branch on
        # !d fires r- and the d branch records the violation.
        markings = {s.marking for s in graph.states}
        assert Marking({"p3": 1}) in markings
        assert graph.violations  # the d=1 branch tried r+ at r=1


class TestCoding:
    def test_usc_violation_detected(self):
        """Two distinct markings with identical encodings: a+ a- loop
        traversed twice through different places."""
        net = PetriNet()
        net.add_transition({"p0"}, "a+", {"p1"})
        net.add_transition({"p1"}, "a-", {"p2"})
        net.add_transition({"p2"}, "a+", {"p3"})
        net.add_transition({"p3"}, "a-", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, outputs={"a"})
        graph = build_state_graph(stg)
        assert not graph.has_usc()

    def test_four_phase_has_usc_and_csc(self):
        graph = build_state_graph(four_phase())
        assert graph.has_usc()
        assert graph.has_csc()

    def test_csc_violation_distinguished_from_usc(self):
        """USC broken but CSC held: the repeated encoding states enable
        the same outputs (inputs differ instead)."""
        net = PetriNet()
        net.add_transition({"p0"}, "i+", {"p1"})
        net.add_transition({"p1"}, "i-", {"p2"})
        net.add_transition({"p2"}, "j+", {"p3"})
        net.add_transition({"p3"}, "j-", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, inputs={"i", "j"}, outputs=set())
        graph = build_state_graph(stg)
        assert not graph.has_usc()
        assert graph.has_csc()

    def test_output_persistency_of_four_phase(self):
        graph = build_state_graph(four_phase())
        assert graph.output_persistency_violations() == []

    def test_output_persistency_violation(self):
        """Output b+ enabled, then disabled by input i+ firing first."""
        net = PetriNet()
        net.add_transition({"p0"}, "b+", {"p1"})
        net.add_transition({"p0"}, "i+", {"p2"})
        net.set_initial(Marking({"p0": 1}))
        stg = Stg(net, inputs={"i"}, outputs={"b"})
        graph = build_state_graph(stg)
        violations = graph.output_persistency_violations()
        assert any(output == "b+" and action == "i+" for _, output, action in violations)
