"""Tests for signal-event labels and parsing."""

import pytest

from repro.petri.net import EPSILON
from repro.stg.signals import (
    EdgeKind,
    dont_care,
    event,
    fall,
    is_signal_action,
    parse_event,
    rise,
    signal_of,
    signals_of_net_actions,
    stable,
    toggle,
    unstable,
)


class TestConstructors:
    def test_all_kinds(self):
        assert rise("a") == "a+"
        assert fall("req") == "req-"
        assert toggle("rec") == "rec~"
        assert stable("DATA") == "DATA="
        assert unstable("DATA") == "DATA#"
        assert dont_care("d") == "d*"

    def test_event_accepts_kind_or_suffix(self):
        assert event("a", EdgeKind.RISE) == "a+"
        assert event("a", "+") == "a+"


class TestParsing:
    @pytest.mark.parametrize(
        "action,signal,kind",
        [
            ("a+", "a", EdgeKind.RISE),
            ("a-", "a", EdgeKind.FALL),
            ("rec~", "rec", EdgeKind.TOGGLE),
            ("DATA=", "DATA", EdgeKind.STABLE),
            ("DATA#", "DATA", EdgeKind.UNSTABLE),
            ("d*", "d", EdgeKind.DONTCARE),
        ],
    )
    def test_roundtrip(self, action, signal, kind):
        parsed = parse_event(action)
        assert parsed.signal == signal
        assert parsed.kind == kind
        assert parsed.action == action

    def test_epsilon_is_not_a_signal(self):
        assert not is_signal_action(EPSILON)
        assert signal_of(EPSILON) is None

    def test_channel_events_are_not_signals(self):
        assert not is_signal_action("c!+")  # send followed by suffix: nonsense
        assert signal_of("c!") is None

    def test_bare_name_is_not_a_signal_action(self):
        assert not is_signal_action("abc")
        with pytest.raises(ValueError):
            parse_event("abc")

    def test_suffix_only_rejected(self):
        assert not is_signal_action("+")

    def test_signals_of_net_actions(self):
        actions = {"a+", "a-", "b~", EPSILON, "chan!"}
        assert signals_of_net_actions(actions) == {"a", "b"}
