"""Tests for dead-transition removal (Section 5.2 cleanup)."""

import pytest

from repro.algebra.compose import parallel
from repro.algebra.dead import (
    dead_transition_ids,
    fireable_transitions_marked_graph,
    remove_dead_transitions,
    remove_unreachable_places,
    trim,
)
from repro.algebra.operators import sequence_net
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.verify.language import languages_equal


def net_with_dead_branch() -> PetriNet:
    net = PetriNet("half_dead")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, "b", {"p0"})
    net.add_transition({"never"}, "z", {"zz"})
    net.set_initial(Marking({"p0": 1}))
    return net


class TestMarkedGraphFixpoint:
    def test_all_fireable_in_marked_cycle(self):
        net = sequence_net(["a", "b"], cyclic=True)
        assert fireable_transitions_marked_graph(net) == {0, 1}

    def test_token_free_cycle_is_dead(self):
        net = PetriNet()
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "b", {"p0"})
        net.add_transition({"q0"}, "c", {"q1"})
        net.add_transition({"q1"}, "d", {"q0"})
        net.set_initial(Marking({"p0": 1}))
        assert fireable_transitions_marked_graph(net) == {0, 1}

    def test_rejects_non_marked_graph(self):
        net = PetriNet()
        net.add_transition({"s"}, "a", {"x"})
        net.add_transition({"s"}, "b", {"y"})
        with pytest.raises(ValueError):
            fireable_transitions_marked_graph(net)

    def test_fixpoint_agrees_with_reachability(self):
        net = PetriNet()
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "b", {"p2"})
        net.add_transition({"p2"}, "c", {"p0"})
        net.set_initial(Marking({"p1": 1}))
        from repro.petri.reachability import ReachabilityGraph

        fired = ReachabilityGraph(net).fired_tids()
        assert fireable_transitions_marked_graph(net) == fired


class TestRemoval:
    def test_dead_ids(self):
        assert dead_transition_ids(net_with_dead_branch()) == {2}

    def test_removal_preserves_language(self):
        net = net_with_dead_branch()
        cleaned = remove_dead_transitions(net)
        assert len(cleaned.transitions) == 2
        assert languages_equal(net, cleaned)

    def test_unreachable_places_dropped(self):
        net = net_with_dead_branch()
        cleaned = remove_unreachable_places(net)
        assert "never" not in cleaned.places
        assert "zz" not in cleaned.places
        assert languages_equal(net, cleaned)

    def test_trim_after_composition(self):
        """Composing (a.b)* with a one-shot a leaves the loop's second
        'a' iteration dead-ended but keeps language equality."""
        left = sequence_net(["a", "b"], cyclic=True, name="L")
        right = sequence_net(["a"], name="R")
        composed = parallel(left, right)
        cleaned = trim(composed)
        assert languages_equal(composed, cleaned)
        assert len(cleaned.transitions) <= len(composed.transitions)

    def test_trim_on_clean_net_is_identity_like(self):
        net = sequence_net(["a", "b"], cyclic=True)
        cleaned = trim(net)
        assert cleaned.stats() == net.stats()
        assert languages_equal(net, cleaned)

    def test_synchronization_cross_product_cleanup(self):
        """Fused synchronization duplicates that can never fire are
        removed (the Section 5.2 motivation)."""
        left = PetriNet("L")
        left.add_transition({"p"}, "s", {"p2"})
        left.add_transition({"p2"}, "x", {"p"})
        left.set_initial(Marking({"p": 1}))
        right = PetriNet("R")
        right.add_transition({"q"}, "s", {"q2"})
        right.add_transition({"q3"}, "s", {"q4"})  # never enabled
        right.add_transition({"q2"}, "y", {"q"})
        right.set_initial(Marking({"q": 1}))
        composed = parallel(left, right)
        assert len(composed.transitions_with_action("s")) == 2
        cleaned = remove_dead_transitions(composed)
        assert len(cleaned.transitions_with_action("s")) == 1
