"""Tests for root unwinding and choice (Defs 4.5-4.6, Prop 4.4, Fig 1)."""

import pytest

from repro.algebra.choice import choice, root_unwinding
from repro.algebra.operators import sequence_net
from repro.models.paper_figures import fig1_left, fig1_naive_choice, fig1_right
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.traces import bounded_language
from repro.verify.language import languages_equal


class TestRootUnwinding:
    def test_language_preserved(self):
        net = fig1_left()
        unwound, _ = root_unwinding(net)
        assert languages_equal(net, unwound)

    def test_original_initial_places_unmarked(self):
        net = fig1_left()
        unwound, eta = root_unwinding(net)
        assert unwound.initial.marked_places() == set(eta)
        for copy, original in eta.items():
            assert unwound.initial[original] == 0
            assert unwound.initial[copy] == net.initial[original]

    def test_initial_transitions_duplicated(self):
        net = fig1_left()
        unwound, _ = root_unwinding(net)
        # 'a' was initially enabled -> duplicated; 'b' was not.
        assert len(unwound.transitions_with_action("a")) == 2
        assert len(unwound.transitions_with_action("b")) == 1

    def test_loop_does_not_reenter_root(self):
        """After a.b the token is on the *original* place; the duplicated
        root copy is never re-marked."""
        unwound, eta = root_unwinding(fig1_left())
        language = bounded_language(unwound, 6)
        assert ("a", "b", "a", "b") in language

    def test_joint_preset_duplication(self):
        """A preset of two initial places yields one variant per
        non-empty subset of copies (see the generalization note)."""
        net = PetriNet()
        net.add_transition({"x", "y"}, "go", {"z"})
        net.set_initial(Marking({"x": 1, "y": 1}))
        unwound, _ = root_unwinding(net)
        assert len(unwound.transitions_with_action("go")) == 4
        assert languages_equal(net, unwound)

    def test_mixed_preset_variant_keeps_language(self):
        """The counterexample to the printed Def 4.5: a self-loop 'a' on
        p0 followed by 'b' consuming both initial places.  The trace a.b
        requires the mixed original/copy variant of 'b'."""
        net = PetriNet()
        net.add_transition({"p0"}, "a", {"p0"})
        net.add_transition({"p0", "p1"}, "b", {"p0"})
        net.set_initial(Marking({"p0": 1, "p1": 1}))
        unwound, _ = root_unwinding(net)
        assert languages_equal(net, unwound)
        combined = choice(net, fig1_right())
        depth = 4
        assert bounded_language(combined, depth) == bounded_language(
            net, depth
        ) | bounded_language(fig1_right(), depth)

    def test_unsafe_marking_rejected(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        net.set_initial(Marking({"p": 2}))
        with pytest.raises(ValueError):
            root_unwinding(net)


class TestChoiceProposition44:
    def test_union_of_languages_simple(self):
        left = sequence_net(["a", "b"], name="L")
        right = sequence_net(["c", "d"], name="R")
        combined = choice(left, right)
        depth = 4
        assert bounded_language(combined, depth) == bounded_language(
            left, depth
        ) | bounded_language(right, depth)

    def test_union_of_languages_cyclic_operands(self):
        """The Figure 1 case: both operands are loops through their
        initial places."""
        left, right = fig1_left(), fig1_right()
        combined = choice(left, right)
        depth = 6
        assert bounded_language(combined, depth) == bounded_language(
            left, depth
        ) | bounded_language(right, depth)

    def test_naive_choice_is_wrong(self):
        """The construction Figure 1 warns against admits a.b.c, which is
        in neither operand's language — root unwinding excludes it."""
        naive = fig1_naive_choice()
        assert ("a", "b", "c") in bounded_language(naive, 3)
        correct = choice(fig1_left(), fig1_right())
        assert ("a", "b", "c") not in bounded_language(correct, 3)

    def test_choice_with_shared_labels(self):
        left = sequence_net(["a", "x"], name="L")
        right = sequence_net(["a", "y"], name="R")
        combined = choice(left, right)
        language = bounded_language(combined, 2)
        assert ("a", "x") in language
        assert ("a", "y") in language

    def test_choice_is_commutative_up_to_language(self):
        left, right = fig1_left(), fig1_right()
        assert languages_equal(choice(left, right), choice(right, left))

    def test_choice_with_nil_is_identity_on_language(self):
        from repro.algebra.operators import nil

        net = sequence_net(["a", "b"])
        assert languages_equal(choice(net, nil()), net)

    def test_choice_of_identical_nets(self):
        net = fig1_left()
        assert languages_equal(choice(net, net.copy()), net)

    def test_concurrent_initial_transitions_stay_concurrent(self):
        """A choice operand with two concurrent initially-enabled
        transitions must retain the concurrency inside the chosen branch."""
        left = PetriNet("conc")
        left.add_transition({"x"}, "a", {"x2"})
        left.add_transition({"y"}, "b", {"y2"})
        left.set_initial(Marking({"x": 1, "y": 1}))
        right = sequence_net(["c"], name="R")
        combined = choice(left, right)
        depth = 3
        assert bounded_language(combined, depth) == bounded_language(
            left, depth
        ) | bounded_language(right, depth)
