"""Tests for behaviour-preserving reductions (all checked against exact
DFA language equivalence)."""

from repro.algebra.reductions import (
    contract_epsilon_transitions,
    fuse_series_places,
    reduce,
    remove_noop_transitions,
)
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.verify.language import languages_equal


def eps_padded_cycle() -> PetriNet:
    net = PetriNet("padded")
    net.add_transition({"p0"}, "a", {"p1"})
    net.add_transition({"p1"}, EPSILON, {"p2"})
    net.add_transition({"p2"}, "b", {"p3"})
    net.add_transition({"p3"}, EPSILON, {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return net


class TestNoopRemoval:
    def test_noop_dropped(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"q"})
        net.add_transition({"p"}, EPSILON, {"p"})
        net.set_initial(Marking({"p": 1}))
        cleaned = remove_noop_transitions(net)
        assert len(cleaned.transitions) == 1
        assert languages_equal(net, cleaned)

    def test_visible_selfloop_kept(self):
        net = PetriNet()
        net.add_transition({"p"}, "a", {"p"})
        net.set_initial(Marking({"p": 1}))
        assert len(remove_noop_transitions(net).transitions) == 1


class TestEpsilonContraction:
    def test_series_epsilons_removed(self):
        net = eps_padded_cycle()
        cleaned = contract_epsilon_transitions(net)
        assert not cleaned.transitions_with_action(EPSILON)
        assert languages_equal(net, cleaned)
        assert len(cleaned.places) == 2

    def test_epsilon_in_choice_contracted_correctly(self):
        """eps competing with a visible action: contraction must keep
        the choice semantics (the committed branch)."""
        net = PetriNet()
        net.add_transition({"s"}, EPSILON, {"t1"})
        net.add_transition({"s"}, "a", {"t2"})
        net.add_transition({"t1"}, "b", {"s"})
        net.set_initial(Marking({"s": 1}))
        cleaned = contract_epsilon_transitions(net)
        assert not cleaned.transitions_with_action(EPSILON)
        assert languages_equal(net, cleaned)

    def test_self_looping_epsilon_left_alone(self):
        net = PetriNet()
        net.add_transition({"p", "s"}, EPSILON, {"q", "s"})
        net.add_transition({"q"}, "a", {"p"})
        net.set_initial(Marking({"p": 1, "s": 1}))
        cleaned = contract_epsilon_transitions(net)
        assert cleaned.transitions_with_action(EPSILON)
        assert languages_equal(net, cleaned)

    def test_fork_epsilon_left_alone(self):
        """eps forks (1 -> n places) are structural and kept."""
        net = PetriNet()
        net.add_transition({"s"}, EPSILON, {"x", "y"})
        net.add_transition({"x"}, "a", {"x2"})
        net.add_transition({"y"}, "b", {"y2"})
        net.set_initial(Marking({"s": 1}))
        cleaned = contract_epsilon_transitions(net)
        assert languages_equal(net, cleaned)


class TestFuseSeries:
    def test_expansion_chains_shrink(self):
        from repro.core.expansion import expand_transition

        net = PetriNet()
        t = net.add_transition({"p"}, "c!", {"q"})
        net.add_transition({"q"}, "z+", {"p"})
        net.set_initial(Marking({"p": 1}))
        expanded = expand_transition(
            net, t.tid, [["r+"], ["a+"], ["r-"], ["a-"]]
        )
        fused = fuse_series_places(expanded)
        assert languages_equal(expanded, fused)
        assert len(fused.places) <= len(expanded.places)


class TestReduceFixpoint:
    def test_reduce_is_idempotent(self):
        net = eps_padded_cycle()
        once = reduce(net)
        twice = reduce(once)
        assert once.stats() == twice.stats()

    def test_reduce_preserves_language(self):
        net = eps_padded_cycle()
        assert languages_equal(net, reduce(net))

    def test_reduce_cleans_derived_net(self):
        """Reducing a composition-with-dead-branches output."""
        from repro.algebra.compose import parallel
        from repro.algebra.operators import sequence_net

        left = sequence_net(["a", "b"], cyclic=True, name="L")
        right = sequence_net(["a"], name="R")
        composed = parallel(left, right)
        reduced = reduce(composed)
        assert languages_equal(composed, reduced)
        assert len(reduced.transitions) <= len(composed.transitions)

    def test_reduce_on_simplified_translator_keeps_language(self):
        """End-to-end: the Figure 9(b) derived net reduces cleanly."""
        from repro.models.protocol_translator import simplified_translator

        derived = simplified_translator()
        reduced = reduce(derived.net)
        assert languages_equal(derived.net, reduced)
        assert len(reduced.places) <= len(derived.net.places)
