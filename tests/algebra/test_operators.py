"""Tests for nil, prefix and rename (Definitions 4.2-4.4, Props 4.1-4.3)."""

import pytest

from repro.algebra.operators import nil, prefix, rename, sequence_net
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.traces import bounded_language, rename_language


class TestNil:
    def test_proposition_41_no_nonempty_traces(self):
        assert bounded_language(nil(), 5) == {()}

    def test_nil_is_a_single_marked_place(self):
        net = nil()
        assert len(net.places) == 1
        assert not net.transitions
        assert net.initial.total() == 1


class TestPrefix:
    def test_proposition_42_language(self):
        """L(a.N) = {eps, a} | {a}.L(N)."""
        inner = sequence_net(["b", "c"])
        prefixed = prefix(inner, "a")
        expected = {()} | {
            ("a",) + trace for trace in bounded_language(inner, 4)
        }
        assert bounded_language(prefixed, 5) == expected

    def test_prefix_of_nil(self):
        assert bounded_language(prefix(nil(), "a"), 3) == {(), ("a",)}

    def test_prefix_restores_all_initial_places(self):
        net = PetriNet()
        net.add_transition({"x", "y"}, "go", {"z"})
        net.set_initial(Marking({"x": 1, "y": 1}))
        prefixed = prefix(net, "a")
        assert bounded_language(prefixed, 2) == {(), ("a",), ("a", "go")}

    def test_unsafe_marking_rejected_by_default(self):
        net = PetriNet()
        net.add_transition({"p"}, "b", {"q"})
        net.set_initial(Marking({"p": 2}))
        with pytest.raises(ValueError):
            prefix(net, "a")

    def test_generalized_prefix_keeps_multiplicity(self):
        """The sentinel construction preserves a 2-token initial marking:
        after 'a', 'b' can fire twice."""
        net = PetriNet()
        net.add_transition({"p"}, "b", {"q"})
        net.set_initial(Marking({"p": 2}))
        prefixed = prefix(net, "a", allow_unsafe=True)
        language = bounded_language(prefixed, 3)
        assert ("a", "b", "b") in language
        assert ("b",) not in language

    def test_generalized_prefix_blocks_chained_firing(self):
        """Transitions only reachable after an initial transition are
        still blocked transitively before 'a' fires."""
        net = PetriNet()
        net.add_transition({"p"}, "b", {"q"})
        net.add_transition({"q"}, "c", {"p"})
        net.set_initial(Marking({"p": 2}))
        prefixed = prefix(net, "a", allow_unsafe=True)
        language = bounded_language(prefixed, 4)
        assert ("a", "b", "c", "b") in language
        assert all(trace[0] == "a" for trace in language if trace)

    def test_prefix_name_records_operator(self):
        assert prefix(nil("N"), "a").name == "a.N"


class TestRename:
    def test_proposition_43_language_homomorphism(self):
        net = sequence_net(["a", "b", "a"])
        renamed = rename(net, {"a": "x"})
        assert bounded_language(renamed, 4) == rename_language(
            bounded_language(net, 4), {"a": "x"}
        )

    def test_rename_updates_alphabet(self):
        net = sequence_net(["a", "b"])
        renamed = rename(net, {"a": "x"})
        assert renamed.actions == {"x", "b"}

    def test_rename_set_of_labels(self):
        net = sequence_net(["a", "b", "c"])
        renamed = rename(net, {"a": "x", "c": "x"})
        assert bounded_language(renamed, 3) == {
            (),
            ("x",),
            ("x", "b"),
            ("x", "b", "x"),
        }

    def test_rename_can_merge_labels(self):
        """Renaming b->a creates genuine nondeterminism on 'a'."""
        net = PetriNet()
        net.add_transition({"s"}, "a", {"t1"})
        net.add_transition({"s"}, "b", {"t2"})
        net.set_initial(Marking({"s": 1}))
        renamed = rename(net, {"b": "a"})
        assert bounded_language(renamed, 1) == {(), ("a",)}
        assert len(renamed.transitions_with_action("a")) == 2

    def test_rename_preserves_guards(self):
        net = PetriNet()
        t = net.add_transition({"p"}, "a", {"q"})
        net.set_guard("p", t.tid, "G")
        renamed = rename(net, {"a": "x"})
        assert renamed.guard_of("p", t.tid) == "G"

    def test_identity_rename_is_noop_on_language(self):
        net = sequence_net(["a", "b"])
        assert bounded_language(rename(net, {}), 3) == bounded_language(net, 3)


class TestSequenceNet:
    def test_acyclic_sequence(self):
        net = sequence_net(["a", "b"])
        assert bounded_language(net, 3) == {(), ("a",), ("a", "b")}

    def test_cyclic_sequence_loops(self):
        net = sequence_net(["a", "b"], cyclic=True)
        assert ("a", "b", "a") in bounded_language(net, 3)

    def test_empty_sequence_is_nil_like(self):
        assert bounded_language(sequence_net([]), 3) == {()}
