"""Property-based validation of the algebra's laws on random nets.

Each property is the exact statement of a proposition or theorem from
Section 4 of the paper, checked on randomly generated nets via exact
(DFA-based) or bounded-depth language comparison.
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.algebra.choice import choice, root_unwinding
from repro.algebra.compose import parallel
from repro.algebra.hide import hide_transition
from repro.algebra.operators import prefix, rename
from repro.petri.net import EPSILON
from repro.petri.traces import (
    bounded_language,
    parallel_compose_languages,
    rename_language,
)
from repro.verify.language import distinguishing_trace, languages_equal

from tests.strategies import bounded_nets, hidable_transition_ids, safe_initial_nets

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)


@RELAXED
@given(net=safe_initial_nets(), action=st.sampled_from(["x", "a"]))
def test_proposition_42_prefix_language(net, action):
    """L(a.N) = {eps} | {a}.L(N) at bounded depth."""
    depth = 4
    prefixed = prefix(net, action)
    expected = {()} | {
        (action,) + trace for trace in bounded_language(net, depth - 1)
    }
    assert bounded_language(prefixed, depth) == expected


@RELAXED
@given(net=bounded_nets(), source=st.sampled_from(["a", "b"]))
def test_proposition_43_rename_homomorphism(net, source):
    """L(rename(N, b->c)) = rename(L(N), b->c)."""
    depth = 4
    renamed = rename(net, {source: "zz"})
    assert bounded_language(renamed, depth) == rename_language(
        bounded_language(net, depth), {source: "zz"}
    )


@RELAXED
@given(net=safe_initial_nets())
def test_root_unwinding_preserves_language(net):
    unwound, _ = root_unwinding(net)
    assert languages_equal(net, unwound, max_states=20_000)


@RELAXED
@given(left=safe_initial_nets(max_transitions=3), right=safe_initial_nets(max_transitions=3))
def test_proposition_44_choice_is_language_union(left, right):
    """L(N1 + N2) = L(N1) | L(N2) at bounded depth."""
    depth = 4
    right = right.renamed_places({p: f"r_{p}" for p in right.places})
    combined = choice(left, right)
    assert bounded_language(combined, depth) == bounded_language(
        left, depth
    ) | bounded_language(right, depth)


@RELAXED
@given(left=bounded_nets(max_transitions=3), right=bounded_nets(max_transitions=3))
def test_theorem_45_parallel_composition(left, right):
    """L(N1 || N2) = L(N1) || L(N2) at bounded depth."""
    depth = 4
    right = right.renamed_places({p: f"r_{p}" for p in right.places})
    composed = parallel(left, right)
    direct = bounded_language(composed, depth)
    via_traces = parallel_compose_languages(
        bounded_language(left, depth),
        bounded_language(right, depth),
        left.actions,
        right.actions,
        max_length=depth,
    )
    assert direct == via_traces


@RELAXED
@given(net=bounded_nets(), fast_path=st.booleans())
def test_theorem_47_hide_is_trace_projection(net, fast_path):
    """L(hide(N, t)) equals L(N) with the hidden transition silent —
    exact DFA comparison, one supported transition contracted."""
    candidates = hidable_transition_ids(net, "u")
    assume(candidates)
    tid = candidates[0]
    # Rename the single contracted transition to a unique label so only
    # it is treated as silent on the reference side.
    marker = "__hidden__"
    reference = net.copy()
    old = reference.transitions[tid]
    reference.remove_transition(tid)
    reference.add_transition(old.preset, marker, old.postset, tid=tid)
    reference.actions.add(marker)
    contracted = hide_transition(reference, tid, fast_path=fast_path)
    assert languages_equal(
        contracted, reference, silent={marker, EPSILON}, max_states=50_000
    ), distinguishing_trace(
        contracted, reference, silent={marker, EPSILON}, max_states=50_000
    )


@RELAXED
@given(net=bounded_nets(max_transitions=4))
def test_hide_to_epsilon_matches_contraction(net):
    """hide' (relabel to eps) and hide (contraction) have the same
    visible language whenever contraction is applicable."""
    from repro.algebra.hide import hide, hide_to_epsilon

    candidates = hidable_transition_ids(net, "u")
    all_u = [t.tid for t in net.transitions_with_action("u")]
    assume(all_u and set(all_u) == set(candidates))
    # Multiple hidden transitions may interact after the first
    # contraction; restrict to the single-transition case, which is what
    # the pointwise law governs.
    assume(len(all_u) == 1)
    assert languages_equal(
        hide(net, "u"), hide_to_epsilon(net, "u"), max_states=50_000
    )


@RELAXED
@given(left=bounded_nets(max_transitions=3), right=bounded_nets(max_transitions=3))
def test_parallel_commutative(left, right):
    right = right.renamed_places({p: f"r_{p}" for p in right.places})
    assert languages_equal(
        parallel(left, right), parallel(right, left), max_states=50_000
    )


@RELAXED
@given(net=safe_initial_nets(max_transitions=3))
def test_choice_idempotent_on_language(net):
    """L(N + N) = L(N)."""
    other = net.renamed_places({p: f"r_{p}" for p in net.places})
    assert languages_equal(choice(net, other), net, max_states=50_000)
