"""Algebra-law regressions exercised through the on-the-fly engine.

Section 4's laws were originally validated via eager DFA construction
(:mod:`tests.algebra.test_laws_property`).  These tests re-state the
load-bearing ones — Theorem 4.5 (composition), Theorem 4.7 (hiding) and
Proposition 4.6 (order-independence of contraction) — against the lazy
product engine, so a regression in the demand-driven path cannot hide
behind the oracle.
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.algebra.compose import parallel
from repro.algebra.hide import DivergenceError, hide, hide_to_epsilon
from repro.petri.net import EPSILON, PetriNet
from repro.petri.marking import Marking
from repro.petri.product import (
    LazyStateSpace,
    SynchronousProduct,
    compare_languages,
)
from repro.verify.language import languages_equal

from tests.strategies import (
    bounded_nets,
    hidable_transition_ids,
    supported_hide,
)

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)


def _product_net(left: PetriNet, right: PetriNet) -> PetriNet:
    """The reachable synchronous product as a one-token state machine."""
    return SynchronousProduct(
        LazyStateSpace(left),
        LazyStateSpace(right),
        sync=left.actions & right.actions,
    ).to_net()


class TestTheorem45:
    """L(N1 || N2) = L(N1) || L(N2): the net-level composition and the
    lazy product of the component state spaces have the same language."""

    @RELAXED
    @given(
        left=bounded_nets(max_transitions=3),
        right=bounded_nets(max_transitions=3),
    )
    def test_on_random_nets(self, left, right):
        right = right.renamed_places({p: f"r_{p}" for p in right.places})
        assert languages_equal(
            parallel(left, right),
            _product_net(left, right),
            engine="onthefly",
            max_states=50_000,
        )

    def test_on_fig7_translator_chain(self):
        from repro.models.protocol_translator import sender, translator

        left, right = sender().net, translator().net
        composed = parallel(left, right)
        result = compare_languages(composed, _product_net(left, right))
        assert result.verdict, result.counterexample


class TestTheorem47:
    """L(hide(N, a)) = hide(L(N), a): contraction equals making the
    label silent — checked by the lazy pair walk with per-side silent
    sets (the contracted label is silent on the reference side only)."""

    @RELAXED
    @given(net=bounded_nets(max_transitions=4))
    def test_on_random_nets(self, net):
        candidates = hidable_transition_ids(net, "u")
        all_u = [t.tid for t in net.transitions_with_action("u")]
        assume(all_u and set(all_u) == set(candidates))
        # Contracting one "u" can push a remaining one outside the
        # supported fragment; supported_hide re-checks every step.
        contracted = supported_hide(net, "u")
        assume(contracted is not None)
        result = compare_languages(
            contracted,
            net,
            silent=(EPSILON,),
            silent2={"u", EPSILON},
            max_states=50_000,
        )
        assert result.verdict, result.counterexample

    def test_deterministic_regression(self):
        net = PetriNet("seq")
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "u", {"p2"})
        net.add_transition({"p2"}, "b", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        result = compare_languages(
            hide(net, "u"), net, silent=(), silent2={"u"}
        )
        assert result.verdict, result.counterexample

    def test_hide_matches_epsilon_relabeling(self):
        net = PetriNet("seq")
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "u", {"p2"})
        net.add_transition({"p2"}, "b", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        assert compare_languages(
            hide(net, "u"), hide_to_epsilon(net, "u")
        ).verdict


class TestProposition46:
    """Contraction is order-independent: hiding a set of labels in any
    order yields the same visible language."""

    @RELAXED
    @given(net=bounded_nets(max_transitions=4), data=st.data())
    def test_randomized_hide_orders(self, net, data):
        # Restrict to labels whose every transition the set-based
        # contraction supports (the paper's formalism has no arc
        # weights; see hidable_transition_ids) — and, because one
        # contraction can push a later one outside the supported
        # fragment, re-check that at every intermediate step via
        # supported_hide rather than only on the original net.
        labels = []
        for label in ("u", "c"):
            tids = [t.tid for t in net.transitions_with_action(label)]
            if tids and set(tids) == set(hidable_transition_ids(net, label)):
                labels.append(label)
        assume(len(labels) == 2)
        order = data.draw(st.permutations(labels), label="hide order")

        def hide_in_order(first, second):
            step = supported_hide(net, first)
            return supported_hide(step, second) if step is not None else None

        one_way = hide_in_order(order[0], order[1])
        other_way = hide_in_order(order[1], order[0])
        assume(one_way is not None and other_way is not None)
        result = compare_languages(one_way, other_way, max_states=50_000)
        assert result.verdict, result.counterexample

    def test_deterministic_two_label_case(self):
        net = PetriNet("pipe")
        net.add_transition({"p0"}, "a", {"p1"})
        net.add_transition({"p1"}, "u", {"p2"})
        net.add_transition({"p2"}, "c", {"p3"})
        net.add_transition({"p3"}, "b", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        forward = hide(hide(net, "u"), "c")
        backward = hide(hide(net, "c"), "u")
        assert compare_languages(forward, backward).verdict
        assert compare_languages(forward, net, silent2={"u", "c"}).verdict
