"""Tests for parallel composition (Def 4.7, Thm 4.5, Props 5.2-5.4, Fig 2)."""

from repro.algebra.compose import parallel, parallel_many
from repro.algebra.operators import sequence_net
from repro.models.paper_figures import fig2_left, fig2_right
from repro.petri.analysis import analyze, is_live
from repro.petri.classify import is_marked_graph
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.traces import (
    bounded_language,
    parallel_compose_languages,
)
from repro.verify.language import languages_equal


def assert_theorem_45(left: PetriNet, right: PetriNet, depth: int) -> None:
    """Bounded-depth form of Theorem 4.5: L(N1||N2) = L(N1)||L(N2)."""
    composed = parallel(left, right)
    direct = bounded_language(composed, depth)
    via_traces = parallel_compose_languages(
        bounded_language(left, depth),
        bounded_language(right, depth),
        left.actions,
        right.actions,
        max_length=depth,
    )
    assert direct == via_traces


class TestTheorem45:
    def test_fig2_example(self):
        assert_theorem_45(fig2_left(), fig2_right(), depth=6)

    def test_disjoint_alphabets_full_shuffle(self):
        assert_theorem_45(
            sequence_net(["a", "b"], name="L"),
            sequence_net(["x", "y"], name="R"),
            depth=4,
        )

    def test_identical_alphabets_lockstep(self):
        assert_theorem_45(
            sequence_net(["a", "b"], name="L"),
            sequence_net(["a", "b"], name="R"),
            depth=4,
        )

    def test_incompatible_orders_deadlock(self):
        """a.b composed with b.a over common {a, b} can do nothing."""
        left = sequence_net(["a", "b"], name="L")
        right = sequence_net(["b", "a"], name="R")
        composed = parallel(left, right)
        assert bounded_language(composed, 5) == {()}

    def test_multiple_transitions_same_label_all_pairs_fused(self):
        left = PetriNet("L")
        left.add_transition({"p"}, "a", {"q1"})
        left.add_transition({"p"}, "a", {"q2"})
        left.set_initial(Marking({"p": 1}))
        right = sequence_net(["a"], name="R")
        composed = parallel(left, right)
        assert len(composed.transitions_with_action("a")) == 2
        assert_theorem_45(left, right, depth=3)


class TestStructure:
    def test_fig2_composed_structure(self):
        """Fig 2: places are the disjoint union; 'a' transitions are fused
        pairwise (2 left x 2 right = 4), others kept."""
        composed = parallel(fig2_left(), fig2_right())
        assert len(composed.places) == 2 + 4
        # fused 'a': 1x2=2 ; kept: b, c, d, e.
        assert len(composed.transitions_with_action("a")) == 2
        assert len(composed.transitions) == 2 + 4

    def test_alphabet_is_union(self):
        composed = parallel(fig2_left(), fig2_right())
        assert composed.actions == {"a", "b", "c", "d", "e"}

    def test_initial_marking_is_union(self):
        composed = parallel(fig2_left(), fig2_right())
        assert composed.initial.total() == 2

    def test_common_label_without_partner_transition_disappears(self):
        """A label in both alphabets but with transitions only on one side
        can never synchronize: no transition remains."""
        left = sequence_net(["a"], name="L")
        right = PetriNet("R", actions={"a"})
        right.add_place("r", tokens=1)
        composed = parallel(left, right)
        assert not composed.transitions_with_action("a")

    def test_synchronize_on_override(self):
        """Restricting the synchronization set interleaves the rest."""
        left = sequence_net(["a", "s"], name="L")
        right = sequence_net(["a", "s"], name="R")
        composed = parallel(left, right, synchronize_on={"s"})
        language = bounded_language(composed, 2)
        assert ("a", "a") in language  # two private 'a's interleave

    def test_guards_remain_attached(self):
        left = PetriNet("L")
        t = left.add_transition({"p"}, "s", {"q"})
        left.set_guard("p", t.tid, "G1")
        left.set_initial(Marking({"p": 1}))
        right = sequence_net(["s"], name="R")
        composed = parallel(left, right)
        fused = composed.transitions_with_action("s")[0]
        assert composed.guard_of("p", fused.tid) == "G1"


class TestClosureProperties:
    def test_proposition_52_safety_closed(self):
        composed = parallel(fig2_left(), fig2_right())
        assert analyze(composed).safe

    def test_proposition_53_liveness_not_closed(self):
        """Both operands live, composition deadlocked: (a.b)* and (b.a)*
        each wait for the other's first action."""
        left = sequence_net(["a", "b"], cyclic=True, name="L")
        right = sequence_net(["b", "a"], cyclic=True, name="R")
        assert is_live(left) and is_live(right)
        composed = parallel(left, right)
        assert is_live(composed) is False
        assert bounded_language(composed, 4) == {()}

    def test_proposition_54_marked_graphs_closed_under_parallel(self):
        left = sequence_net(["a", "x"], cyclic=True, name="L")
        right = sequence_net(["a", "y"], cyclic=True, name="R")
        assert is_marked_graph(left) and is_marked_graph(right)
        assert is_marked_graph(parallel(left, right))

    def test_composition_is_associative_up_to_language(self):
        a = sequence_net(["x", "s"], name="A")
        b = sequence_net(["s", "y"], name="B")
        c = sequence_net(["y", "z"], name="C")
        assert languages_equal(
            parallel(parallel(a, b), c), parallel(a, parallel(b, c))
        )

    def test_composition_is_commutative_up_to_language(self):
        assert languages_equal(
            parallel(fig2_left(), fig2_right()),
            parallel(fig2_right(), fig2_left()),
        )

    def test_parallel_many(self):
        nets = [sequence_net([c], name=c.upper()) for c in "abc"]
        composed = parallel_many(nets)
        assert composed.actions == {"a", "b", "c"}
        assert ("c", "b", "a") in bounded_language(composed, 3)
