"""Tests for hiding as net contraction (Def 4.10, Prop 4.6, Thm 4.7, Fig 3)."""

import pytest

from repro.algebra.hide import (
    DivergenceError,
    hide,
    hide_to_epsilon,
    hide_transition,
)
from repro.algebra.operators import sequence_net
from repro.models.paper_figures import (
    FIG3_HIDDEN_LABEL,
    fig3_general,
    fig3_marked_graph,
    fig3_simple_chain,
)
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.petri.traces import bounded_language, hide_language
from repro.verify.language import distinguishing_trace, languages_equal


def assert_theorem_47(net: PetriNet, label: str, fast_path: bool = True) -> None:
    """Exact form of Theorem 4.7: L(hide(N, a)) = hide(L(N), a),
    via DFA equivalence with `label` silent on the original net."""
    hidden = hide(net, label, fast_path=fast_path)
    original = net.copy()
    assert languages_equal(hidden, original, silent={label, EPSILON}), (
        f"hide({net.name}, {label}) disagrees with trace projection:"
        f" {distinguishing_trace(hidden, original, silent={label, EPSILON})}"
    )


class TestTheorem47:
    def test_fig3_general_net(self):
        assert_theorem_47(fig3_general(), FIG3_HIDDEN_LABEL)

    def test_fig3_general_net_no_fast_path(self):
        assert_theorem_47(fig3_general(), FIG3_HIDDEN_LABEL, fast_path=False)

    def test_fig3_marked_graph(self):
        assert_theorem_47(fig3_marked_graph(), FIG3_HIDDEN_LABEL)

    def test_fig3_simple_chain_fast_path(self):
        assert_theorem_47(fig3_simple_chain(), FIG3_HIDDEN_LABEL)

    def test_hide_every_label_of_general_net_one_at_a_time(self):
        net = fig3_general()
        for label in sorted(net.used_actions()):
            assert_theorem_47(net, label)

    def test_hide_label_with_multiple_transitions(self):
        net = PetriNet("multi")
        net.add_transition({"s0"}, "u", {"s1"})
        net.add_transition({"s1"}, "a", {"s2"})
        net.add_transition({"s2"}, "u", {"s3"})
        net.add_transition({"s3"}, "b", {"s0"})
        net.set_initial(Marking({"s0": 1}))
        assert_theorem_47(net, "u")

    def test_hide_in_conflict_with_visible_action(self):
        """Hidden transition competes with a visible one for the token."""
        net = PetriNet("conflict")
        net.add_transition({"s"}, "u", {"q"})
        net.add_transition({"s"}, "a", {"r"})
        net.add_transition({"q"}, "b", {"s"})
        net.set_initial(Marking({"s": 1}))
        assert_theorem_47(net, "u")

    def test_hide_concurrent_with_visible_action(self):
        net = PetriNet("concurrent")
        net.add_transition({"x"}, "u", {"x2"})
        net.add_transition({"y"}, "a", {"y2"})
        net.add_transition({"x2", "y2"}, "b", {"x", "y"})
        net.set_initial(Marking({"x": 1, "y": 1}))
        assert_theorem_47(net, "u")

    def test_hide_nonsafe_net(self):
        """The algebra is not restricted to safe nets: two tokens flow
        through the hidden transition."""
        net = PetriNet("two_tokens")
        net.add_transition({"p"}, "u", {"q"})
        net.add_transition({"q"}, "a", {"r"})
        net.set_initial(Marking({"p": 2}))
        assert_theorem_47(net, "u")

    def test_hide_branching_outputs(self):
        """Hidden transition's output places feed conflicting choices."""
        net = PetriNet("branching")
        net.add_transition({"p"}, "u", {"q1", "q2"})
        net.add_transition({"q1"}, "a", {"r1"})
        net.add_transition({"q1"}, "b", {"r2"})
        net.add_transition({"q2"}, "c", {"r3"})
        net.set_initial(Marking({"p": 1}))
        assert_theorem_47(net, "u")


class TestMechanics:
    def test_hidden_label_removed_from_alphabet(self):
        hidden = hide(fig3_general(), FIG3_HIDDEN_LABEL)
        assert FIG3_HIDDEN_LABEL not in hidden.actions

    def test_preset_places_removed(self):
        net = fig3_general()
        hidden = hide(net, FIG3_HIDDEN_LABEL)
        assert "p1" not in hidden.places
        assert "p2" not in hidden.places

    def test_successors_kept_and_duplicated(self):
        net = fig3_general()
        hidden = hide(net, FIG3_HIDDEN_LABEL, fast_path=False)
        # g consumed q1: kept (real q1 token) + duplicate (product places).
        assert len(hidden.transitions_with_action("g")) == 2

    def test_fast_path_collapses_places(self):
        net = fig3_simple_chain()
        hidden = hide(net, FIG3_HIDDEN_LABEL)
        # p and q merged: 3 places originally, minus one.
        assert len(hidden.places) == 2
        assert len(hidden.transitions) == 2

    def test_self_loop_rejected_as_divergence(self):
        net = PetriNet("diverging")
        net.add_transition({"p"}, "u", {"p", "q"})
        net.set_initial(Marking({"p": 1}))
        with pytest.raises(DivergenceError):
            hide(net, "u")

    def test_source_transition_rejected(self):
        net = PetriNet("source")
        t = net.add_transition(set(), "u", {"q"})
        with pytest.raises(ValueError):
            hide_transition(net, t.tid)

    def test_hide_action_without_transitions_only_trims_alphabet(self):
        net = sequence_net(["a"])
        net.actions.add("ghost")
        hidden = hide(net, "ghost")
        assert "ghost" not in hidden.actions
        assert languages_equal(hidden, net)

    def test_proposition_46_order_independence(self):
        """Hiding all 'u' transitions yields the same language regardless
        of contraction order (we check language, the semantic content)."""
        net = PetriNet("two_hidden")
        net.add_transition({"s0"}, "u", {"a1"}, tid=0)
        net.add_transition({"s0"}, "u", {"b1"}, tid=1)
        net.add_transition({"a1"}, "a", {"s0"}, tid=2)
        net.add_transition({"b1"}, "b", {"s0"}, tid=3)
        net.set_initial(Marking({"s0": 1}))
        first_order = hide_transition(net, 0, fast_path=False)
        first_order = hide(first_order, "u", fast_path=False)
        second_order = hide_transition(net, 1, fast_path=False)
        second_order = hide(second_order, "u", fast_path=False)
        assert languages_equal(first_order, second_order)
        assert_theorem_47(net, "u")

    def test_initial_tokens_copied_to_product_places(self):
        net = PetriNet("marked_preset")
        net.add_transition({"p"}, "u", {"q1", "q2"}, tid=0)
        net.add_transition({"q1"}, "a", {"r"}, tid=1)
        net.add_transition({"q2"}, "b", {"r2"}, tid=2)
        net.set_initial(Marking({"p": 1}))
        contracted = hide_transition(net, 0, fast_path=False)
        # One product row (p x {q1,q2}) with one token each.
        assert contracted.initial.total() == 2

    def test_guard_propagated_to_duplicate_successor(self):
        net = PetriNet("guarded")
        net.add_transition({"p"}, "u", {"q"}, tid=0)
        net.add_transition({"q"}, "a", {"r"}, tid=1)
        net.add_transition({"x"}, "k", {"q"}, tid=2)  # defeat the fast path
        net.add_transition({"p"}, "c", {"y"}, tid=3)
        net.set_initial(Marking({"p": 1, "x": 1}))
        net.set_guard("p", 0, "G")
        contracted = hide_transition(net, 0, fast_path=False)
        guards = set(contracted.input_guards.values())
        assert "G" in guards


class TestHidePrime:
    def test_relabels_to_epsilon(self):
        net = fig3_general()
        relabeled = hide_to_epsilon(net, FIG3_HIDDEN_LABEL)
        assert not relabeled.transitions_with_action(FIG3_HIDDEN_LABEL)
        assert relabeled.transitions_with_action(EPSILON)

    def test_visible_language_matches_contraction(self):
        net = fig3_general()
        assert languages_equal(
            hide_to_epsilon(net, FIG3_HIDDEN_LABEL),
            hide(net, FIG3_HIDDEN_LABEL),
        )

    def test_structure_is_preserved(self):
        net = fig3_general()
        relabeled = hide_to_epsilon(net, FIG3_HIDDEN_LABEL)
        assert relabeled.places == net.places
        assert len(relabeled.transitions) == len(net.transitions)
