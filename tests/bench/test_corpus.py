"""The corpus differential harness over the checked-in mini-corpus.

This is the PR's acceptance gate: every net in ``tests/corpus/``
through engines x backends with zero disagreements, one schema-valid
``repro.obs/v1`` payload per instance, and the algebra laws holding on
the parsed nets.
"""

import json

import pytest

from repro.bench.corpus import (
    BACKENDS,
    ENGINES,
    CellResult,
    CorpusError,
    diff_cells,
    discover,
    fuzz_laws,
    run_corpus,
    run_instance,
)
from repro.cli import main
from repro.io.formats import load_stg
from repro.obs.emit import validate_metrics
from repro.petri.marking import Marking


@pytest.fixture(scope="module")
def report(corpus_paths):
    return run_corpus(corpus_paths, check_laws=True)


class TestDiscovery:
    def test_finds_at_least_twenty_nets(self, corpus_paths):
        assert len(corpus_paths) >= 20

    def test_covers_all_four_formats(self, corpus_paths):
        assert {path.suffix for path in corpus_paths} == {
            ".g",
            ".json",
            ".net",
            ".pnml",
        }

    def test_underscore_files_skipped(self, corpus_paths):
        assert not [p for p in corpus_paths if p.name.startswith("_")]

    def test_missing_directory_is_loud(self, tmp_path):
        with pytest.raises(CorpusError, match="no such corpus directory"):
            discover(tmp_path / "ghost")

    def test_empty_directory_is_loud(self, tmp_path):
        with pytest.raises(CorpusError, match="no net files"):
            discover(tmp_path)


class TestFullMatrix:
    def test_zero_disagreements(self, report):
        assert report.disagreements == []

    def test_zero_law_violations(self, report):
        assert report.law_violations == []

    def test_every_instance_ran_the_full_matrix(self, report):
        # The three explicit engines sweep every backend; the symbolic
        # engine explores no states, so it contributes one backend-less
        # cell per instance.
        explicit = len(ENGINES) - 1
        for instance in report.instances:
            assert len(instance.cells) == explicit * len(BACKENDS) + 1
            symbolic = [c for c in instance.cells if c.engine == "symbolic"]
            assert len(symbolic) == 1
            assert symbolic[0].backend == "-"
            assert symbolic[0].conclusive is not None

    def test_one_valid_payload_per_instance(self, report):
        for instance in report.instances:
            payload = validate_metrics(instance.payload)
            names = {span["name"] for span in payload["spans"]}
            assert "bench.instance" in names
            assert "bench.cell" in names

    def test_unbounded_instance_is_proven_by_every_cell(self, report):
        (unbounded,) = [
            i for i in report.instances if i.name == "unbounded_source"
        ]
        explicit = [c for c in unbounded.cells if c.engine != "symbolic"]
        assert {cell.outcome for cell in explicit} == {"unbounded"}
        # The symbolic engine never concludes unboundedness; it must
        # report the query open rather than call the net bounded.
        (symbolic,) = [c for c in unbounded.cells if c.engine == "symbolic"]
        assert symbolic.outcome == "inconclusive"
        assert symbolic.conclusive is False

    def test_deadlocking_instance_agrees_on_the_deadlock(self, report):
        (phils,) = [
            i for i in report.instances if i.name == "philosophers_2"
        ]
        deadlock_sets = {
            cell.deadlocks
            for cell in phils.cells
            if cell.engine != "symbolic"  # symbolic enumerates nothing
        }
        assert len(deadlock_sets) == 1
        (deadlocks,) = deadlock_sets
        assert len(deadlocks) == 1  # both philosophers holding one fork


class TestBoundExceeded:
    def test_recorded_as_outcome_not_error(self, corpus_dir):
        instance = run_instance(
            corpus_dir / "fig7_translator.net", max_states=10
        )
        assert all(
            cell.outcome == "bound-exceeded"
            for cell in instance.cells
            if cell.engine != "symbolic"
        )
        # The state-equation cell has no state budget to exceed: its
        # verdict is whatever the linear reasoning concludes.
        (symbolic,) = [
            c for c in instance.cells if c.engine == "symbolic"
        ]
        assert symbolic.outcome in ("ok", "inconclusive")
        assert instance.ok  # agreeing on the budget miss is agreement


class TestDiffCells:
    def ok(self, engine, backend, states=5, edges=7, dead=()):
        return CellResult(
            engine, backend, "ok", states, edges, frozenset(dead)
        )

    def test_backend_count_mismatch_flagged(self):
        problems = diff_cells(
            [self.ok("eager", "dict"), self.ok("eager", "compiled", states=6)]
        )
        assert any("backend mismatch" in p for p in problems)

    def test_engine_count_mismatch_flagged(self):
        problems = diff_cells(
            [self.ok("eager", "dict"), self.ok("onthefly", "dict", edges=9)]
        )
        assert any("engine mismatch" in p for p in problems)

    def test_por_deadlock_divergence_flagged(self):
        marking = Marking({"p": 1})
        problems = diff_cells(
            [
                self.ok("eager", "dict", dead=(marking,)),
                self.ok("por", "dict", states=3, edges=3),
            ]
        )
        assert any("deadlock set differs" in p for p in problems)

    def test_por_exploring_more_flagged(self):
        problems = diff_cells(
            [self.ok("eager", "dict"), self.ok("por", "dict", states=9)]
        )
        assert any("explored more" in p for p in problems)

    def test_por_bound_exceeded_when_reference_ok_flagged(self):
        problems = diff_cells(
            [
                self.ok("eager", "dict"),
                CellResult("por", "dict", "bound-exceeded"),
            ]
        )
        assert any("although the full space completed" in p for p in problems)

    def test_por_smaller_space_is_fine(self):
        problems = diff_cells(
            [self.ok("eager", "dict"), self.ok("por", "dict", states=3, edges=3)]
        )
        assert problems == []

    def test_outcome_mismatch_across_backends_flagged(self):
        problems = diff_cells(
            [
                self.ok("eager", "dict"),
                CellResult("eager", "compiled", "unbounded"),
            ]
        )
        assert any("backend mismatch" in p for p in problems)

    def symbolic(self, outcome="ok", conclusive=True, dead=()):
        return CellResult(
            "symbolic",
            "-",
            outcome,
            conclusive=conclusive,
            dead_actions=frozenset(dead),
        )

    def test_symbolic_bounded_against_explicit_unbounded_flagged(self):
        """A conclusive boundedness claim against an explicit strict
        covering is a soundness bug and must be loud."""
        problems = diff_cells(
            [
                CellResult("eager", "dict", "unbounded"),
                self.symbolic(outcome="ok", conclusive=True),
            ]
        )
        assert any("symbolic claims the net is bounded" in p for p in problems)

    def test_symbolic_inconclusive_against_unbounded_is_fine(self):
        problems = diff_cells(
            [
                CellResult("eager", "dict", "unbounded"),
                self.symbolic(outcome="inconclusive", conclusive=False),
            ]
        )
        assert problems == []

    def test_symbolic_dead_action_fired_by_explicit_engine_flagged(self):
        cells = [
            CellResult(
                "eager",
                "dict",
                "ok",
                5,
                7,
                frozenset(),
                fired_actions=frozenset({"a", "b"}),
            ),
            self.symbolic(dead={"b"}),
        ]
        problems = diff_cells(cells)
        assert any("are dead but" in p and "fired" in p for p in problems)

    def test_symbolic_dead_action_never_fired_is_fine(self):
        cells = [
            CellResult(
                "eager",
                "dict",
                "ok",
                5,
                7,
                frozenset(),
                fired_actions=frozenset({"a"}),
            ),
            self.symbolic(dead={"c"}),
        ]
        assert diff_cells(cells) == []


class TestFuzzLaws:
    def test_corpus_nets_satisfy_the_laws(self, corpus_paths):
        nets = [
            (path.name, load_stg(str(path)).net) for path in corpus_paths
        ]
        assert fuzz_laws(nets) == []

    def test_violations_are_reported(self):
        # A deliberately broken "hide": feed two nets with different
        # languages through the Thm 4.5 comparison by lying about the
        # composition — fuzz_laws itself must not be fooled by order.
        from repro.petri.net import PetriNet

        net = PetriNet("tiny")
        net.add_transition({"p0"}, "a", {"p1"})
        net.set_initial(Marking({"p0": 1}))
        # Sanity: a single well-formed net yields no pair and no
        # hidable labels -> no checks, no violations.
        assert fuzz_laws([("tiny", net)]) == []


class TestCliBench:
    def test_clean_corpus_exits_zero(self, corpus_dir, tmp_path, capsys):
        out_dir = tmp_path / "obs"
        status = main(
            [
                "bench",
                str(corpus_dir),
                "--engines",
                "eager,onthefly",
                "--backends",
                "dict",
                "--max-states",
                "5000",
                "--out",
                str(out_dir),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "# all engines and backends agree" in out
        payloads = sorted(out_dir.glob("*.obs.json"))
        assert len(payloads) >= 20
        for payload_path in payloads:
            validate_metrics(json.loads(payload_path.read_text()))
        index = json.loads((out_dir / "INDEX.json").read_text())
        assert index["disagreements"] == []
        assert len(index["instances"]) == len(payloads)

    def test_symbolic_cells_carry_conclusive_flags(
        self, corpus_dir, tmp_path, capsys
    ):
        out_dir = tmp_path / "obs"
        status = main(
            [
                "bench",
                str(corpus_dir),
                "--engines",
                "onthefly,symbolic",
                "--backends",
                "dict",
                "--max-states",
                "5000",
                "--out",
                str(out_dir),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "# all engines and backends agree" in out
        assert "symbolic/-" in out
        index = json.loads((out_dir / "INDEX.json").read_text())
        assert index["disagreements"] == []
        for entry in index["instances"]:
            cell = entry["cells"]["symbolic/-"]
            assert cell["conclusive"] in (True, False)
            assert "dead action" in cell["summary"]

    def test_missing_directory_exits_two(self, tmp_path, capsys):
        status = main(["bench", str(tmp_path / "ghost")])
        assert status == 2
        err = capsys.readouterr().err
        assert err.startswith("cip: error: no such corpus directory")

    def test_unknown_engine_exits_two(self, corpus_dir, capsys):
        status = main(["bench", str(corpus_dir), "--engines", "psychic"])
        assert status == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_unparsable_net_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.net").write_text("tr t0 p*2 -> q\n")
        status = main(["bench", str(tmp_path)])
        assert status == 2
        err = capsys.readouterr().err
        assert "cannot parse" in err and "weight" in err
