"""Tests for the Figure 1-3 example nets."""

from repro.models.paper_figures import (
    FIG3_HIDDEN_LABEL,
    fig1_left,
    fig1_naive_choice,
    fig1_right,
    fig2_left,
    fig2_right,
    fig3_general,
    fig3_marked_graph,
    fig3_simple_chain,
)
from repro.petri.analysis import analyze
from repro.petri.classify import is_marked_graph, marked_graph_is_live_safe
from repro.petri.traces import bounded_language


class TestFig1:
    def test_left_is_a_loop(self):
        assert ("a", "b", "a") in bounded_language(fig1_left(), 3)

    def test_naive_choice_mixes_branches(self):
        language = bounded_language(fig1_naive_choice(), 4)
        assert ("a", "b", "c") in language

    def test_operands_are_live_safe(self):
        for net in (fig1_left(), fig1_right()):
            props = analyze(net)
            assert props.live and props.safe


class TestFig2:
    def test_left_language_shape(self):
        language = bounded_language(fig2_left(), 3)
        assert ("a", "c", "b") in language
        assert ("a", "b") not in language

    def test_right_alternates_a(self):
        language = bounded_language(fig2_right(), 4)
        assert ("a", "d", "a", "e") in language
        assert ("a", "a") not in language

    def test_both_live_safe(self):
        for net in (fig2_left(), fig2_right()):
            props = analyze(net)
            assert props.live and props.safe


class TestFig3:
    def test_general_net_is_bounded(self):
        assert analyze(fig3_general()).bounded

    def test_general_net_has_all_roles(self):
        net = fig3_general()
        hidden = net.transitions_with_action(FIG3_HIDDEN_LABEL)[0]
        assert hidden.preset == {"p1", "p2"}
        assert hidden.postset == {"q1", "q2"}
        # conflicts on the preset
        assert len(net.consumers("p1")) == 2
        # other producers of the postset
        assert len(net.producers("q1")) == 2

    def test_marked_graph_variant_is_live_safe_mg(self):
        net = fig3_marked_graph()
        assert is_marked_graph(net)
        assert marked_graph_is_live_safe(net)

    def test_simple_chain_qualifies_for_fast_path(self):
        from repro.algebra.hide import _collapsible

        net = fig3_simple_chain()
        hidden = net.transitions_with_action(FIG3_HIDDEN_LABEL)[0]
        assert _collapsible(net, hidden)
