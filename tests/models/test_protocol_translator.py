"""Tests for the Section 6 case study nets (Figures 4-9, Table 1)."""

import pytest

from repro.models.protocol_translator import (
    FORWARDING,
    REC_DISPATCH,
    RECEIVER_COMMANDS,
    SENDER_COMMANDS,
    build_cip,
    inconsistent_sender,
    receiver,
    restricted_sender,
    sender,
    simplified_translator,
    translator,
)
from repro.petri.reachability import ReachabilityGraph
from repro.stg.state_graph import build_state_graph
from repro.stg.stg import compose
from repro.verify.receptiveness import check_receptiveness


class TestTable1:
    def test_sender_commands_cover_all_wire_pairs(self):
        pairs = set(SENDER_COMMANDS.values())
        assert pairs == {("a0", "b0"), ("a0", "b1"), ("a1", "b0"), ("a1", "b1")}

    def test_receiver_commands_cover_all_wire_pairs(self):
        pairs = set(RECEIVER_COMMANDS.values())
        assert pairs == {("p0", "q0"), ("p0", "q1"), ("p1", "q0"), ("p1", "q1")}

    def test_forwarding_matches_paper(self):
        assert FORWARDING == {"reset": "start", "send0": "zero", "send1": "one"}

    def test_rec_dispatch_covers_all_line_levels(self):
        assert set(REC_DISPATCH) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert set(REC_DISPATCH.values()) == set(RECEIVER_COMMANDS)


class TestModules:
    def test_all_blocks_validate(self):
        for module in (sender(), translator(), receiver(), inconsistent_sender()):
            module.validate()

    def test_sender_interface(self):
        block = sender()
        assert block.inputs == {"rec", "reset", "send0", "send1", "n"}
        assert block.outputs == {"a0", "a1", "b0", "b1"}

    def test_translator_interface(self):
        block = translator()
        assert {"DATA", "STROBE", "r"} <= block.inputs
        assert {"n", "p0", "p1", "q0", "q1"} <= block.outputs

    def test_translator_lines_start_unknown(self):
        block = translator()
        assert block.level("DATA") is None
        assert block.level("STROBE") is None

    def test_sender_consistent_state_assignment(self):
        graph = build_state_graph(sender())
        assert graph.is_consistent()

    def test_receiver_consistent_state_assignment(self):
        graph = build_state_graph(receiver())
        assert graph.is_consistent()

    def test_sender_one_command_at_a_time(self):
        """After rec~, no other command toggle can fire until n-."""
        graph = ReachabilityGraph(sender().net)
        # At any reachable marking at most one command is in flight:
        # the idle place is empty while any command cycle runs.
        for marking in graph.states:
            in_flight = sum(
                1
                for command in SENDER_COMMANDS
                for place in marking
                if place.startswith(f"{command}_")
            )
            if marking["idle"]:
                assert in_flight == 0


class TestFigure4Composition:
    def test_cip_validates(self):
        build_cip().validate()

    def test_full_system_deadlock_free(self):
        flat = build_cip().compose_all()
        graph = ReachabilityGraph(flat.net)
        assert graph.is_deadlock_free()
        assert graph.num_states() > 100

    def test_pairwise_receptiveness(self):
        assert check_receptiveness(sender(), translator()).is_receptive()
        assert check_receptiveness(translator(), receiver()).is_receptive()

    def test_commands_flow_end_to_end(self):
        """A send1 command eventually produces a one~ toggle."""
        flat = build_cip().compose_all()
        graph = ReachabilityGraph(flat.net)
        fired = {
            flat.net.transitions[tid].action for tid in graph.fired_tids()
        }
        assert "send1~" in fired
        assert "one~" in fired
        assert "start~" in fired


class TestFigure8:
    def test_inconsistent_sender_fails_receptiveness(self):
        report = check_receptiveness(inconsistent_sender(), translator())
        assert not report.is_receptive()

    def test_falling_edges_are_among_failures(self):
        """The paper's diagnosis: a0-/b0- fired without waiting for n+."""
        report = check_receptiveness(inconsistent_sender(), translator())
        failing = set(report.failing_actions())
        assert {"a0-", "b0-"} <= failing

    def test_consistent_sender_passes_same_check(self):
        report = check_receptiveness(sender(), translator())
        assert report.is_receptive()


class TestFigure9:
    def test_restricted_sender_lacks_rec(self):
        block = restricted_sender()
        assert "rec" not in block.inputs
        assert not [
            t for t in block.net.transitions.values() if t.action == "rec~"
        ]

    def test_simplified_translator_smaller(self):
        reduced = simplified_translator()
        original = translator()
        original_states = ReachabilityGraph(original.net).num_states()
        reduced_states = ReachabilityGraph(reduced.net).num_states()
        assert reduced_states < original_states

    def test_simplified_translator_never_mutes(self):
        reduced = simplified_translator()
        graph = ReachabilityGraph(reduced.net)
        fired = {
            reduced.net.transitions[tid].action for tid in graph.fired_tids()
        }
        # mute = (p0+, q1+) pair: q1 only rises for mute and one; one
        # still occurs, but the mute *combination* never fires. Check
        # via state graph: no reachable state has p0=1 and q1=1.
        state_graph = build_state_graph(reduced)
        for state in state_graph.states:
            p0 = state_graph.value_in(state, "p0")
            q1 = state_graph.value_in(state, "q1")
            assert not (p0 == 1 and q1 == 1)

    def test_theorem_51_for_translator(self):
        from repro.core.synthesis import verify_theorem_51

        assert verify_theorem_51(translator(), restricted_sender())

    def test_simplified_receiver_never_mutes(self):
        from repro.models.protocol_translator import simplified_receiver

        reduced = simplified_receiver()
        graph = ReachabilityGraph(reduced.net)
        fired = {
            reduced.net.transitions[tid].action for tid in graph.fired_tids()
        }
        assert "mute~" not in fired
        assert {"start~", "zero~", "one~"} <= fired

    def test_simplified_receiver_semantically_smaller(self):
        """Trace containment is strict: the reduced receiver's minimized
        DFA is smaller than the original's (the paper's 'more degrees of
        freedom' — fewer behaviours to implement)."""
        from repro.models.protocol_translator import simplified_receiver
        from repro.verify.language import dfa_of_net, language_contained

        original = receiver()
        reduced = simplified_receiver()
        assert language_contained(reduced.net, original.net)
        assert not language_contained(original.net, reduced.net)

    def test_restricted_composition_never_mutes(self):
        flat = compose(
            compose(restricted_sender(), translator()), receiver()
        )
        graph = ReachabilityGraph(flat.net)
        fired = {flat.net.transitions[tid].action for tid in graph.fired_tids()}
        assert "mute~" not in fired
        assert "zero~" in fired and "one~" in fired and "start~" in fired
