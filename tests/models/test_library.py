"""Tests for the asynchronous module library."""

from repro.models.library import (
    four_phase_master,
    four_phase_slave,
    muller_c_element,
    mutex_arbiter,
    pipeline,
    toggle_element,
    two_phase_buffer_stage,
)
from repro.petri.analysis import analyze
from repro.petri.classify import classify, is_marked_graph
from repro.petri.traces import bounded_language, observable_language
from repro.stg.state_graph import build_state_graph
from repro.stg.stg import compose
from repro.verify.receptiveness import check_receptiveness


class TestHandshakes:
    def test_master_slave_compose_receptively(self):
        report = check_receptiveness(four_phase_master(), four_phase_slave())
        assert report.is_receptive()

    def test_composition_is_live_safe(self):
        composite = compose(four_phase_master(), four_phase_slave())
        props = analyze(composite.net)
        assert props.live and props.safe

    def test_custom_wire_names(self):
        master = four_phase_master(req="req1", ack="ack1", name="m1")
        assert master.outputs == {"req1"}
        assert [t.action for t in master.net.transitions.values()][0] == "req1+"


class TestCElement:
    def test_consistent_and_csc(self):
        graph = build_state_graph(muller_c_element())
        assert graph.is_consistent()
        assert graph.has_csc()

    def test_c_rises_only_after_both_inputs(self):
        language = bounded_language(muller_c_element().net, 3)
        assert ("x+", "y+", "c+") in language
        assert ("x+", "c+") not in language


class TestToggle:
    def test_outputs_alternate(self):
        language = bounded_language(toggle_element().net, 4)
        assert ("t~", "q0~", "t~", "q1~") in language
        assert ("t~", "q1~") not in language


class TestArbiter:
    def test_is_a_general_net(self):
        """The paper's Section 5.1 argument: arbiters are not free
        choice (nor asymmetric choice)."""
        flags = classify(mutex_arbiter().net)
        assert not flags.free_choice
        assert not flags.extended_free_choice
        assert flags.most_specific() == "general"

    def test_mutual_exclusion_invariant(self):
        from repro.petri.reachability import ReachabilityGraph

        graph = ReachabilityGraph(mutex_arbiter().net)
        for marking in graph.states:
            assert marking["crit1"] + marking["crit2"] <= 1

    def test_grants_are_serializable(self):
        language = observable_language(
            bounded_language(mutex_arbiter().net, 6)
        )
        assert ("r1+", "g1+", "r1-", "g1-") in {
            tuple(a for a in t if a.startswith(("r1", "g1"))) for t in language
        }

    def test_arbiter_mutex_place_invariant(self):
        from repro.petri.structural import p_invariants

        invariants = p_invariants(mutex_arbiter().net)
        assert any("mutex" in inv and "crit1" in inv and "crit2" in inv for inv in invariants)


class TestControlElements:
    def test_merge_fires_on_either_input(self):
        from repro.models.library import merge_element
        from repro.petri.traces import bounded_language

        merge = merge_element()
        language = bounded_language(merge.net, 2)
        assert ("m0~", "z~") in language
        assert ("m1~", "z~") in language
        assert ("m0~", "m1~") not in language  # one at a time

    def test_call_routes_ack_to_caller(self):
        from repro.models.library import call_element
        from repro.petri.traces import bounded_language

        call = call_element()
        language = bounded_language(call.net, 4)
        assert ("r0~", "sr~", "sa~", "a0~") in language
        assert ("r1~", "sr~", "sa~", "a1~") in language
        # The wrong-client ack never happens.
        assert ("r0~", "sr~", "sa~", "a1~") not in language

    def test_call_composes_with_shared_subroutine(self):
        from repro.models.library import call_element
        from repro.petri.analysis import analyze
        from repro.stg.stg import compose
        from repro.petri.marking import Marking as M
        from repro.petri.net import PetriNet as PN
        from repro.stg.stg import Stg as S

        sub = PN("sub")
        sub.add_transition({"s"}, "sr~", {"t"})
        sub.add_transition({"t"}, "sa~", {"s"})
        sub.set_initial(M({"s": 1}))
        system = compose(call_element(), S(sub, inputs={"sr"}, outputs={"sa"}))
        assert analyze(system.net).deadlock_free

    def test_decision_wait_joins(self):
        from repro.models.library import decision_wait
        from repro.petri.traces import bounded_language

        dw = decision_wait()
        language = bounded_language(dw.net, 3)
        assert ("dr~", "dc~", "dw~") in language
        assert ("dc~", "dr~", "dw~") in language
        assert ("dr~", "dw~") not in language

    def test_merge_is_state_machine(self):
        from repro.models.library import merge_element
        from repro.petri.classify import is_state_machine

        assert is_state_machine(merge_element().net)


class TestPipeline:
    def test_stage_is_marked_graph_after_init(self):
        stage = two_phase_buffer_stage("d0", "k0", "d1", "k1", "stage")
        assert is_marked_graph(stage.net)

    def test_pipeline_composes(self):
        from repro.core.circuit import compose_many

        stages = pipeline(3)
        composite = compose_many(stages)
        assert composite.inputs == {"d0", "k3"}
        assert {"k0", "d3"} <= composite.outputs
        props = analyze(composite.net)
        assert props.live

    def test_pipeline_stage_receptiveness(self):
        stages = pipeline(2)
        report = check_receptiveness(stages[0], stages[1])
        assert report.is_receptive()
