"""Tests for speed-independence / hazard checks."""

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import Stg
from repro.synth.boolean import Cube, SumOfProducts
from repro.synth.hazards import (
    is_speed_independent,
    monotonic_cover_violations,
    set_reset_conflicts,
)
from repro.synth.implementation import (
    CElementImplementation,
    GateImplementation,
    synthesize,
    synthesize_c_elements,
)


def c_element_spec() -> Stg:
    net = PetriNet("celem")
    net.add_transition({"x0"}, "x+", {"x1"})
    net.add_transition({"y0"}, "y+", {"y1"})
    net.add_transition({"x1", "y1"}, "c+", {"x2", "y2"})
    net.add_transition({"x2"}, "x-", {"x3"})
    net.add_transition({"y2"}, "y-", {"y3"})
    net.add_transition({"x3", "y3"}, "c-", {"x0", "y0"})
    net.set_initial(Marking({"x0": 1, "y0": 1}))
    return Stg(net, inputs={"x", "y"}, outputs={"c"})


def responder() -> Stg:
    net = PetriNet("responder")
    net.add_transition({"p0"}, "r+", {"p1"})
    net.add_transition({"p1"}, "a+", {"p2"})
    net.add_transition({"p2"}, "r-", {"p3"})
    net.add_transition({"p3"}, "a-", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


class TestMonotonicCover:
    def test_synthesized_responder_is_clean(self):
        stg = responder()
        assert monotonic_cover_violations(stg, synthesize(stg)) == []

    def test_synthesized_c_element_is_clean(self):
        stg = c_element_spec()
        assert monotonic_cover_violations(stg, synthesize(stg)) == []

    def test_cube_handover_detected(self):
        """z stays excited while input j rises; a cover split into the
        disjoint cubes i&!j and i&j hands over between them across the
        j+ edge — a classic OR-stage glitch the check must flag."""
        net = PetriNet("persisting")
        net.add_transition({"s0"}, "i+", {"s1"})
        net.add_transition({"s1"}, "j+", {"s2"})
        net.add_transition({"s2"}, "z+", {"s3"})
        net.add_transition({"s1"}, "z+", {"s4"})
        net.add_transition({"s4"}, "j+", {"s3"})
        net.set_initial(Marking({"s0": 1}))
        spec = Stg(net, inputs={"i", "j"}, outputs={"z"})
        cube1 = Cube(3, 0b011, 0b001)  # i & !j
        cube2 = Cube(3, 0b011, 0b011)  # i & j
        handover = GateImplementation(
            ("i", "j", "z"), {"z": SumOfProducts(3, (cube1, cube2))}
        )
        violations = monotonic_cover_violations(spec, handover)
        assert violations
        assert violations[0].kind == "monotonic-cover"
        assert violations[0].signal == "z"

    def test_single_cube_cover_cannot_glitch(self):
        """The same persisting-excitation spec with the merged cube
        i (mask only i) is monotonic."""
        net = PetriNet("persisting")
        net.add_transition({"s0"}, "i+", {"s1"})
        net.add_transition({"s1"}, "j+", {"s2"})
        net.add_transition({"s2"}, "z+", {"s3"})
        net.add_transition({"s1"}, "z+", {"s4"})
        net.add_transition({"s4"}, "j+", {"s3"})
        spec = Stg(net, inputs={"i", "j"}, outputs={"z"})
        merged = GateImplementation(
            ("i", "j", "z"),
            {"z": SumOfProducts(3, (Cube(3, 0b001, 0b001),))},  # just i
        )
        assert monotonic_cover_violations(spec, merged) == []


class TestSetResetConflicts:
    def test_synthesized_c_element_conflict_free(self):
        stg = c_element_spec()
        impl = synthesize_c_elements(stg)
        assert set_reset_conflicts(stg, impl) == []

    def test_overlapping_networks_detected(self):
        stg = responder()
        n = 2  # variables (a, r)
        always = SumOfProducts(n, (Cube(n, 0, 0),))
        broken = CElementImplementation(
            ("a", "r"), {"a": always}, {"a": always}
        )
        violations = set_reset_conflicts(stg, broken)
        assert violations
        assert violations[0].kind == "set-reset-conflict"


class TestSpeedIndependence:
    def test_clean_designs_pass(self):
        for spec in (responder(), c_element_spec()):
            assert is_speed_independent(spec, synthesize(spec))

    def test_wrong_function_fails(self):
        stg = responder()
        impl = synthesize(stg)
        n = len(impl.variables)
        broken = GateImplementation(
            impl.variables, {"a": SumOfProducts(n, ())}
        )
        assert not is_speed_independent(stg, broken)

    def test_non_persistent_spec_fails(self):
        """An output that can be *disabled* by an input firing is not
        speed-independent regardless of the logic."""
        net = PetriNet()
        net.add_transition({"p0"}, "b+", {"p1"})
        net.add_transition({"p0"}, "i+", {"p2"})  # i+ steals the token
        stg = Stg(net, inputs={"i"}, outputs={"b"})
        stg.net.set_initial(Marking({"p0": 1}))
        impl = synthesize(stg)
        assert not is_speed_independent(stg, impl)
