"""Tests for next-state extraction, gate synthesis and simulation."""

import pytest

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import Stg
from repro.synth.implementation import (
    synthesize,
    synthesize_c_elements,
    verify_implementation,
)
from repro.synth.nextstate import CodingError, next_state_tables
from repro.synth.simulate import simulate


def four_phase_responder() -> Stg:
    """The circuit side of a 4-phase handshake: a follows r."""
    net = PetriNet("responder")
    net.add_transition({"p0"}, "r+", {"p1"})
    net.add_transition({"p1"}, "a+", {"p2"})
    net.add_transition({"p2"}, "r-", {"p3"})
    net.add_transition({"p3"}, "a-", {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


def c_element_spec() -> Stg:
    """Muller C-element: output c rises after both inputs rise, falls
    after both fall."""
    net = PetriNet("celem")
    net.add_transition({"x0"}, "x+", {"x1"})
    net.add_transition({"y0"}, "y+", {"y1"})
    net.add_transition({"x1", "y1"}, "c+", {"x2", "y2"})
    net.add_transition({"x2"}, "x-", {"x3"})
    net.add_transition({"y2"}, "y-", {"y3"})
    net.add_transition({"x3", "y3"}, "c-", {"x0", "y0"})
    net.set_initial(Marking({"x0": 1, "y0": 1}))
    return Stg(net, inputs={"x", "y"}, outputs={"c"})


class TestNextState:
    def test_responder_table(self):
        tables = next_state_tables(four_phase_responder())
        assert set(tables) == {"a"}
        table = tables["a"]
        # variables sorted: (a, r). States: (0,0)->off, (0,1)->on(rise),
        # (1,1)->on(hold), (1,0)->off(fall).
        assert table.variables == ("a", "r")
        assert set(table.on_set) == {0b10, 0b11}
        assert set(table.off_set) == {0b00, 0b01}

    def test_inconsistent_stg_rejected(self):
        net = PetriNet()
        net.add_transition({"p0"}, "a+", {"p1"})
        net.add_transition({"p1"}, "a+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        with pytest.raises(CodingError):
            next_state_tables(Stg(net, outputs={"a"}))

    def test_csc_violation_rejected(self):
        """Same code must not require both levels: a+ . b+ . a- . b-
        revisits code(a)=0,b... build a net where code repeats with
        different required outputs."""
        net = PetriNet()
        net.add_transition({"p0"}, "a+", {"p1"})
        net.add_transition({"p1"}, "a-", {"p2"})
        net.add_transition({"p2"}, "a+", {"p3"})
        net.add_transition({"p3"}, "b+", {"p4"})
        net.set_initial(Marking({"p0": 1}))
        # In p0 (code a=0,b=0) a rises; in p2 (same code) a rises too —
        # fine; but b: in p2's successor chain code (a=0,b=0) at p2 has
        # no b excitation while ... construct a direct conflict instead:
        net2 = PetriNet()
        net2.add_transition({"q0"}, "i+", {"q1"})
        net2.add_transition({"q1"}, "b+", {"q2"})
        net2.add_transition({"q2"}, "i-", {"q3"})
        net2.add_transition({"q3"}, "b-", {"q4"})
        net2.add_transition({"q4"}, "i+", {"q5"})
        net2.add_transition({"q5"}, "i-", {"q6"})
        net2.set_initial(Marking({"q0": 1}))
        stg = Stg(net2, inputs={"i"}, outputs={"b"})
        # code (b=0, i=1) occurs at q1 (b must rise) and at q5 (b must
        # stay 0): a CSC conflict.
        with pytest.raises(CodingError, match="CSC"):
            next_state_tables(stg)

    def test_toggle_rejected(self):
        net = PetriNet()
        net.add_transition({"p0"}, "a~", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        with pytest.raises(CodingError, match="toggle"):
            next_state_tables(Stg(net, outputs={"a"}))


class TestSynthesize:
    def test_responder_is_a_wire(self):
        impl = synthesize(four_phase_responder())
        assert impl.expression("a") == "r"

    def test_c_element_function(self):
        impl = synthesize(c_element_spec())
        # c' = x&y | c&(x|y) — the classic majority/C-element equation.
        function = impl.functions["c"]
        variables = impl.variables
        xi = variables.index("x")
        yi = variables.index("y")
        ci = variables.index("c")
        for m in range(8):
            x, y, c = (m >> xi) & 1, (m >> yi) & 1, (m >> ci) & 1
            expected = (x and y) or (c and (x or y))
            # Only reachable codes are guaranteed; majority matches all.
            if function.evaluate(m) != bool(expected):
                # allowed only on unreachable codes
                pass
        assert impl.functions["c"].evaluate(0b111 if len(variables) == 3 else 0)

    def test_verify_implementation_passes(self):
        stg = c_element_spec()
        impl = synthesize(stg)
        assert verify_implementation(stg, impl).ok

    def test_verify_detects_broken_function(self):
        from repro.synth.boolean import SumOfProducts

        stg = four_phase_responder()
        impl = synthesize(stg)
        broken = impl.functions.copy()
        broken["a"] = SumOfProducts(len(impl.variables), ())  # constant 0
        from repro.synth.implementation import GateImplementation

        bad = GateImplementation(impl.variables, broken)
        assert not verify_implementation(stg, bad).ok

    def test_netlist_rendering(self):
        impl = synthesize(four_phase_responder())
        assert impl.netlist() == "a = r"

    def test_c_element_style(self):
        impl = synthesize_c_elements(c_element_spec())
        text = impl.netlist()
        assert "set(c)" in text and "reset(c)" in text
        # set = x & y on reachable codes.
        assert impl.set_functions["c"].evaluate(
            sum(1 << impl.variables.index(v) for v in ("x", "y"))
        )


class TestSimulate:
    def test_closed_loop_responder(self):
        stg = four_phase_responder()
        trace = simulate(stg, synthesize(stg), steps=100, seed=1)
        assert trace.ok(), trace.errors
        assert len(trace.steps) == 100

    def test_closed_loop_c_element(self):
        stg = c_element_spec()
        trace = simulate(stg, synthesize(stg), steps=200, seed=2)
        assert trace.ok(), trace.errors

    def test_simulation_catches_bad_circuit(self):
        from repro.synth.boolean import Cube, SumOfProducts
        from repro.synth.implementation import GateImplementation

        stg = four_phase_responder()
        impl = synthesize(stg)
        # A circuit that always drives a high.
        always_on = SumOfProducts(len(impl.variables), (Cube(len(impl.variables), 0, 0),))
        bad = GateImplementation(impl.variables, {"a": always_on})
        trace = simulate(stg, bad, steps=50, seed=3)
        assert not trace.ok()
