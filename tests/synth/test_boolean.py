"""Tests for Quine-McCluskey minimization."""

import pytest

from repro.synth.boolean import (
    Cube,
    SumOfProducts,
    equivalent_on,
    minimize,
    prime_implicants,
    truth_table,
)


class TestCube:
    def test_covers(self):
        cube = Cube(3, 0b011, 0b001)  # x0=1, x1=0, x2 free
        assert cube.covers(0b001)
        assert cube.covers(0b101)
        assert not cube.covers(0b011)

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Cube(2, 0b01, 0b10)

    def test_expression(self):
        cube = Cube(3, 0b011, 0b001)
        assert cube.to_expression(("a", "b", "c")) == "a & !b"

    def test_tautology_expression(self):
        assert Cube(2, 0, 0).to_expression(("a", "b")) == "1"


class TestPrimeImplicants:
    def test_xor_has_two_primes(self):
        primes = prime_implicants(2, [0b01, 0b10])
        assert len(primes) == 2
        assert all(p.literals() == 2 for p in primes)

    def test_adjacent_minterms_merge(self):
        primes = prime_implicants(2, [0b00, 0b01])
        assert len(primes) == 1
        assert primes[0].literals() == 1

    def test_dont_cares_enlarge_primes(self):
        # on = {00}, dc = {01, 10, 11}: the constant-1 cube is prime.
        primes = prime_implicants(2, [0], [1, 2, 3])
        assert any(p.literals() == 0 for p in primes)


class TestMinimize:
    def test_empty_on_set_is_constant_zero(self):
        sop = minimize(2, [])
        assert sop.to_expression(("a", "b")) == "0"
        assert truth_table(sop) == [False] * 4

    def test_full_on_set_is_constant_one(self):
        sop = minimize(2, [0, 1, 2, 3])
        assert sop.to_expression(("a", "b")) == "1"

    def test_classic_example(self):
        """f = a&b | !a&!b (XNOR): two 2-literal cubes."""
        sop = minimize(2, [0b00, 0b11])
        assert len(sop.cubes) == 2
        assert sop.literal_count() == 4
        assert truth_table(sop) == [True, False, False, True]

    def test_dont_cares_used(self):
        # on {11}, dc {01}: cover can be just 'a' (bit0)? on=3 -> a&b
        # without dc; with dc {0b01}: cube b? No: dc=0b01 means a=1,b=0.
        sop = minimize(2, [0b11], [0b01])
        assert sop.literal_count() == 1
        assert sop.evaluate(0b11)
        assert not sop.evaluate(0b10)

    def test_cover_is_correct_exhaustively(self):
        import itertools

        for on_bits in range(16):
            on = [m for m in range(4) if on_bits >> m & 1]
            sop = minimize(2, on)
            for m in range(4):
                assert sop.evaluate(m) == (m in on), (on, m)

    def test_three_variable_function(self):
        # Majority function of 3 variables.
        on = [m for m in range(8) if bin(m).count("1") >= 2]
        sop = minimize(3, on)
        for m in range(8):
            assert sop.evaluate(m) == (bin(m).count("1") >= 2)
        assert len(sop.cubes) == 3  # ab | bc | ac

    def test_equivalent_on_care_set(self):
        f = minimize(2, [0b01])
        g = minimize(2, [0b01, 0b11])
        assert equivalent_on(f, g, [0b01, 0b00])
        assert not equivalent_on(f, g, [0b11])

    def test_deterministic_output(self):
        on = [1, 2, 5, 6, 7]
        assert minimize(3, on) == minimize(3, on)
