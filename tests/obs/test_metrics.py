"""Tests for the instrumentation subsystem (``repro.obs``)."""

import json

import pytest

from repro.obs import metrics as obs
from repro.obs.clock import FakeClock, MonotonicClock
from repro.obs.emit import (
    SCHEMA_VERSION,
    benchmark_trajectory,
    metrics_payload,
    validate_benchmark,
    validate_metrics,
    write_benchmark,
    write_metrics,
)


class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        assert clock.name == "monotonic"
        assert clock.now() <= clock.now()

    def test_fake_clock_is_deterministic(self):
        clock = FakeClock(start=10.0, tick=0.5)
        assert clock.name == "fake"
        assert clock.now() == 10.0
        assert clock.now() == 10.5
        clock.advance(4.0)
        assert clock.now() == 15.0

    def test_fake_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)


class TestRecorder:
    def test_noop_when_inactive(self):
        assert not obs.active()
        # None of these may raise or record anything.
        with obs.span("nothing", extra=1) as handle:
            handle.set(more=2)
        obs.count("c", 3)
        obs.gauge("g", 4)
        obs.gauge_max("m", 5)
        assert not obs.active()

    def test_span_durations_from_fake_clock(self):
        with obs.record(clock=FakeClock(tick=1.0)) as recorder:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        by_name = {span.name: span for span in recorder.spans}
        assert set(by_name) == {"outer", "inner"}
        # Every now() call ticks once: outer.start=0, inner.start=1,
        # inner.end=2, outer.end=3.
        assert by_name["inner"].duration == 1.0
        assert by_name["outer"].duration == 3.0

    def test_counters_accumulate_and_gauge_max_keeps_peak(self):
        with obs.record(clock=FakeClock()) as recorder:
            obs.count("events", 2)
            obs.count("events", 3)
            obs.gauge("ratio", 0.5)
            obs.gauge("ratio", 0.25)
            obs.gauge_max("peak", 7)
            obs.gauge_max("peak", 4)
        assert recorder.counters == {"events": 5}
        assert recorder.gauges == {"ratio": 0.25, "peak": 7}

    def test_nested_recorders_both_observe(self):
        with obs.record(clock=FakeClock()) as outer:
            obs.count("shared", 1)
            with obs.record() as inner:
                obs.count("shared", 1)
                with obs.span("deep", tag="x"):
                    pass
        assert outer.counters == {"shared": 2}
        assert inner.counters == {"shared": 1}
        assert [span.name for span in inner.spans] == ["deep"]
        assert [span.name for span in outer.spans] == ["deep"]
        # The nested recorder inherits the innermost active clock.
        assert inner.clock is outer.clock

    def test_span_meta_updates_are_shared(self):
        with obs.record(clock=FakeClock()) as recorder:
            with obs.span("work", phase="start") as handle:
                handle.set(states=42)
        (span,) = recorder.spans
        assert span.meta == {"phase": "start", "states": 42}

    def test_stack_is_clean_after_exception(self):
        with pytest.raises(RuntimeError):
            with obs.record(clock=FakeClock()) as recorder:
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        assert not obs.active()
        # The span was still closed on the way out.
        assert recorder.spans[0].end is not None


class TestEmit:
    def test_payload_round_trips_validation(self):
        with obs.record(clock=FakeClock()) as recorder:
            with obs.span("phase", detail="x"):
                obs.count("n", 1)
                obs.gauge("r", 0.5)
        payload = metrics_payload(recorder)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["clock"] == "fake"
        validate_metrics(payload)
        # Survives JSON serialisation unchanged.
        validate_metrics(json.loads(json.dumps(payload)))

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.update(schema="other/v9"), "schema"),
            (lambda p: p.update(spans={}), "spans"),
            (lambda p: p["spans"][0].update(duration="fast"), "duration"),
            (lambda p: p["counters"].update({"bad": "nan"}), "counter"),
            (lambda p: p["gauges"].update({3: 1.0}), "gauge"),
        ],
    )
    def test_validate_rejects_malformed(self, mutate, message):
        with obs.record(clock=FakeClock()) as recorder:
            with obs.span("s"):
                pass
        payload = metrics_payload(recorder)
        payload["counters"] = dict(payload["counters"])
        payload["gauges"] = dict(payload["gauges"])
        mutate(payload)
        with pytest.raises(ValueError, match=message):
            validate_metrics(payload)

    def test_write_metrics_file(self, tmp_path):
        with obs.record(clock=FakeClock()) as recorder:
            with obs.span("s"):
                obs.count("c", 1)
        target = tmp_path / "metrics.json"
        payload = write_metrics(str(target), recorder)
        on_disk = json.loads(target.read_text())
        assert on_disk == payload
        assert target.read_text().endswith("\n")

    def test_write_benchmark_layout(self, tmp_path):
        target = tmp_path / "BENCH_x.json"
        write_benchmark(
            str(target),
            benchmark="demo",
            unit="states",
            instances={"b": {"eager": 2}, "a": {"eager": 1}},
        )
        payload = json.loads(target.read_text())
        assert list(payload) == ["benchmark", "unit", "instances"]
        assert list(payload["instances"]) == ["a", "b"]
        assert target.read_text().endswith("\n")

    def test_benchmark_trajectory_sorts_instances(self):
        payload = benchmark_trajectory(
            "demo", "states", {"z": {"n": 1}, "a": {"n": 2}}
        )
        assert list(payload["instances"]) == ["a", "z"]

    def test_validate_benchmark_accepts_committed_files(self):
        from pathlib import Path

        bench_dir = Path(__file__).parent.parent.parent / "benchmarks"
        validated = 0
        for path in sorted(bench_dir.glob("BENCH_*.json")):
            payload = json.loads(path.read_text())
            assert validate_benchmark(payload) is payload, path.name
            validated += 1
        assert validated > 0

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.pop("benchmark"), "benchmark must be a non-empty"),
            (lambda p: p.update(unit=""), "unit must be a non-empty"),
            (lambda p: p.update(instances=[]), "instances must be an object"),
            (
                lambda p: p["instances"].update(bad="nope"),
                "instances\\['bad'\\] must be an object",
            ),
            (
                lambda p: p["instances"]["x"].update(n="many"),
                "must be a number",
            ),
            (
                lambda p: p["instances"]["x"].update(n=True),
                "must be a number",
            ),
        ],
    )
    def test_validate_benchmark_rejects_malformed(self, mutate, message):
        payload = benchmark_trajectory("demo", "states", {"x": {"n": 1}})
        mutate(payload)
        with pytest.raises(ValueError, match=message):
            validate_benchmark(payload)
