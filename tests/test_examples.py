"""Integration tests: every example script runs to completion.

The examples are user-facing documentation; a broken example is a
broken feature.  Each is executed in-process with stdout captured and
its key output lines asserted.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "receptive" in out
        assert "a = r" in out
        assert "PASS" in out

    def test_abstract_channels(self, capsys):
        out = run_example("abstract_channels.py", capsys)
        assert "one-hot code valid (Sperner): True" in out
        assert "deadlock-free=True" in out
        assert "dual-rail" in out

    def test_compositional_synthesis(self, capsys):
        out = run_example("compositional_synthesis.py", capsys)
        assert "Theorem 5.1 containment: True" in out
        assert "as = 0" in out

    def test_arbiter(self, capsys):
        out = run_example("arbiter.py", capsys)
        assert "net class: general" in out
        assert "mutual exclusion over 12 states: True" in out

    def test_conformance_checking(self, capsys):
        out = run_example("conformance_checking.py", capsys)
        assert "pipelined : conforms" in out
        assert "does NOT conform" in out
        assert "trace languages equal: True" in out

    def test_vme_synthesis(self, capsys):
        out = run_example("vme_synthesis.py", capsys)
        assert "CSC broken (1)" in out
        assert "inserted csc0" in out
        assert "static check  : PASS" in out
        assert "speed-independent: True" in out
        assert "clean" in out

    @pytest.mark.slow
    def test_protocol_translator(self, capsys):
        out = run_example("protocol_translator.py", capsys)
        assert "deadlock-free=True" in out
        assert "NOT receptive" in out  # Figure 8
        assert "Theorem 5.1 (trace containment): True" in out
        assert "mute~ ever fired: False" in out
