"""Tests for compositional synthesis (Section 5.2, Theorem 5.1)."""

from repro.core.synthesis import (
    compositional_reduction,
    reduction_report,
    simplify_against_environment,
    verify_theorem_51,
)
from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import Stg
from repro.verify.language import language_contained, languages_equal


def choosy_master() -> Stg:
    """A master that can either do the full handshake or a short pulse
    on a second wire; the slave ignores the second wire."""
    net = PetriNet("choosy")
    net.add_transition({"m0"}, "r+", {"m1"})
    net.add_transition({"m1"}, "a+", {"m2"})
    net.add_transition({"m2"}, "r-", {"m3"})
    net.add_transition({"m3"}, "a-", {"m0"})
    net.add_transition({"m0"}, "led+", {"m4"})
    net.add_transition({"m4"}, "led-", {"m0"})
    net.set_initial(Marking({"m0": 1}))
    return Stg(net, inputs={"a"}, outputs={"r", "led"})


def lazy_slave() -> Stg:
    """A slave that only ever serves one request, then stops."""
    net = PetriNet("lazy")
    net.add_transition({"s0"}, "r+", {"s1"})
    net.add_transition({"s1"}, "a+", {"s2"})
    net.add_transition({"s2"}, "r-", {"s3"})
    net.add_transition({"s3"}, "a-", {"s4"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={"r"}, outputs={"a"})


class TestSimplify:
    def test_interface_restored(self):
        reduced = simplify_against_environment(
            four_phase_slave(), four_phase_master()
        )
        assert reduced.inputs == {"r"}
        assert reduced.outputs == {"a"}

    def test_identity_environment_keeps_language(self):
        """A perfectly matching environment does not remove behaviour."""
        slave = four_phase_slave()
        reduced = simplify_against_environment(slave, four_phase_master())
        assert languages_equal(reduced.net, slave.net)

    def test_restrictive_environment_shrinks_behaviour(self):
        """A one-shot environment cuts the slave to a single handshake."""
        slave = four_phase_slave()
        reduced = simplify_against_environment(slave, lazy_slave_master())
        assert language_contained(reduced.net, slave.net)
        assert not language_contained(slave.net, reduced.net)

    def test_environment_private_signals_removed(self):
        reduced = simplify_against_environment(
            four_phase_slave(), choosy_master()
        )
        assert "led" not in reduced.signals()
        assert not [
            t
            for t in reduced.net.transitions.values()
            if t.action.startswith("led")
        ]

    def test_theorem_51_holds(self):
        assert verify_theorem_51(four_phase_slave(), four_phase_master())
        assert verify_theorem_51(four_phase_slave(), lazy_slave_master())
        assert verify_theorem_51(four_phase_slave(), choosy_master())

    def test_reduced_language_matches_projection(self):
        """The derived net's language IS the projection of the composed
        language onto the target alphabet (the defining equation)."""
        from repro.petri.net import EPSILON
        from repro.stg.stg import compose, signal_actions
        from repro.verify.language import dfa_equal, dfa_of_net

        target = four_phase_slave()
        environment = lazy_slave_master()
        reduced = simplify_against_environment(target, environment)
        composite = compose(environment, target)
        target_actions = signal_actions(
            composite.net.actions | reduced.net.actions, target.signals()
        )
        silent_composite = (composite.net.actions - target_actions) | {EPSILON}
        d_reduced = dfa_of_net(
            reduced.net, silent={EPSILON}, alphabet=target_actions
        )
        d_projected = dfa_of_net(
            composite.net, silent=silent_composite, alphabet=target_actions
        )
        assert dfa_equal(d_reduced, d_projected)


def lazy_slave_master() -> Stg:
    """A master that performs exactly one handshake, then halts."""
    net = PetriNet("one_shot_master")
    net.add_transition({"m0"}, "r+", {"m1"})
    net.add_transition({"m1"}, "a+", {"m2"})
    net.add_transition({"m2"}, "r-", {"m3"})
    net.add_transition({"m3"}, "a-", {"m4"})
    net.set_initial(Marking({"m0": 1}))
    return Stg(net, inputs={"a"}, outputs={"r"})


class TestCompositionalReduction:
    def test_pair_reduction(self):
        reduced_master, reduced_slave = compositional_reduction(
            four_phase_master(), four_phase_slave()
        )
        assert languages_equal(reduced_master.net, four_phase_master().net)
        assert languages_equal(reduced_slave.net, four_phase_slave().net)

    def test_report_fields(self):
        slave = four_phase_slave()
        reduced = simplify_against_environment(slave, lazy_slave_master())
        report = reduction_report(slave, reduced)
        assert report.original_states == 4
        assert report.reduced_states >= report.original_states  # halted tail adds states
        assert report.original_transitions == 4
