"""Tests for the circuit-algebra wrapper (Section 5.1 equations)."""

import pytest

from repro.core.circuit import (
    Circuit,
    circuit,
    compose,
    compose_many,
    hide,
    interface,
)
from repro.models.library import four_phase_master, four_phase_slave
from repro.petri.marking import Marking
from repro.petri.net import PetriNet


def tiny(name: str, action: str, inputs=(), outputs=()) -> Circuit:
    net = PetriNet(name)
    net.add_transition({f"{name}_p"}, action, {f"{name}_q"})
    net.set_initial(Marking({f"{name}_p": 1}))
    return circuit(net, inputs=inputs, outputs=outputs)


class TestEquations:
    def test_compose_io_equation(self):
        """C1||C2 = (I1|I2 \\ (O1|O2), O1|O2, N1||N2)."""
        composed = compose(four_phase_master(), four_phase_slave())
        assert composed.outputs == {"r", "a"}
        assert composed.inputs == set()

    def test_compose_keeps_unmatched_inputs(self):
        left = tiny("L", "x+", inputs={"x"})
        right = tiny("R", "y+", outputs={"y"})
        composed = compose(left, right)
        assert composed.inputs == {"x"}
        assert composed.outputs == {"y"}

    def test_hide_io_equation(self):
        """hide(C, A) = (I, O\\A, hide(N, A)) for A within O."""
        composed = compose(four_phase_master(), four_phase_slave())
        hidden = hide(composed, {"a"})
        assert hidden.outputs == {"r"}
        assert hidden.inputs == set()

    def test_hide_rejects_inputs(self):
        with pytest.raises(ValueError):
            hide(four_phase_master(), {"a"})  # a is an input of master

    def test_interface(self):
        inputs, outputs = interface(four_phase_master())
        assert inputs == {"a"}
        assert outputs == {"r"}

    def test_interface_counts_internals_as_outputs(self):
        module = four_phase_master()
        module.outputs.discard("r")
        module.internals.add("r")
        _, outputs = interface(module)
        assert "r" in outputs


class TestComposeMany:
    def test_left_associated_chain(self):
        chain = compose_many(
            [
                tiny("A", "s+", outputs={"s"}),
                tiny("B", "s+", inputs={"s"}),
                tiny("C", "t+", outputs={"t"}),
            ]
        )
        assert chain.outputs == {"s", "t"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compose_many([])

    def test_single_is_identity(self):
        module = four_phase_master()
        assert compose_many([module]) is module

    def test_circuit_alias(self):
        from repro.stg.stg import Stg

        assert Circuit is Stg
