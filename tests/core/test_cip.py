"""Tests for the CIP graph model (Definition 3.1)."""

import pytest

from repro.core.channels import receive, send
from repro.core.cip import Cip
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.traces import bounded_language
from repro.stg.stg import Stg


def producer_module() -> Stg:
    net = PetriNet("producer")
    net.add_transition({"p0"}, send("ch", "v"), {"p0"})
    net.set_initial(Marking({"p0": 1}))
    return Stg(net)


def consumer_module() -> Stg:
    net = PetriNet("consumer")
    net.add_transition({"q0"}, receive("ch", "v"), {"q1"})
    net.add_transition({"q1"}, "done+", {"q0"})
    net.set_initial(Marking({"q0": 1}))
    return Stg(net, outputs={"done"})


def build() -> Cip:
    cip = Cip("demo")
    cip.add_module("prod", producer_module())
    cip.add_module("cons", consumer_module())
    cip.add_channel("ch", "prod", "cons", values=("v",))
    return cip


class TestConstruction:
    def test_duplicate_module_rejected(self):
        cip = build()
        with pytest.raises(ValueError):
            cip.add_module("prod", producer_module())

    def test_channel_requires_known_modules(self):
        cip = build()
        with pytest.raises(ValueError):
            cip.add_channel("ch2", "prod", "ghost")

    def test_wire_requires_known_modules(self):
        cip = build()
        with pytest.raises(ValueError):
            cip.add_wire("w", "ghost")

    def test_stats(self):
        stats = build().stats()
        assert stats["modules"] == 2
        assert stats["channels"] == 1


class TestValidation:
    def test_valid_cip_passes(self):
        build().validate()

    def test_send_in_wrong_module_rejected(self):
        cip = build()
        cip.modules["cons"].net.add_transition({"q0"}, send("ch", "v"), {"q1"})
        with pytest.raises(ValueError, match="direction"):
            cip.validate()

    def test_undeclared_channel_rejected(self):
        cip = build()
        cip.modules["prod"].net.add_transition({"p0"}, send("ghost"), {"p0"})
        with pytest.raises(ValueError, match="undeclared channel"):
            cip.validate()

    def test_undeclared_value_rejected(self):
        cip = build()
        cip.modules["prod"].net.add_transition({"p0"}, send("ch", "zz"), {"p0"})
        with pytest.raises(ValueError, match="value"):
            cip.validate()

    def test_wire_must_be_output_of_driver(self):
        cip = build()
        cip.add_wire("done", "prod", "cons")
        with pytest.raises(ValueError, match="not an output"):
            cip.validate()

    def test_two_drivers_rejected(self):
        cip = build()
        cip.modules["prod"].outputs.add("done")
        with pytest.raises(ValueError, match="driven by both"):
            cip.validate()


class TestComposition:
    def test_rendez_vous_synchronizes_channel(self):
        composed = build().compose_all()
        language = bounded_language(composed.net, 2)
        # The send and receive fuse: one 'ch!v' event, then 'done+'.
        assert (send("ch", "v"),) in language
        assert (send("ch", "v"), "done+") in language
        # Two sends in a row impossible: the consumer must cycle first.
        assert (send("ch", "v"), send("ch", "v")) not in language

    def test_channel_actions_listed(self):
        assert build().channel_actions() == {send("ch", "v"), receive("ch", "v")}

    def test_empty_cip_rejected(self):
        with pytest.raises(ValueError):
            Cip().compose_all()
