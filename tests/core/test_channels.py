"""Tests for channel actions and delay-insensitive encodings."""

import pytest

from repro.core.channels import (
    Encoding,
    dual_rail,
    is_channel_action,
    m_of_n,
    matching_action,
    one_hot,
    parse_channel_action,
    receive,
    send,
)


class TestActions:
    def test_send_receive_labels(self):
        assert send("c") == "c!"
        assert receive("c") == "c?"
        assert send("c", "v1") == "c!v1"
        assert receive("c", "v1") == "c?v1"

    def test_is_channel_action(self):
        assert is_channel_action("c!")
        assert is_channel_action("c?v")
        assert not is_channel_action("a+")
        assert not is_channel_action("eps")
        assert not is_channel_action("!x")

    def test_parse(self):
        assert parse_channel_action("c!v1") == ("c", "!", "v1")
        assert parse_channel_action("chan?") == ("chan", "?", "")

    def test_parse_rejects_non_channel(self):
        with pytest.raises(ValueError):
            parse_channel_action("a+")

    def test_matching_action(self):
        assert matching_action("c!v") == "c?v"
        assert matching_action("c?") == "c!"


class TestEncoding:
    def test_sperner_condition(self):
        """The paper: 'an encoding is correct when no encoding covers
        another'."""
        good = Encoding.of({"a": {"w1"}, "b": {"w2"}})
        assert good.is_valid()
        bad = Encoding.of({"a": {"w1"}, "b": {"w1", "w2"}})
        assert not bad.is_valid()
        assert bad.covering_pairs() == [("a", "b")]

    def test_duplicate_codes_invalid(self):
        assert not Encoding.of({"a": {"w"}, "b": {"w"}}).is_valid()

    def test_decode(self):
        encoding = one_hot("c", ["x", "y"])
        assert encoding.decode({"c_x"}) == "x"
        assert encoding.decode({"c_x", "c_y"}) is None

    def test_wires_union(self):
        encoding = one_hot("c", ["x", "y"])
        assert encoding.wires() == {"c_x", "c_y"}


class TestStandardEncodings:
    def test_dual_rail_is_valid(self):
        encoding = dual_rail("d", 2)
        assert encoding.is_valid()
        assert len(encoding.values()) == 4
        # 2 bits -> 4 wires, each code uses exactly 2.
        assert len(encoding.wires()) == 4
        assert all(len(code) == 2 for _, code in encoding.codes)

    def test_dual_rail_codes(self):
        encoding = dual_rail("d", 1)
        assert encoding.code_of("0") == {"d_b0f"}
        assert encoding.code_of("1") == {"d_b0t"}

    def test_one_hot_valid(self):
        assert one_hot("c", ["a", "b", "c"]).is_valid()

    def test_m_of_n_counts(self):
        """The paper's point: m-of-n codes need fewer wires than dual
        rail (2-of-4 carries 6 values on 4 wires; dual rail would need
        6 wires for 3 bits... the antichain property holds)."""
        encoding = m_of_n("c", 2, 4)
        assert encoding.is_valid()
        assert len(encoding.values()) == 6
        assert len(encoding.wires()) == 4

    def test_m_of_n_validation(self):
        with pytest.raises(ValueError):
            m_of_n("c", 0, 3)
        with pytest.raises(ValueError):
            m_of_n("c", 4, 3)

    def test_1_of_n_equals_one_hot_shape(self):
        encoding = m_of_n("c", 1, 3)
        assert len(encoding.values()) == 3
        assert all(len(code) == 1 for _, code in encoding.codes)
