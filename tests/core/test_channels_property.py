"""Property-based tests for encodings and the marking algebra."""

from hypothesis import given, settings, strategies as st

from repro.core.channels import Encoding, dual_rail, m_of_n
from repro.petri.marking import Marking

RELAXED = settings(max_examples=150, deadline=None)

WIRES = ["w0", "w1", "w2", "w3"]

codes = st.dictionaries(
    st.sampled_from(["u", "v", "x", "y"]),
    st.frozensets(st.sampled_from(WIRES), min_size=1, max_size=3),
    min_size=1,
    max_size=4,
)


@RELAXED
@given(mapping=codes)
def test_validity_matches_bruteforce_antichain(mapping):
    """Encoding.is_valid() agrees with a direct antichain check."""
    encoding = Encoding.of(mapping)
    values = list(mapping)
    brute = True
    for i, first in enumerate(values):
        for second in values[i + 1 :]:
            a, b = mapping[first], mapping[second]
            if a <= b or b <= a:
                brute = False
    assert encoding.is_valid() == brute


@RELAXED
@given(mapping=codes)
def test_decode_roundtrip_for_valid_encodings(mapping):
    encoding = Encoding.of(mapping)
    if not encoding.is_valid():
        return
    for value, code in mapping.items():
        assert encoding.decode(set(code)) == value


@RELAXED
@given(bits=st.integers(1, 4))
def test_dual_rail_always_valid(bits):
    encoding = dual_rail("c", bits)
    assert encoding.is_valid()
    assert len(encoding.values()) == 2**bits
    assert len(encoding.wires()) == 2 * bits


@RELAXED
@given(n=st.integers(1, 5), m=st.integers(1, 5))
def test_m_of_n_always_valid(n, m):
    if m > n:
        return
    encoding = m_of_n("c", m, n)
    assert encoding.is_valid()
    import math

    assert len(encoding.values()) == math.comb(n, m)


# -- marking algebra ---------------------------------------------------------

markings = st.dictionaries(
    st.sampled_from(["p", "q", "r"]), st.integers(0, 3), max_size=3
).map(Marking)

place_lists = st.lists(st.sampled_from(["p", "q", "r"]), max_size=3)


@RELAXED
@given(marking=markings, places=place_lists)
def test_add_remove_inverse(marking, places):
    assert marking.add(places).remove(places) == marking


@RELAXED
@given(marking=markings, places=place_lists)
def test_add_increases_total(marking, places):
    assert marking.add(places).total() == marking.total() + len(places)


@RELAXED
@given(first=markings, second=markings)
def test_covers_is_a_partial_order(first, second):
    assert first.covers(first)
    if first.covers(second) and second.covers(first):
        assert first == second


@RELAXED
@given(marking=markings)
def test_rename_identity(marking):
    assert marking.rename({}) == marking


@RELAXED
@given(marking=markings)
def test_restrict_then_total(marking):
    kept = marking.restrict(["p"])
    assert kept.total() == marking["p"]
