"""Tests for abstract-event expansion (Section 3)."""

import pytest

from repro.core.channels import dual_rail, one_hot, receive, send
from repro.core.cip import ChannelSpec, Cip
from repro.core.expansion import (
    channel_wires,
    expand_cip,
    expand_module,
    expand_transition,
    four_phase_stages,
    two_phase_stages,
)
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.petri.traces import bounded_language, observable_language
from repro.stg.stg import Stg, compose
from repro.verify.language import languages_equal


class TestStages:
    def test_four_phase_single_wire(self):
        assert four_phase_stages(["r"], "a") == [
            ["r+"],
            ["a+"],
            ["r-"],
            ["a-"],
        ]

    def test_four_phase_coded(self):
        """The paper's data expansion: (.., r_j+, ..) -> a+ -> (..) -> a-."""
        stages = four_phase_stages(["w1", "w2"], "a")
        assert stages[0] == ["w1+", "w2+"]
        assert stages[1] == ["a+"]
        assert stages[2] == ["w1-", "w2-"]

    def test_two_phase(self):
        assert two_phase_stages(["r"], "a") == [["r~"], ["a~"]]


class TestExpandTransition:
    def test_sequence_replaces_transition(self):
        net = PetriNet()
        t = net.add_transition({"p"}, "c!", {"q"})
        net.set_initial(Marking({"p": 1}))
        expanded = expand_transition(net, t.tid, [["r+"], ["a+"], ["r-"], ["a-"]])
        assert not expanded.transitions_with_action("c!")
        assert bounded_language(expanded, 4) == {
            (),
            ("r+",),
            ("r+", "a+"),
            ("r+", "a+", "r-"),
            ("r+", "a+", "r-", "a-"),
        }

    def test_concurrent_stage_interleaves(self):
        net = PetriNet()
        t = net.add_transition({"p"}, "c!", {"q"})
        net.set_initial(Marking({"p": 1}))
        expanded = expand_transition(net, t.tid, [["w1+", "w2+"], ["a+"]])
        language = observable_language(bounded_language(expanded, 5))
        assert ("w1+", "w2+", "a+") in language
        assert ("w2+", "w1+", "a+") in language
        # a+ only after both rises.
        assert ("w1+", "a+") not in language

    def test_empty_stages_rejected(self):
        net = PetriNet()
        t = net.add_transition({"p"}, "c!", {"q"})
        with pytest.raises(ValueError):
            expand_transition(net, t.tid, [])

    def test_original_pre_post_preserved(self):
        """The expansion chain starts at the old preset and ends at the
        old postset, keeping the surrounding structure intact."""
        net = PetriNet()
        net.add_transition({"s"}, "x+", {"p"})
        t = net.add_transition({"p"}, "c!", {"q"})
        net.add_transition({"q"}, "y+", {"s"})
        net.set_initial(Marking({"s": 1}))
        expanded = expand_transition(net, t.tid, [["r~"], ["a~"]])
        language = observable_language(bounded_language(expanded, 4))
        assert ("x+", "r~", "a~", "y+") in language


class TestChannelWires:
    def test_bare_channel(self):
        spec = ChannelSpec("c", "s", "r")
        codes, ack = channel_wires(spec)
        assert codes == {"": ["c_r"]}
        assert ack == "c_a"

    def test_valued_channel_default_one_hot(self):
        spec = ChannelSpec("c", "s", "r", values=("x", "y"))
        codes, _ = channel_wires(spec)
        assert codes == {"x": ["c_x"], "y": ["c_y"]}

    def test_invalid_encoding_rejected(self):
        from repro.core.channels import Encoding

        spec = ChannelSpec("c", "s", "r", values=("x", "y"))
        bad = Encoding.of({"x": {"w1"}, "y": {"w1", "w2"}})
        with pytest.raises(ValueError, match="antichain"):
            channel_wires(spec, bad)

    def test_missing_codes_rejected(self):
        spec = ChannelSpec("c", "s", "r", values=("x", "y"))
        with pytest.raises(ValueError, match="lacks codes"):
            channel_wires(spec, one_hot("c", ["x"]))


def sync_pair() -> tuple[Stg, Stg, ChannelSpec]:
    sender_net = PetriNet("tx")
    sender_net.add_transition({"p0"}, send("c"), {"p1"})
    sender_net.add_transition({"p1"}, "t+", {"p0"})
    sender_net.set_initial(Marking({"p0": 1}))
    tx = Stg(sender_net, outputs={"t"})
    receiver_net = PetriNet("rx")
    receiver_net.add_transition({"q0"}, receive("c"), {"q1"})
    receiver_net.add_transition({"q1"}, "u+", {"q0"})
    receiver_net.set_initial(Marking({"q0": 1}))
    rx = Stg(receiver_net, outputs={"u"})
    return tx, rx, ChannelSpec("c", "tx", "rx")


class TestExpandModule:
    def test_sender_io_direction(self):
        tx, _, spec = sync_pair()
        expanded = expand_module(tx, spec, "sender")
        assert "c_r" in expanded.outputs
        assert "c_a" in expanded.inputs

    def test_receiver_io_direction(self):
        _, rx, spec = sync_pair()
        expanded = expand_module(rx, spec, "receiver")
        assert "c_r" in expanded.inputs
        assert "c_a" in expanded.outputs

    def test_expansion_preserves_rendez_vous(self):
        """Composing the two expanded modules yields the full 4-phase
        handshake exactly where the abstract rendez-vous was."""
        tx, rx, spec = sync_pair()
        composed = compose(
            expand_module(tx, spec, "sender"),
            expand_module(rx, spec, "receiver"),
        )
        language = observable_language(bounded_language(composed.net, 6))
        assert ("c_r+", "c_a+", "c_r-", "c_a-", "t+", "u+") in language or (
            "c_r+",
            "c_a+",
            "c_r-",
            "c_a-",
            "u+",
            "t+",
        ) in language

    def test_two_phase_protocol(self):
        tx, rx, spec = sync_pair()
        composed = compose(
            expand_module(tx, spec, "sender", protocol="two_phase"),
            expand_module(rx, spec, "receiver", protocol="two_phase"),
        )
        language = observable_language(bounded_language(composed.net, 4))
        assert ("c_r~", "c_a~") in {t[:2] for t in language if len(t) >= 2}

    def test_early_ack_protocol(self):
        """four_phase_early: the ack pulse completes before the request
        falls; the rendez-vous still composes deadlock-free."""
        from repro.petri.reachability import ReachabilityGraph

        tx, rx, spec = sync_pair()
        composed = compose(
            expand_module(tx, spec, "sender", protocol="four_phase_early"),
            expand_module(rx, spec, "receiver", protocol="four_phase_early"),
        )
        graph = ReachabilityGraph(composed.net)
        assert graph.is_deadlock_free()
        language = observable_language(bounded_language(composed.net, 4))
        assert ("c_r+", "c_a+", "c_a-", "c_r-") in language

    def test_early_ack_valued_receiver(self):
        from repro.petri.reachability import ReachabilityGraph

        net = PetriNet("rx")
        net.add_transition({"q0"}, receive("c"), {"q0"})
        net.set_initial(Marking({"q0": 1}))
        rx = Stg(net)
        tx_net = PetriNet("tx")
        tx_net.add_transition({"p0"}, send("c", "x"), {"p0"})
        tx_net.set_initial(Marking({"p0": 1}))
        tx = Stg(tx_net)
        spec = ChannelSpec("c", "tx", "rx", values=("x", "y"))
        composed = compose(
            expand_module(tx, spec, "sender", protocol="four_phase_early"),
            expand_module(rx, spec, "receiver", protocol="four_phase_early"),
        )
        assert ReachabilityGraph(composed.net).is_deadlock_free()

    def test_generic_receive_expands_to_value_choice(self):
        net = PetriNet("rx")
        net.add_transition({"q0"}, receive("c"), {"q1"})
        net.set_initial(Marking({"q0": 1}))
        rx = Stg(net)
        spec = ChannelSpec("c", "tx", "rx", values=("x", "y"))
        expanded = expand_module(rx, spec, "receiver")
        language = observable_language(bounded_language(expanded.net, 2))
        assert ("c_x+",) in language
        assert ("c_y+",) in language

    def test_dual_rail_data_expansion(self):
        net = PetriNet("tx")
        net.add_transition({"p0"}, send("d", "10"), {"p0"})
        net.set_initial(Marking({"p0": 1}))
        tx = Stg(net)
        spec = ChannelSpec("d", "tx", "rx", values=("10",))
        encoding = dual_rail("d", 2)
        expanded = expand_module(tx, spec, "sender", encoding=encoding)
        language = observable_language(bounded_language(expanded.net, 3))
        rises = {frozenset(t) for t in language if len(t) == 2}
        assert frozenset({"d_b0f+", "d_b1t+"}) in rises  # code of '10'


class TestExpandCip:
    def test_channels_become_wires(self):
        tx, rx, _ = sync_pair()
        cip = Cip("demo")
        cip.add_module("tx", tx)
        cip.add_module("rx", rx)
        cip.add_channel("c", "tx", "rx")
        expanded = expand_cip(cip)
        assert not expanded.channels
        assert {"c_r", "c_a"} <= set(expanded.wires)
        expanded.validate()

    def test_expanded_composition_equals_abstract_composition(self):
        """The expansion is an implementation of the rendez-vous: hiding
        the handshake wires from the expanded composition gives back the
        abstract composition with the channel event erased."""
        from repro.stg.stg import hide_signals

        tx, rx, _ = sync_pair()
        cip = Cip("demo")
        cip.add_module("tx", tx)
        cip.add_module("rx", rx)
        cip.add_channel("c", "tx", "rx")
        abstract = cip.compose_all()
        concrete = expand_cip(cip).compose_all()
        hidden_concrete = hide_signals(
            Stg(
                concrete.net,
                inputs=concrete.inputs,
                outputs=concrete.outputs | {"c_r", "c_a"} - concrete.inputs,
                internals=concrete.internals,
            ),
            {"c_r", "c_a"},
        )
        from repro.algebra.hide import hide

        abstract_hidden = hide(abstract.net, send("c"))
        assert languages_equal(hidden_concrete.net, abstract_hidden)
