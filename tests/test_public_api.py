"""Sanity net for the public API: everything the docs promise imports
and every ``__all__`` name resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.petri",
    "repro.algebra",
    "repro.stg",
    "repro.core",
    "repro.verify",
    "repro.synth",
    "repro.models",
    "repro.io",
    "repro.obs",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_all_resolves(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} has no module docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_unique(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert len(exported) == len(set(exported)), f"duplicates in {package}.__all__"


def test_readme_quickstart_runs():
    """The README's quickstart block, executed verbatim."""
    from repro.models.library import four_phase_master, four_phase_slave
    from repro.stg.stg import compose, hide_signals
    from repro.synth.implementation import synthesize
    from repro.verify.receptiveness import check_receptiveness

    master, slave = four_phase_master(), four_phase_slave()
    report = check_receptiveness(master, slave)
    assert report.is_receptive()
    system = compose(master, slave)
    observable = hide_signals(system, {"a"})
    assert observable.signals() == {"r"}
    assert synthesize(slave).netlist() == "a = r"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_shortcuts():
    """The convenience re-exports at the package root work together."""
    import repro

    net = repro.PetriNet("demo")
    net.add_transition({"p"}, "a", {"q"})
    net.set_initial(repro.Marking({"p": 1}))
    assert repro.ReachabilityGraph(net).num_states() == 2
    prefixed = repro.prefix(net, "z")
    assert "z" in prefixed.actions
