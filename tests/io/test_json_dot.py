"""Tests for JSON round-trips and DOT export."""

import json

import pytest

from repro.io.dot import cip_to_dot, net_to_dot, stg_to_dot
from repro.io.json_io import dumps, load, loads, save
from repro.models.library import four_phase_master, mutex_arbiter
from repro.models.protocol_translator import translator
from repro.verify.language import languages_equal


class TestJson:
    def test_round_trip_simple(self):
        original = four_phase_master()
        restored = loads(dumps(original))
        assert restored.inputs == original.inputs
        assert restored.outputs == original.outputs
        assert restored.net.initial == original.net.initial
        assert languages_equal(original.net, restored.net)

    def test_round_trip_with_guards_and_x_values(self):
        original = translator()
        restored = loads(dumps(original))
        assert restored.initial_values["DATA"] is None
        assert len(restored.net.input_guards) == len(
            original.net.input_guards
        )
        assert restored.net.stats() == original.net.stats()

    def test_guard_survives_semantically(self):
        from repro.stg.state_graph import build_state_graph

        original = translator()
        restored = loads(dumps(original))
        assert (
            build_state_graph(original).num_states()
            == build_state_graph(restored).num_states()
        )

    def test_output_is_valid_json(self):
        data = json.loads(dumps(four_phase_master()))
        assert data["net"]["name"] == "master"

    def test_version_check(self):
        data = json.loads(dumps(four_phase_master()))
        data["net"]["version"] = 99
        with pytest.raises(ValueError):
            loads(json.dumps(data))

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        save(four_phase_master(), str(path))
        assert load(str(path)).name == "master"


class TestDot:
    def test_net_dot_mentions_places_and_transitions(self):
        text = net_to_dot(four_phase_master().net)
        assert "digraph" in text
        assert '"p_m0"' in text
        assert "r+" in text

    def test_stg_dot_marks_inputs_dashed(self):
        text = stg_to_dot(four_phase_master())
        assert "style=dashed" in text  # a+ / a- are inputs

    def test_guards_appear_as_edge_labels(self):
        text = stg_to_dot(translator())
        assert "STROBE" in text and "DATA" in text

    def test_tokens_rendered(self):
        text = net_to_dot(mutex_arbiter().net)
        assert "●" in text

    def test_cip_block_diagram(self):
        from repro.models.protocol_translator import build_cip

        text = cip_to_dot(build_cip())
        assert '"sender" -> "translator"' in text
        assert '"translator" -> "receiver"' in text
