"""Exact round-trip properties for the lossless formats.

``parse(emit(net)) == net`` — structural identity via
:meth:`PetriNet.structurally_equal` plus STG field equality — for
``.json``, PNML and TINA ``.net``, on nets drawn from
:func:`tests.strategies.interop_nets`: hostile names (whitespace,
unicode, braces, ``->``, ``*``/``?`` suffixes, ``#``), isolated places,
non-safe markings and unused alphabet labels.

Arc weights > 1 are unrepresentable in the paper's set-based formalism,
so they cannot appear in generated nets; the *rejection* of weighted
input files is covered by the directed suites (``test_pnml.py`` /
``test_tina.py``).
"""

from hypothesis import given, settings

from repro.io.json_io import loads as json_loads, dumps as json_dumps
from repro.io.pnml import parse_pnml, write_pnml
from repro.io.tina import parse_tina, write_tina
from repro.stg.stg import Stg

from tests.strategies import interop_nets

ROUNDTRIPS = {
    "json": (lambda stg: json_loads(json_dumps(stg)), None),
    "pnml": (lambda stg: parse_pnml(write_pnml(stg)), None),
    "tina": (lambda stg: parse_tina(write_tina(stg)), None),
}


def assert_exact(stg: Stg, back: Stg, fmt: str) -> None:
    assert back.net.structurally_equal(stg.net), f"{fmt}: net differs"
    assert back.inputs == stg.inputs, f"{fmt}: inputs differ"
    assert back.outputs == stg.outputs, f"{fmt}: outputs differ"
    assert back.internals == stg.internals, f"{fmt}: internals differ"
    assert back.initial_values == stg.initial_values, (
        f"{fmt}: initial values differ"
    )


class TestExactRoundTrips:
    @settings(max_examples=120, deadline=None)
    @given(net=interop_nets())
    def test_json(self, net):
        stg = Stg(net)
        assert_exact(stg, json_loads(json_dumps(stg)), "json")

    @settings(max_examples=120, deadline=None)
    @given(net=interop_nets())
    def test_pnml(self, net):
        stg = Stg(net)
        assert_exact(stg, parse_pnml(write_pnml(stg)), "pnml")

    @settings(max_examples=120, deadline=None)
    @given(net=interop_nets())
    def test_tina(self, net):
        stg = Stg(net)
        assert_exact(stg, parse_tina(write_tina(stg)), "tina")


class TestStgFieldsSurvive:
    """Signal declarations, initial values and guards also round-trip
    (the ``# cip:`` / toolspecific carriers)."""

    @settings(max_examples=60, deadline=None)
    @given(net=interop_nets())
    def test_signal_sets(self, net):
        from repro.stg.guards import parse_guard

        stg = Stg(
            net,
            inputs={"sig_a"},
            outputs={"sig_b"},
            internals={"sig_c"},
            initial_values={"sig_a": 1, "sig_b": None},
        )
        if net.transitions:
            tid, transition = sorted(net.transitions.items())[0]
            if transition.preset:
                place = sorted(transition.preset)[0]
                net.set_guard(place, tid, parse_guard("(sig_a & !sig_b)"))
        for fmt, (roundtrip, _) in ROUNDTRIPS.items():
            assert_exact(stg, roundtrip(stg), fmt)


class TestCorpusRoundTrips:
    """Every checked-in corpus net survives a round trip through every
    lossless format (cross-format: parse any, re-emit all)."""

    def test_corpus_cross_format(self, corpus_paths):
        from repro.io.formats import load_stg

        for path in corpus_paths:
            stg = load_stg(str(path))
            for fmt, (roundtrip, _) in ROUNDTRIPS.items():
                assert_exact(stg, roundtrip(stg), f"{path.name} via {fmt}")
