"""Directed TINA ``.net`` tests: the published grammar (brace quoting,
markings, labels), foreign-file defaults, and loud rejection of arc
weights, read/inhibitor arcs and timed transitions."""

import pytest

from repro.io.tina import TinaFormatError, parse_tina, write_tina


class TestGrammar:
    def test_minimal_net(self):
        stg = parse_tina("net n\ntr t0 p0 -> p1\npl p0 (1)\n")
        assert stg.net.name == "n"
        assert stg.net.places == {"p0", "p1"}
        assert stg.net.initial["p0"] == 1

    def test_brace_quoted_names(self):
        stg = parse_tina(
            "net {two words}\n"
            "tr t0 : {a label} {pl ace} -> {esc\\{aped\\}}\n"
        )
        assert stg.net.name == "two words"
        assert stg.net.places == {"pl ace", "esc{aped}"}
        assert [t.action for t in stg.net.sorted_transitions()] == ["a label"]

    def test_label_defaults_to_transition_name(self):
        stg = parse_tina("net n\ntr fire p0 -> p1\n")
        assert [t.action for t in stg.net.sorted_transitions()] == ["fire"]

    def test_numeric_names_become_tids(self):
        stg = parse_tina("net n\ntr t5 p -> q\ntr go q -> p\n")
        assert set(stg.net.transitions) == {5, 6}

    def test_weight_one_accepted(self):
        stg = parse_tina("net n\ntr t0 p*1 -> q\n")
        assert stg.net.places == {"p", "q"}

    def test_kilo_marking(self):
        stg = parse_tina("net n\ntr t0 p -> q\npl p (2K)\n")
        assert stg.net.initial["p"] == 2000

    def test_comments_and_blank_lines(self):
        stg = parse_tina("# header\nnet n\n\ntr t0 p -> q # trailing\n")
        assert stg.net.places == {"p", "q"}

    def test_place_label_ignored(self):
        stg = parse_tina("net n\ntr t0 p -> q\npl p : {a label} (1)\n")
        assert stg.net.initial["p"] == 1

    def test_signal_shaped_labels_become_outputs(self):
        stg = parse_tina("net n\ntr t0 : req+ p -> q\n")
        assert stg.outputs == {"req"}

    def test_empty_presets_and_postsets(self):
        stg = parse_tina("net n\ntr t0 : go p ->\npl p (1)\n")
        (transition,) = stg.net.sorted_transitions()
        assert transition.postset == frozenset()


class TestRejection:
    def reject(self, text: str, match: str) -> None:
        with pytest.raises(TinaFormatError, match=match):
            parse_tina(text)

    def test_arc_weight(self):
        self.reject("net n\ntr t0 p*2 -> q\n", "weight 2")

    def test_kilo_arc_weight(self):
        self.reject("net n\ntr t0 p*3K -> q\n", "weight 3000")

    def test_inhibitor_arc(self):
        self.reject("net n\ntr t0 p?-1 -> q\n", "inhibitor")

    def test_read_arc(self):
        self.reject("net n\ntr t0 p?1 -> q\n", "inhibitor")

    def test_timed_transition(self):
        self.reject("net n\ntr t0 [0,w[ p -> q\n", "timed")

    def test_missing_arrow(self):
        self.reject("net n\ntr t0 p q\n", "no '->'")

    def test_duplicate_arc(self):
        self.reject("net n\ntr t0 p p -> q\n", "duplicate arc")

    def test_duplicate_transition(self):
        self.reject("net n\ntr t0 p -> q\ntr t0 q -> p\n", "duplicate")

    def test_duplicate_place(self):
        self.reject("net n\npl p (1)\npl p (2)\n", "duplicate place")

    def test_unterminated_brace(self):
        self.reject("net n\ntr t0 {open -> q\n", "unterminated")

    def test_unsupported_directive(self):
        self.reject("net n\npr t0 > t1\n", "unsupported directive")

    def test_priority_like_garbage(self):
        self.reject("this is not a net file\n", "unsupported directive")

    def test_empty_file(self):
        self.reject("# only a comment\n", "no net")

    def test_negative_marking(self):
        self.reject("net n\npl p (-1)\n", "negative|malformed")


class TestWriterRejection:
    def test_newline_in_name_refused(self):
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("n")
        net.add_place("a\nb")
        with pytest.raises(TinaFormatError, match="cannot be represented"):
            write_tina(Stg(net))
