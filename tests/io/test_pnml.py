"""Directed PNML tests: foreign-file defaults and loud rejection of the
unsupported feature space (weights, arc types, HL nets, references)."""

import pytest

from repro.io.pnml import PnmlFormatError, parse_pnml, write_pnml

NS = 'xmlns="http://www.pnml.org/version-2009/grammar/pnml"'


def doc(body: str) -> str:
    return f'<pnml {NS}><net id="n1"><page id="g1">{body}</page></net></pnml>'


class TestForeignFiles:
    def test_ids_fall_back_as_names_and_labels(self):
        stg = parse_pnml(
            doc(
                '<place id="p0"><initialMarking><text>1</text></initialMarking>'
                '</place><transition id="go"/>'
                '<arc id="a0" source="p0" target="go"/>'
            )
        )
        assert stg.net.places == {"p0"}
        assert [t.action for t in stg.net.sorted_transitions()] == ["go"]
        assert stg.net.initial["p0"] == 1

    def test_signal_shaped_labels_become_outputs(self):
        stg = parse_pnml(
            doc(
                '<place id="p0"/><transition id="t0">'
                "<name><text>req+</text></name></transition>"
                '<arc id="a0" source="p0" target="t0"/>'
            )
        )
        assert stg.outputs == {"req"}

    def test_numeric_transition_ids_become_tids(self):
        stg = parse_pnml(
            doc(
                '<place id="p0"/>'
                '<transition id="t7"/><transition id="other"/>'
            )
        )
        assert set(stg.net.transitions) == {7, 8}

    def test_unnamespaced_and_bare_net_accepted(self):
        stg = parse_pnml('<net id="n"><place id="p0"/></net>')
        assert stg.net.places == {"p0"}

    def test_multi_token_marking(self):
        stg = parse_pnml(
            doc('<place id="p0"><initialMarking><text>3</text>'
                "</initialMarking></place>")
        )
        assert stg.net.initial["p0"] == 3

    def test_foreign_toolspecific_is_skipped(self):
        stg = parse_pnml(
            doc(
                '<place id="p0"/><toolspecific tool="tina" version="1">'
                "<anything/></toolspecific>"
            )
        )
        assert stg.net.places == {"p0"}


class TestRejection:
    def reject(self, body: str, match: str) -> None:
        with pytest.raises(PnmlFormatError, match=match):
            parse_pnml(doc(body))

    def test_truncated_xml(self):
        with pytest.raises(PnmlFormatError, match="malformed XML"):
            parse_pnml('<pnml><net id="n"><place id=')

    def test_arc_weight(self):
        self.reject(
            '<place id="p0"/><transition id="t0"/>'
            '<arc id="a0" source="p0" target="t0">'
            "<inscription><text>2</text></inscription></arc>",
            "weight 2",
        )

    def test_duplicate_arc_is_weight_two(self):
        self.reject(
            '<place id="p0"/><transition id="t0"/>'
            '<arc id="a0" source="p0" target="t0"/>'
            '<arc id="a1" source="p0" target="t0"/>',
            "duplicate arc",
        )

    def test_inhibitor_arc_type(self):
        self.reject(
            '<place id="p0"/><transition id="t0"/>'
            '<arc id="a0" source="p0" target="t0">'
            '<type value="inhibitor"/></arc>',
            "inhibitor",
        )

    def test_reference_place(self):
        self.reject('<referencePlace id="r0" ref="p0"/>', "referencePlace")

    def test_high_level_declaration(self):
        self.reject("<declaration/>", "high-level")

    def test_negative_marking(self):
        self.reject(
            '<place id="p0"><initialMarking><text>-1</text>'
            "</initialMarking></place>",
            "negative",
        )

    def test_arc_to_unknown_node(self):
        self.reject(
            '<place id="p0"/><arc id="a0" source="p0" target="ghost"/>',
            "unknown id",
        )

    def test_place_place_arc(self):
        self.reject(
            '<place id="p0"/><place id="p1"/>'
            '<arc id="a0" source="p0" target="p1"/>',
            "place",
        )

    def test_duplicate_ids(self):
        self.reject('<place id="p0"/><place id="p0"/>', "duplicate id")

    def test_duplicate_place_names(self):
        self.reject(
            '<place id="p0"><name><text>x</text></name></place>'
            '<place id="p1"><name><text>x</text></name></place>',
            "share the name",
        )

    def test_two_nets(self):
        with pytest.raises(PnmlFormatError, match="exactly one"):
            parse_pnml(f'<pnml {NS}><net id="a"/><net id="b"/></pnml>')

    def test_wrong_root(self):
        with pytest.raises(PnmlFormatError, match="expected a <pnml>"):
            parse_pnml("<html/>")


class TestWriterRejection:
    def test_control_characters_refused(self):
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("n")
        net.add_place("bad\x00name")
        with pytest.raises(PnmlFormatError, match="cannot carry"):
            write_pnml(Stg(net))

    def test_carriage_return_refused(self):
        # XML parsers normalise \r to \n — a silent rename, so refuse.
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("n")
        net.add_place("a\rb")
        with pytest.raises(PnmlFormatError, match="cannot carry"):
            write_pnml(Stg(net))
