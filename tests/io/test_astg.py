"""Tests for the .g (astg) reader/writer."""

import pytest

from repro.io.astg import AstgFormatError, parse_astg, write_astg
from repro.models.library import four_phase_master, muller_c_element
from repro.petri.net import EPSILON
from repro.verify.language import languages_equal

SIMPLE = """
.model handshake
.inputs a
.outputs r
.graph
p0 r+
r+ p1
p1 a+
a+ p2
p2 r-
r- p3
p3 a-
a- p0
.marking { p0 }
.end
"""

IMPLICIT = """
.model chain
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
"""


class TestParse:
    def test_simple_model(self):
        stg = parse_astg(SIMPLE)
        assert stg.name == "handshake"
        assert stg.inputs == {"a"}
        assert stg.outputs == {"r"}
        assert len(stg.net.places) == 4
        assert len(stg.net.transitions) == 4
        assert stg.net.initial["p0"] == 1

    def test_implicit_places(self):
        stg = parse_astg(IMPLICIT)
        assert len(stg.net.transitions) == 4
        # 4 transition-to-transition arcs -> 4 implicit places.
        assert len(stg.net.places) == 4
        assert stg.net.initial.total() == 1

    def test_comments_and_blank_lines(self):
        stg = parse_astg("# header\n" + SIMPLE + "\n# trailer\n")
        assert stg.name == "handshake"

    def test_dummy_events(self):
        text = """
.model d
.outputs z
.dummy e1
.graph
p0 e1
e1 p1
p1 z+
z+ p0
.marking { p0 }
.end
"""
        stg = parse_astg(text)
        assert stg.net.transitions_with_action(EPSILON)

    def test_instance_notation(self):
        text = """
.model twice
.outputs z
.graph
p0 z+
z+ p1
p1 z-
z- p2
p2 z+/2
z+/2 p3
p3 z-/2
z-/2 p0
.marking { p0 }
.end
"""
        stg = parse_astg(text)
        assert len(stg.net.transitions_with_action("z+")) == 2

    def test_marking_with_counts(self):
        text = SIMPLE.replace("{ p0 }", "{ p0=2 }")
        assert parse_astg(text).net.initial["p0"] == 2

    def test_unknown_directive_rejected(self):
        with pytest.raises(AstgFormatError):
            parse_astg(".bogus x\n")

    def test_line_outside_graph_rejected(self):
        with pytest.raises(AstgFormatError):
            parse_astg("p0 p1\n")

    def test_marking_can_declare_isolated_place(self):
        """A marked place with no arcs only appears in the marking; it
        is declared there (needed for round-tripping nets with isolated
        marked places, e.g. the nil process)."""
        stg = parse_astg(SIMPLE.replace("{ p0 }", "{ nowhere }"))
        assert "nowhere" in stg.net.places
        assert stg.net.initial["nowhere"] == 1

    def test_marking_naming_a_transition_rejected(self):
        with pytest.raises(AstgFormatError):
            parse_astg(SIMPLE.replace("{ p0 }", "{ r+ }"))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "stg_factory", [four_phase_master, muller_c_element]
    )
    def test_language_preserved(self, stg_factory):
        original = stg_factory()
        reparsed = parse_astg(write_astg(original))
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert languages_equal(original.net, reparsed.net)

    def test_epsilon_round_trip(self):
        from repro.petri.marking import Marking
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("withdummy")
        net.add_transition({"p0"}, EPSILON, {"p1"})
        net.add_transition({"p1"}, "z+", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        original = Stg(net, outputs={"z"})
        reparsed = parse_astg(write_astg(original))
        assert languages_equal(original.net, reparsed.net)

    def test_multi_instance_round_trip(self):
        from repro.petri.marking import Marking
        from repro.petri.net import PetriNet
        from repro.stg.stg import Stg

        net = PetriNet("multi")
        net.add_transition({"p0"}, "z+", {"p1"})
        net.add_transition({"p1"}, "z-", {"p2"})
        net.add_transition({"p2"}, "z+", {"p3"})
        net.add_transition({"p3"}, "z-", {"p0"})
        net.set_initial(Marking({"p0": 1}))
        original = Stg(net, outputs={"z"})
        reparsed = parse_astg(write_astg(original))
        assert languages_equal(original.net, reparsed.net)

    def test_file_round_trip(self, tmp_path):
        from repro.io.astg import load_astg, save_astg

        path = tmp_path / "m.g"
        save_astg(four_phase_master(), str(path))
        loaded = load_astg(str(path))
        assert loaded.name == "master"
