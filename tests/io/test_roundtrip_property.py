"""Property-based round-trip tests for the serialization formats."""

from hypothesis import HealthCheck, given, settings

from repro.io.astg import parse_astg, write_astg
from repro.io.json_io import dumps, loads
from repro.stg.stg import Stg
from repro.verify.language import languages_equal

from tests.strategies import bounded_nets

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)


def as_stg(net) -> Stg:
    """Wrap a random net as an STG with rise-labeled actions so the .g
    format (which requires signal events) can express it."""
    from repro.algebra.operators import rename

    mapping = {action: f"{action}+" for action in net.used_actions()}
    renamed = rename(net, mapping)
    signals = {action for action in net.used_actions()}
    return Stg(renamed, outputs=signals)


@RELAXED
@given(net=bounded_nets())
def test_astg_roundtrip_preserves_language(net):
    original = as_stg(net)
    reparsed = parse_astg(write_astg(original))
    assert reparsed.inputs == original.inputs
    assert reparsed.outputs == original.outputs
    assert languages_equal(original.net, reparsed.net, max_states=20_000)


@RELAXED
@given(net=bounded_nets())
def test_astg_roundtrip_preserves_marking_total(net):
    original = as_stg(net)
    reparsed = parse_astg(write_astg(original))
    assert reparsed.net.initial.total() == original.net.initial.total()


@RELAXED
@given(net=bounded_nets())
def test_json_roundtrip_is_exact(net):
    original = as_stg(net)
    restored = loads(dumps(original))
    assert restored.net.places == original.net.places
    assert restored.net.initial == original.net.initial
    assert {
        (t.preset, t.action, t.postset)
        for t in restored.net.transitions.values()
    } == {
        (t.preset, t.action, t.postset)
        for t in original.net.transitions.values()
    }


@RELAXED
@given(net=bounded_nets())
def test_json_then_astg_chain(net):
    """The two formats compose: JSON -> Stg -> .g -> Stg keeps the
    language."""
    original = as_stg(net)
    via_json = loads(dumps(original))
    via_both = parse_astg(write_astg(via_json))
    assert languages_equal(original.net, via_both.net, max_states=20_000)
