"""Behavioural equivalences beyond trace semantics.

The paper adopts trace semantics (Section 4), which identifies nets
that differ in deadlock or branching behaviour.  This module provides
the finer equivalences a verification flow needs to tell those apart:

* **strong bisimulation** on reachability graphs,
* **weak bisimulation** (silent labels abstracted),
* **failures semantics** (CSP-style failure pairs and refinement) —
  the natural setting for the paper's receptiveness discussion: a
  non-receptive composition shows up as a failure pair the
  specification does not allow.

All are computed on explicit reachability graphs, so they apply to
bounded nets.  The bisimulation entry points additionally accept an
``engine`` argument: ``"onthefly"`` (default) answers through the lazy
product engine whenever it can do so exactly (deterministic systems,
or a refuting trace difference) before paying for the eager graphs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.obs import metrics as obs
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.petri.product import (
    DEFAULT_ENGINE,
    compare_languages,
    deterministic_bisimulation,
    resolve_engine,
)
from repro.petri.reachability import ReachabilityGraph

Trace = tuple[str, ...]


class _Lts:
    """A finite labeled transition system extracted from a net."""

    def __init__(self, net: PetriNet, max_states: int, backend: str | None = None):
        graph = ReachabilityGraph(net, max_states=max_states, backend=backend)
        self.states: list[Marking] = sorted(graph.states, key=repr)
        self.index = {state: i for i, state in enumerate(self.states)}
        self.start = self.index[graph.initial]
        self.successors: list[dict[str, set[int]]] = [
            {} for _ in self.states
        ]
        for source, action, _, target in graph.edges:
            self.successors[self.index[source]].setdefault(action, set()).add(
                self.index[target]
            )
        self.labels = {a for row in self.successors for a in row}

    def weak_closure(self, silent: set[str]) -> list[set[int]]:
        """Per-state set of states reachable via silent steps (reflexive)."""
        closures: list[set[int]] = []
        for start in range(len(self.states)):
            seen = {start}
            queue = deque([start])
            while queue:
                state = queue.popleft()
                for label, targets in self.successors[state].items():
                    if label in silent:
                        for target in targets:
                            if target not in seen:
                                seen.add(target)
                                queue.append(target)
            closures.append(seen)
        return closures


def _partition_refinement(
    lts1: _Lts,
    lts2: _Lts,
    moves1: list[dict[str, set[int]]],
    moves2: list[dict[str, set[int]]],
) -> bool:
    """Kanellakis-Smolka style: refine a joint partition of the disjoint
    union of both state sets until stable; bisimilar iff the two start
    states share a block."""
    offset = len(lts1.states)
    total = offset + len(lts2.states)

    def moves(state: int) -> dict[str, set[int]]:
        if state < offset:
            return moves1[state]
        return {
            label: {t + offset for t in targets}
            for label, targets in moves2[state - offset].items()
        }

    block_of = [0] * total
    num_blocks = 1
    while True:
        signatures: dict[tuple, int] = {}
        new_block_of = [0] * total
        next_block = 0
        for state in range(total):
            signature_parts = []
            for label in sorted(set(moves(state))):
                targets = frozenset(
                    block_of[t] for t in moves(state)[label]
                )
                if targets:
                    signature_parts.append((label, targets))
            key = (block_of[state], tuple(signature_parts))
            if key not in signatures:
                signatures[key] = next_block
                next_block += 1
            new_block_of[state] = signatures[key]
        if next_block == num_blocks:
            break
        num_blocks = next_block
        block_of = new_block_of
    return block_of[lts1.start] == block_of[lts2.start + offset]


def _bisim_key(
    mode: str, net1: PetriNet, net2: PetriNet, silent: Iterable[str]
) -> str | None:
    """Verdict-memo key for a bisimulation check, ``None`` when caching
    is off or a net has opaque guards.  Keyed by check semantics only;
    engine/backend never change the verdict (strong bisimulation is
    engine-invariant by construction, and every engine path here is an
    exact decision procedure)."""
    from repro.cache import verdicts

    if verdicts.active_store() is None:
        return None
    if not (verdicts.hashable(net1) and verdicts.hashable(net2)):
        return None
    return verdicts.semantic_key(
        mode,
        verdicts.net_content_hash(net1),
        verdicts.net_content_hash(net2),
        sorted(set(silent)),
    )


def _bisim_lookup(cache_key: str | None, max_states: int) -> bool | None:
    from repro.cache import verdicts

    if cache_key is None:
        return None
    entry = verdicts.memo_lookup(verdicts.KIND, cache_key, max_states=max_states)
    if entry is None or "verdict" not in entry["result"]:
        return None
    return bool(entry["result"]["verdict"])


def _bisim_publish(
    cache_key: str | None, verdict: bool, max_states: int, engine: str
) -> None:
    from repro.cache import verdicts

    if cache_key is None:
        return
    verdicts.memo_store(
        verdicts.KIND,
        cache_key,
        {"verdict": verdict},
        conclusive=True,
        floor=max_states,
        proven_at=max_states,
        provenance={"engine": engine},
    )


def strongly_bisimilar(
    net1: PetriNet,
    net2: PetriNet,
    max_states: int = 100_000,
    engine: str = DEFAULT_ENGINE,
    backend: str | None = None,
) -> bool:
    """Strong bisimulation equivalence of two bounded nets' behaviours.

    With ``engine="onthefly"`` (default) the question is first put to
    the lazy product engine: a synchronous walk decides it exactly —
    with early exit and without materialising either state space — as
    long as both systems are deterministic, and a strong trace
    difference refutes bisimilarity even when they are not.  Only when
    neither shortcut is conclusive does the check fall back to the
    eager partition refinement (``engine="eager"`` goes there directly).
    ``engine="por"`` behaves like ``"onthefly"`` here: strong
    bisimulation observes every label, so no transition is invisible
    and the stubborn-set selector has nothing to reduce.
    """
    engine = resolve_engine(engine)
    cache_key = _bisim_key("bisim-strong", net1, net2, ())
    with obs.span("verify.bisim.strong", engine=engine) as span:
        hit = _bisim_lookup(cache_key, max_states)
        if hit is not None:
            span.set(verdict=hit, cached=True)
            return hit
        if engine != "eager":
            verdict, _ = deterministic_bisimulation(
                net1, net2, max_states, backend=backend
            )
            if verdict is not None:
                span.set(verdict=verdict)
                _bisim_publish(cache_key, verdict, max_states, engine)
                return verdict
            # Nondeterministic somewhere: strong trace inequality still
            # refutes bisimilarity (traces are coarser than bisimulation).
            if not compare_languages(
                net1,
                net2,
                mode="equal",
                silent=(),
                max_states=max_states,
                backend=backend,
            ).verdict:
                span.set(verdict=False)
                _bisim_publish(cache_key, False, max_states, engine)
                return False
        lts1 = _Lts(net1, max_states, backend=backend)
        lts2 = _Lts(net2, max_states, backend=backend)
        verdict = _partition_refinement(
            lts1, lts2, lts1.successors, lts2.successors
        )
        span.set(verdict=verdict)
        _bisim_publish(cache_key, verdict, max_states, engine)
        return verdict


def _weak_moves(lts: _Lts, silent: set[str]) -> list[dict[str, set[int]]]:
    """Weak transition relation: ``s =a=> t`` iff ``s -tau*- a -tau*- t``;
    additionally every state has a silent self-move (``s =eps=> closure``)."""
    closures = lts.weak_closure(silent)
    weak: list[dict[str, set[int]]] = []
    for state in range(len(lts.states)):
        row: dict[str, set[int]] = {}
        # Visible weak moves.
        for mid in closures[state]:
            for label, targets in lts.successors[mid].items():
                if label in silent:
                    continue
                bucket = row.setdefault(label, set())
                for target in targets:
                    bucket |= closures[target]
        # The silent weak move (always possible, reflexive).
        row[EPSILON] = set(closures[state])
        weak.append(row)
    return weak


def weakly_bisimilar(
    net1: PetriNet,
    net2: PetriNet,
    silent: Iterable[str] = (EPSILON,),
    max_states: int = 100_000,
    engine: str = DEFAULT_ENGINE,
    backend: str | None = None,
) -> bool:
    """Weak bisimulation equivalence with the given silent labels.

    ``engine="onthefly"`` first refutes via on-the-fly weak-language
    comparison (weak trace inequality implies non-bisimilarity, found
    with early exit); ``engine="por"`` runs that refutation under
    stubborn-set partial-order reduction (the weak language is exactly
    preserved, so the refutation stays sound).  A positive answer still
    requires the eager partition refinement over the weak transition
    relations.
    """
    engine = resolve_engine(engine)
    cache_key = _bisim_key("bisim-weak", net1, net2, silent)
    with obs.span("verify.bisim.weak", engine=engine) as span:
        hit = _bisim_lookup(cache_key, max_states)
        if hit is not None:
            span.set(verdict=hit, cached=True)
            return hit
        if engine != "eager":
            if not compare_languages(
                net1,
                net2,
                mode="equal",
                silent=silent,
                max_states=max_states,
                reduction=engine == "por",
                backend=backend,
            ).verdict:
                span.set(verdict=False)
                _bisim_publish(cache_key, False, max_states, engine)
                return False
        silent_set = set(silent)
        lts1 = _Lts(net1, max_states, backend=backend)
        lts2 = _Lts(net2, max_states, backend=backend)
        verdict = _partition_refinement(
            lts1, lts2, _weak_moves(lts1, silent_set), _weak_moves(lts2, silent_set)
        )
        span.set(verdict=verdict)
        _bisim_publish(cache_key, verdict, max_states, engine)
        return verdict


# -- failures semantics ------------------------------------------------------


def failures(
    net: PetriNet,
    silent: Iterable[str] = (EPSILON,),
    max_states: int = 100_000,
    max_trace_length: int | None = None,
    alphabet: Iterable[str] | None = None,
) -> frozenset[tuple[Trace, frozenset[str]]]:
    """The (finite) failure set: pairs ``(trace, refusal)`` where after
    some execution of ``trace`` the net can refuse the whole ``refusal``
    set (stable states only — no silent move pending).

    Only *maximal* refusal sets per (trace, stable state) are returned;
    subset-closure is implied.  ``max_trace_length`` defaults to the
    number of states (sufficient for distinguishing regular failures of
    deterministic-length counterexamples; raise for deep systems).
    ``alphabet`` widens the refusal universe beyond the net's own labels
    (needed when comparing nets with different alphabets).
    """
    silent_set = set(silent)
    lts = _Lts(net, max_states)
    closures = lts.weak_closure(silent_set)
    universe = set(alphabet) if alphabet is not None else set(lts.labels)
    visible = sorted((universe | lts.labels) - silent_set)
    limit = max_trace_length if max_trace_length is not None else len(lts.states)

    def stable(state: int) -> bool:
        return not any(
            label in silent_set for label in lts.successors[state]
        )

    result: set[tuple[Trace, frozenset[str]]] = set()
    # BFS over (state-set, trace) pairs; to keep the set finite we track
    # visited (stateset) per trace length and bound the trace length.
    start = frozenset(closures[lts.start])
    queue: deque[tuple[frozenset[int], Trace]] = deque([(start, ())])
    seen: set[tuple[frozenset[int], int]] = {(start, 0)}
    while queue:
        states, trace = queue.popleft()
        for state in states:
            if stable(state):
                offered = frozenset(
                    label
                    for label in lts.successors[state]
                    if label not in silent_set
                )
                refusal = frozenset(visible) - offered
                result.add((trace, refusal))
        if len(trace) >= limit:
            continue
        for label in visible:
            targets: set[int] = set()
            for state in states:
                for target in lts.successors[state].get(label, ()):
                    targets |= closures[target]
            if targets:
                key = (frozenset(targets), len(trace) + 1)
                if key not in seen:
                    seen.add(key)
                    queue.append((frozenset(targets), trace + (label,)))
    return frozenset(result)


def failures_refines(
    implementation: PetriNet,
    specification: PetriNet,
    silent: Iterable[str] = (EPSILON,),
    max_states: int = 100_000,
) -> bool:
    """CSP failures refinement: every failure of the implementation is
    allowed by the specification (traces and refusals both contained).

    Refusal containment is checked modulo subset closure: an
    implementation refusal is allowed if some specification refusal for
    the same trace contains it.
    """
    common = (implementation.actions | specification.actions) - set(silent)
    spec = failures(specification, silent, max_states, alphabet=common)
    spec_by_trace: dict[Trace, list[frozenset[str]]] = {}
    for trace, refusal in spec:
        spec_by_trace.setdefault(trace, []).append(refusal)
    for trace, refusal in failures(
        implementation, silent, max_states, alphabet=common
    ):
        allowed = spec_by_trace.get(trace)
        if allowed is None:
            return False
        if not any(refusal <= spec_refusal for spec_refusal in allowed):
            return False
    return True


def deadlock_traces(
    net: PetriNet,
    silent: Iterable[str] = (EPSILON,),
    max_states: int = 100_000,
) -> set[Trace]:
    """Visible traces after which the net can be fully deadlocked
    (refusing everything) — the failures-level view of deadlock."""
    silent_set = set(silent)
    lts = _Lts(net, max_states)
    visible = frozenset(lts.labels - silent_set)
    return {
        trace
        for trace, refusal in failures(net, silent, max_states)
        if refusal == visible
    }
