"""Exact trace-language comparison for bounded nets.

``L(N)`` of a bounded net is a prefix-closed regular language: the
reachability graph is a finite automaton in which *every* state is
accepting.  This module converts nets to DFAs (with epsilon-closure over
silent labels), minimizes them, and decides language equality and
containment — the exact form of the paper's Theorems 4.5 and 4.7 and of
Theorem 5.1's containment claim.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Iterable

from repro.obs import metrics as obs
from repro.petri.net import EPSILON, PetriNet
from repro.petri.product import DEFAULT_ENGINE, compare_languages, resolve_engine
from repro.petri.reachability import ReachabilityGraph


@dataclass(frozen=True)
class Dfa:
    """A total DFA over ``alphabet``.

    ``transitions[state][symbol]`` is always defined; ``sink`` is the
    unique non-accepting trap state (prefix-closed languages need exactly
    one).  Every non-sink state is accepting.
    """

    alphabet: frozenset[str]
    num_states: int
    start: int
    sink: int
    transitions: tuple[tuple[int, ...], ...]  # [state][symbol_index]
    symbols: tuple[str, ...]  # index -> symbol

    def symbol_index(self, symbol: str) -> int:
        return self.symbols.index(symbol)

    def accepts(self, word: Iterable[str]) -> bool:
        state = self.start
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            state = self.transitions[state][self.symbols.index(symbol)]
            if state == self.sink:
                return False
        return True

    def num_live_states(self) -> int:
        return self.num_states - 1


def dfa_of_net(
    net: PetriNet,
    silent: Iterable[str] = (EPSILON,),
    alphabet: Iterable[str] | None = None,
    max_states: int = 1_000_000,
    backend: str | None = None,
) -> Dfa:
    """The minimal DFA of the visible trace language of a bounded net.

    ``silent`` labels are erased by epsilon-closure during subset
    construction.  ``alphabet`` defaults to the net's alphabet minus the
    silent labels; supplying a larger alphabet lets two nets be compared
    over a common symbol set.
    """
    graph = ReachabilityGraph(net, max_states=max_states, backend=backend)
    silent_set = set(silent)
    if alphabet is None:
        visible = frozenset(net.actions - silent_set)
    else:
        visible = frozenset(set(alphabet) - silent_set)
    symbols = tuple(sorted(visible))
    symbol_index = {symbol: i for i, symbol in enumerate(symbols)}

    # Epsilon-closure over the reachability graph.
    def closure(states: frozenset) -> frozenset:
        seen = set(states)
        queue = deque(states)
        while queue:
            marking = queue.popleft()
            for action, _, target in graph.successors(marking):
                if action in silent_set and target not in seen:
                    seen.add(target)
                    queue.append(target)
        return frozenset(seen)

    start = closure(frozenset({graph.initial}))
    subset_index: dict[frozenset, int] = {start: 0}
    table: list[list[int | None]] = [[None] * len(symbols)]
    queue = deque([start])
    while queue:
        subset = queue.popleft()
        row = table[subset_index[subset]]
        moves: dict[str, set] = {}
        for marking in subset:
            for action, _, target in graph.successors(marking):
                if action in silent_set:
                    continue
                moves.setdefault(action, set()).add(target)
        for action, targets in moves.items():
            if action not in symbol_index:
                # A transition label outside the requested alphabet: the
                # word is not comparable — treat as outside the language.
                continue
            successor = closure(frozenset(targets))
            if successor not in subset_index:
                subset_index[successor] = len(table)
                table.append([None] * len(symbols))
                queue.append(successor)
            row[symbol_index[action]] = subset_index[successor]

    sink = len(table)
    total = [
        tuple(sink if cell is None else cell for cell in row) for row in table
    ]
    total.append(tuple(sink for _ in symbols))
    dfa = Dfa(
        alphabet=visible,
        num_states=len(total),
        start=0,
        sink=sink,
        transitions=tuple(total),
        symbols=symbols,
    )
    return minimize(dfa)


def minimize(dfa: Dfa) -> Dfa:
    """Moore partition-refinement minimization (all non-sink states accept)."""
    # Initial partition: {sink}, {everything else}.
    block_of = [0 if state != dfa.sink else 1 for state in range(dfa.num_states)]
    num_blocks = 2
    changed = True
    while changed:
        changed = False
        signature: dict[tuple, int] = {}
        new_block_of = [0] * dfa.num_states
        next_block = 0
        for state in range(dfa.num_states):
            key = (
                block_of[state],
                tuple(block_of[t] for t in dfa.transitions[state]),
            )
            if key not in signature:
                signature[key] = next_block
                next_block += 1
            new_block_of[state] = signature[key]
        if next_block != num_blocks:
            changed = True
            num_blocks = next_block
            block_of = new_block_of
    representatives: dict[int, int] = {}
    for state in range(dfa.num_states):
        representatives.setdefault(block_of[state], state)
    transitions = []
    for block in range(num_blocks):
        state = representatives[block]
        transitions.append(
            tuple(block_of[t] for t in dfa.transitions[state])
        )
    return Dfa(
        alphabet=dfa.alphabet,
        num_states=num_blocks,
        start=block_of[dfa.start],
        sink=block_of[dfa.sink],
        transitions=tuple(transitions),
        symbols=dfa.symbols,
    )


def _aligned(d1: Dfa, d2: Dfa) -> tuple[Dfa, Dfa]:
    if d1.alphabet != d2.alphabet:
        raise ValueError(
            f"alphabet mismatch: {sorted(d1.alphabet)} vs {sorted(d2.alphabet)}"
        )
    return d1, d2


def dfa_equal(d1: Dfa, d2: Dfa) -> bool:
    """Language equality by synchronous product walk (Hopcroft-Karp style)."""
    d1, d2 = _aligned(d1, d2)
    seen = {(d1.start, d2.start)}
    queue = deque([(d1.start, d2.start)])
    while queue:
        s1, s2 = queue.popleft()
        if (s1 == d1.sink) != (s2 == d2.sink):
            return False
        for index in range(len(d1.symbols)):
            pair = (d1.transitions[s1][index], d2.transitions[s2][index])
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return True


def dfa_contained(d1: Dfa, d2: Dfa) -> bool:
    """``True`` iff ``L(d1) <= L(d2)``."""
    d1, d2 = _aligned(d1, d2)
    seen = {(d1.start, d2.start)}
    queue = deque([(d1.start, d2.start)])
    while queue:
        s1, s2 = queue.popleft()
        if s1 != d1.sink and s2 == d2.sink:
            return False
        for index in range(len(d1.symbols)):
            pair = (d1.transitions[s1][index], d2.transitions[s2][index])
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return True


def _language_key(
    mode: str, net1: PetriNet, net2: PetriNet, silent: Iterable[str]
) -> str | None:
    """The verdict-memo key for a language comparison, or ``None`` when
    caching is off (or a net has opaque guards).  Keyed by the check's
    semantics only — mode, content hashes, silent set — never by
    engine/backend (all engines are exact and always agree)."""
    from repro.cache import verdicts

    if verdicts.active_store() is None:
        return None
    if not (verdicts.hashable(net1) and verdicts.hashable(net2)):
        return None
    return verdicts.semantic_key(
        "language",
        mode,
        verdicts.net_content_hash(net1),
        verdicts.net_content_hash(net2),
        sorted(set(silent)),
    )


def _language_lookup(cache_key: str | None, max_states: int) -> bool | None:
    from repro.cache import verdicts

    if cache_key is None:
        return None
    entry = verdicts.memo_lookup(verdicts.KIND, cache_key, max_states=max_states)
    if entry is None or "verdict" not in entry["result"]:
        return None
    return bool(entry["result"]["verdict"])


def _language_publish(
    cache_key: str | None, verdict: bool, max_states: int, engine: str
) -> None:
    from repro.cache import verdicts

    if cache_key is None:
        return
    verdicts.memo_store(
        verdicts.KIND,
        cache_key,
        {"verdict": verdict},
        conclusive=True,
        floor=max_states,
        proven_at=max_states,
        provenance={"engine": engine},
    )


def languages_equal(
    net1: PetriNet,
    net2: PetriNet,
    silent: Iterable[str] = (EPSILON,),
    max_states: int = 1_000_000,
    engine: str = DEFAULT_ENGINE,
    backend: str | None = None,
) -> bool:
    """Exact visible-trace-language equality of two bounded nets.

    ``engine="onthefly"`` (default) decides the question on the lazy
    product of the two determinised state spaces, terminating at the
    first difference; ``engine="por"`` additionally applies
    stubborn-set partial-order reduction to both sides (silent
    interleavings collapse, the language is preserved exactly);
    ``engine="eager"`` builds, minimises and compares both full DFAs
    (the oracle path).  ``engine="symbolic"`` first runs the
    state-equation pre-check (one-letter separating words via
    conclusively-dead actions) and only enumerates when the pre-check
    is INCONCLUSIVE.  All are exact, so they always agree — which is
    why the verdict memo (:mod:`repro.cache`, active stores only) keys
    entries by content hashes, mode, silent set and budget but *not*
    by engine or backend.
    """
    engine = resolve_engine(engine, extra=("symbolic",))
    cache_key = _language_key("equal", net1, net2, silent)
    with obs.span("verify.language.equal", engine=engine) as span:
        hit = _language_lookup(cache_key, max_states)
        if hit is not None:
            span.set(verdict=hit, cached=True)
            return hit
        if engine == "symbolic":
            from repro.petri.symbolic import language_precheck

            verdict = language_precheck(net1, net2, mode="equal", silent=silent)
            if verdict.conclusive:
                span.set(verdict=verdict.holds, symbolic=True)
                return bool(verdict.holds)
            verdict = compare_languages(
                net1,
                net2,
                mode="equal",
                silent=silent,
                max_states=max_states,
                reduction=False,
                backend=backend,
            ).verdict
        elif engine != "eager":
            verdict = compare_languages(
                net1,
                net2,
                mode="equal",
                silent=silent,
                max_states=max_states,
                reduction=engine == "por",
                backend=backend,
            ).verdict
        else:
            common = (net1.actions | net2.actions) - set(silent)
            d1 = dfa_of_net(net1, silent, common, max_states, backend=backend)
            d2 = dfa_of_net(net2, silent, common, max_states, backend=backend)
            verdict = dfa_equal(d1, d2)
        span.set(verdict=verdict)
        _language_publish(cache_key, bool(verdict), max_states, engine)
        return verdict


def language_contained(
    net1: PetriNet,
    net2: PetriNet,
    silent: Iterable[str] = (EPSILON,),
    max_states: int = 1_000_000,
    engine: str = DEFAULT_ENGINE,
    backend: str | None = None,
) -> bool:
    """Exact visible-trace containment ``L(net1) <= L(net2)``."""
    engine = resolve_engine(engine, extra=("symbolic",))
    cache_key = _language_key("contained", net1, net2, silent)
    with obs.span("verify.language.contained", engine=engine) as span:
        hit = _language_lookup(cache_key, max_states)
        if hit is not None:
            span.set(verdict=hit, cached=True)
            return hit
        if engine == "symbolic":
            from repro.petri.symbolic import language_precheck

            verdict = language_precheck(
                net1, net2, mode="contained", silent=silent
            )
            if verdict.conclusive:
                span.set(verdict=verdict.holds, symbolic=True)
                return bool(verdict.holds)
            verdict = compare_languages(
                net1,
                net2,
                mode="contained",
                silent=silent,
                max_states=max_states,
                reduction=False,
                backend=backend,
            ).verdict
        elif engine != "eager":
            verdict = compare_languages(
                net1,
                net2,
                mode="contained",
                silent=silent,
                max_states=max_states,
                reduction=engine == "por",
                backend=backend,
            ).verdict
        else:
            common = (net1.actions | net2.actions) - set(silent)
            d1 = dfa_of_net(net1, silent, common, max_states, backend=backend)
            d2 = dfa_of_net(net2, silent, common, max_states, backend=backend)
            verdict = dfa_contained(d1, d2)
        span.set(verdict=verdict)
        _language_publish(cache_key, bool(verdict), max_states, engine)
        return verdict


def distinguishing_trace(
    net1: PetriNet,
    net2: PetriNet,
    silent: Iterable[str] = (EPSILON,),
    max_states: int = 1_000_000,
    engine: str = DEFAULT_ENGINE,
    backend: str | None = None,
) -> tuple[str, ...] | None:
    """A shortest trace in exactly one of the two languages, or ``None``.

    Useful diagnostics when an equivalence check fails.
    """
    engine = resolve_engine(engine, extra=("symbolic",))
    if engine == "symbolic":
        from repro.petri.symbolic import language_precheck

        verdict = language_precheck(net1, net2, mode="equal", silent=silent)
        if verdict.conclusive and verdict.holds:
            return None
        if verdict.conclusive and verdict.witness is not None:
            return tuple(verdict.witness)
        engine = "onthefly"
    if engine != "eager":
        return compare_languages(
            net1,
            net2,
            mode="equal",
            silent=silent,
            max_states=max_states,
            reduction=engine == "por",
            backend=backend,
        ).counterexample
    common = (net1.actions | net2.actions) - set(silent)
    d1 = dfa_of_net(net1, silent, common, max_states, backend=backend)
    d2 = dfa_of_net(net2, silent, common, max_states, backend=backend)
    start = (d1.start, d2.start)
    parents: dict[tuple[int, int], tuple[tuple[int, int], str] | None] = {
        start: None
    }
    queue = deque([start])
    while queue:
        pair = queue.popleft()
        s1, s2 = pair
        if (s1 == d1.sink) != (s2 == d2.sink):
            trace: list[str] = []
            cursor = pair
            while parents[cursor] is not None:
                cursor, symbol = parents[cursor]
                trace.append(symbol)
            return tuple(reversed(trace))
        for index, symbol in enumerate(d1.symbols):
            successor = (d1.transitions[s1][index], d2.transitions[s2][index])
            if successor not in parents:
                parents[successor] = (pair, symbol)
                queue.append(successor)
    return None
