"""Structural net isomorphism (place-renaming equivalence).

Two nets are isomorphic when a bijection on places maps one onto the
other, preserving transitions (with labels), arcs and the initial
marking.  Used to compare derived nets against hand-built references up
to the fresh names the algebra generates.  Implemented via networkx'
VF2 on the bipartite place/transition graph.
"""

from __future__ import annotations

from repro.petri.net import PetriNet


def _bipartite(net: PetriNet):
    import networkx as nx

    graph = nx.DiGraph()
    for place in net.places:
        graph.add_node(
            ("p", place), kind="place", tokens=net.initial[place]
        )
    for tid, transition in net.transitions.items():
        graph.add_node(("t", tid), kind="transition", label=transition.action)
        for place in transition.preset:
            graph.add_edge(("p", place), ("t", tid))
        for place in transition.postset:
            graph.add_edge(("t", tid), ("p", place))
    return graph


def isomorphic(net1: PetriNet, net2: PetriNet) -> bool:
    """``True`` iff the nets are identical up to place renaming and
    transition re-identification (labels must match exactly)."""
    if len(net1.places) != len(net2.places):
        return False
    if len(net1.transitions) != len(net2.transitions):
        return False
    if sorted(t.action for t in net1.transitions.values()) != sorted(
        t.action for t in net2.transitions.values()
    ):
        return False
    import networkx as nx
    from networkx.algorithms.isomorphism import DiGraphMatcher

    def node_match(a, b):
        if a["kind"] != b["kind"]:
            return False
        if a["kind"] == "place":
            return a["tokens"] == b["tokens"]
        return a["label"] == b["label"]

    matcher = DiGraphMatcher(
        _bipartite(net1), _bipartite(net2), node_match=node_match
    )
    return matcher.is_isomorphic()


def place_bijection(net1: PetriNet, net2: PetriNet) -> dict[str, str] | None:
    """A witnessing place bijection if the nets are isomorphic."""
    from networkx.algorithms.isomorphism import DiGraphMatcher

    def node_match(a, b):
        if a["kind"] != b["kind"]:
            return False
        if a["kind"] == "place":
            return a["tokens"] == b["tokens"]
        return a["label"] == b["label"]

    matcher = DiGraphMatcher(
        _bipartite(net1), _bipartite(net2), node_match=node_match
    )
    if not matcher.is_isomorphic():
        return None
    return {
        node[1]: image[1]
        for node, image in matcher.mapping.items()
        if node[0] == "p"
    }
