"""Receptiveness verification of composed modules (Section 5.3).

Inputs of a module are controlled by its environment; the module must be
*receptive*: whenever the environment produces an input event, the
module must be ready to synchronize with it.  The rendez-vous
composition masks such failures (the fused transition simply does not
fire), so after composing we check Proposition 5.5:

    A failure can occur iff there exists a marking of ``N1 || N2`` in
    which all input places of the *producer's* part of a synchronization
    transition are marked but not all places of the *consumer's* part.

Proposition 5.5 is stated for a single common transition.  With several
transitions per label (the cross product of Definition 4.7), the check
generalizes per *producer* transition: a failure needs a reachable
marking where some producer transition is ready while **no** consumer
transition of the same action is — pairings that are individually
unready are only the dead cross-product duplicates the paper removes
(Section 5.2), not failures.  By Proposition 5.6 this is sound and
complete for the existence of at least one failure (later failures may
be masked by the first).

For live-safe strongly connected marked graphs, Theorem 5.7 promises a
polynomial check: we use the classical marked-graph reachability
characterisation (a marking is reachable iff it agrees with the initial
marking on the token count of every directed place-cycle, i.e. iff
``M = M0 + C.sigma`` is solvable with ``M >= 0``) and solve the
resulting linear feasibility problem instead of enumerating states.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.obs import metrics as obs
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet, disjoint_pair
from repro.stg.signals import signal_of
from repro.stg.stg import Stg, signal_actions


@dataclass(frozen=True)
class SyncObligation:
    """One receptiveness obligation: a producer transition of a
    synchronized action, together with every same-action consumer
    alternative in the partner module."""

    action: str
    producer: str
    consumer: str
    producer_preset: frozenset[str]
    consumer_presets: tuple[frozenset[str], ...]


@dataclass(frozen=True)
class ReceptivenessFailure:
    """A Proposition 5.5 witness: the producer is ready to emit but no
    consumer alternative is ready to accept.

    When found by the on-the-fly engine, ``trace`` holds the action
    labels and ``tids`` the transition ids of a firable path from the
    composite's initial marking to ``marking`` — replayable step by
    step via :mod:`repro.petri.simulation`.  The plain on-the-fly
    engine discovers breadth-first, so its trace is shortest; the
    reduced engine's trace is shortest in the reduced space under the
    default ``proviso="fresh"`` (breadth-first discovery), and merely
    firable under ``proviso="stack"`` (depth-first discovery).
    """

    obligation: SyncObligation
    marking: Marking
    trace: tuple[str, ...] | None = None
    tids: tuple[int, ...] | None = None

    def __str__(self) -> str:
        where = (
            f" (after {'.'.join(self.trace) or 'the initial marking'})"
            if self.trace is not None
            else ""
        )
        return (
            f"{self.obligation.producer} can emit"
            f" {self.obligation.action!r} but {self.obligation.consumer}"
            f" is not ready to accept it{where}"
        )


@dataclass
class ReceptivenessReport:
    """Outcome of a receptiveness check.

    ``engine`` records which engine answered (``"eager"``,
    ``"onthefly"``, ``"por"``, ``"symbolic"``, or ``"-"`` for the
    structural method);
    ``states_explored`` the number of composite markings it visited
    (``None`` for the structural method).  Under ``engine="por"``,
    ``states_reduced`` counts the markings at which the stubborn-set
    selector expanded a proper subset of the enabled transitions, and
    ``proviso`` records which ignoring-prevention proviso governed the
    reduced search (``"fresh"`` or ``"stack"``, see
    :mod:`repro.petri.product`).

    ``metrics`` carries the full instrumentation payload of the check
    (schema ``repro.obs/v1``, see ``docs/OBSERVABILITY.md``): spans for
    the composition and the search phase, state throughput, frontier
    high-water mark, interning hit rate and reduction ratio.  It is
    recorded unconditionally — the same events are forwarded to any
    outer recorder (e.g. ``cip verify --profile``), so the two views
    can never disagree.
    """

    composite: Stg
    obligations: list[SyncObligation]
    failures: list[ReceptivenessFailure]
    method: str
    engine: str = "eager"
    states_explored: int | None = None
    states_reduced: int | None = None
    proviso: str | None = None
    metrics: dict | None = None
    #: Under ``engine="symbolic"``: how the state-equation engine
    #: partitioned the obligations (``safe``/``failed``/``undecided``
    #: counts, solver statistics, ``conclusive`` flag).  ``method`` is
    #: ``"symbolic"`` when every obligation was decided without
    #: enumeration, ``"reachability"`` when the ``undecided`` remainder
    #: fell back to explicit search; ``states_explored`` is ``None`` in
    #: the former case and counts only the fallback in the latter.
    symbolic: dict | None = None
    #: ``True`` when this report was served from the verdict memo
    #: (:mod:`repro.cache`); ``engine``/``states_explored`` then
    #: describe the *original* run that produced the entry.
    cached: bool = False

    def is_receptive(self) -> bool:
        return not self.failures

    def failing_actions(self) -> list[str]:
        return sorted({failure.obligation.action for failure in self.failures})

    def __str__(self) -> str:
        if self.is_receptive():
            return (
                f"receptive: {len(self.obligations)} synchronization"
                f" obligations checked ({self.method})"
            )
        lines = [
            f"NOT receptive ({len(self.failures)} failures, {self.method}):"
        ]
        lines += [f"  - {failure}" for failure in self.failures]
        return "\n".join(lines)


def compose_with_obligations(
    stg1: Stg, stg2: Stg
) -> tuple[Stg, list[SyncObligation]]:
    """Circuit-algebra composition that records, for every producer
    transition of a synchronized action, the consumer alternatives."""
    with obs.span("algebra.compose", left=stg1.name, right=stg2.name) as span:
        composite, obligations = _compose_with_obligations(stg1, stg2)
        span.set(
            places=len(composite.net.places),
            transitions=len(composite.net.transitions),
            obligations=len(obligations),
        )
        return composite, obligations


def _compose_with_obligations(
    stg1: Stg, stg2: Stg
) -> tuple[Stg, list[SyncObligation]]:
    common_outputs = (stg1.outputs | stg1.internals) & (
        stg2.outputs | stg2.internals
    )
    if common_outputs:
        raise ValueError(
            f"common output signals are not allowed: {sorted(common_outputs)}"
        )
    n1, n2 = disjoint_pair(stg1.net, stg2.net)
    common_signals = stg1.signals() & stg2.signals()
    sync_actions = signal_actions(n1.actions | n2.actions, common_signals)
    sync_actions |= {
        a
        for a in n1.actions & n2.actions
        if a != EPSILON and signal_of(a) is None
    }
    net = PetriNet(
        f"({stg1.name}||{stg2.name})",
        n1.actions | n2.actions,
        n1.places | n2.places,
        n1.initial.add(
            place for place, count in n2.initial.items() for _ in range(count)
        ),
    )
    for source in (n1, n2):
        for _, transition in sorted(source.transitions.items()):
            if transition.action not in sync_actions:
                net.add_transition(
                    transition.preset, transition.action, transition.postset
                )
    obligations: list[SyncObligation] = []
    for action in sorted(sync_actions):
        signal = signal_of(action)
        if signal is not None:
            first_is_producer = signal in (stg1.outputs | stg1.internals)
        else:
            # Channel rendez-vous after CIP relabeling: treat stg1 as the
            # producer by convention (the direction does not affect the
            # fused structure, only failure attribution).
            first_is_producer = True
        parts1 = n1.transitions_with_action(action)
        parts2 = n2.transitions_with_action(action)
        for t1 in parts1:
            for t2 in parts2:
                net.add_transition(
                    t1.preset | t2.preset, action, t1.postset | t2.postset
                )
        producer_parts, consumer_parts = (
            (parts1, parts2) if first_is_producer else (parts2, parts1)
        )
        producer_name, consumer_name = (
            (stg1.name, stg2.name)
            if first_is_producer
            else (stg2.name, stg1.name)
        )
        for part in producer_parts:
            obligations.append(
                SyncObligation(
                    action=action,
                    producer=producer_name,
                    consumer=consumer_name,
                    producer_preset=part.preset,
                    consumer_presets=tuple(t.preset for t in consumer_parts),
                )
            )
    outputs = stg1.outputs | stg2.outputs
    inputs = (stg1.inputs | stg2.inputs) - outputs
    internals = stg1.internals | stg2.internals
    values = dict(stg1.initial_values)
    values.update(stg2.initial_values)
    composite = Stg(net, inputs, outputs, internals, values)
    return composite, obligations


def _is_failure_marking(obligation: SyncObligation, marking: Marking) -> bool:
    """Proposition 5.5's condition at one marking: producer ready, no
    consumer alternative ready."""
    if not all(marking[p] > 0 for p in obligation.producer_preset):
        return False
    return not any(
        all(marking[p] > 0 for p in preset)
        for preset in obligation.consumer_presets
    )


# Default ignoring-prevention proviso for the *verify* layer's reduced
# searches.  Deliberately not ``repro.petri.product.DEFAULT_PROVISO``
# ("stack"): the Prop 5.5 search early-exits once every obligation is
# witnessed, and witnesses sit shallow, so breadth-first "fresh"
# discovery wins on failing compositions and reports shortest reduced
# traces.  Callers proving receptiveness of cyclic nets should pass
# ``proviso="stack"`` to exhaust an exponentially smaller space.
SEARCH_PROVISO = "fresh"


def _reachability_failures(
    composite: Stg,
    obligations: list[SyncObligation],
    max_states: int,
    backend: str | None = None,
) -> tuple[list[ReceptivenessFailure], int]:
    """The eager oracle: materialise the full composite state space,
    then scan it per obligation."""
    from repro.petri.reachability import ReachabilityGraph

    graph = ReachabilityGraph(
        composite.net, max_states=max_states, backend=backend
    )
    failures: list[ReceptivenessFailure] = []
    for obligation in obligations:
        for marking in graph.states:
            if _is_failure_marking(obligation, marking):
                failures.append(ReceptivenessFailure(obligation, marking))
                break  # one witness per obligation
    return failures, graph.num_states()


def _onthefly_failures(
    composite: Stg,
    obligations: list[SyncObligation],
    max_states: int,
    stop_at_first: bool = False,
    reduce: bool = False,
    backend: str | None = None,
    proviso: str | None = None,
) -> tuple[list[ReceptivenessFailure], int, int]:
    """Demand-driven Proposition 5.5 search: obligations are checked as
    each composite marking is *discovered*, so exploration stops as soon
    as every obligation has a witness (or, with ``stop_at_first``, at
    the very first failure) — long before a full state-space build on
    failing compositions.  Witnesses come with a firable trace from the
    initial marking (shortest without reduction, where discovery is
    breadth-first).

    With ``reduce`` the space is explored under stubborn-set
    partial-order reduction, governed by ``proviso``
    (:mod:`repro.petri.product`).  The verify layer defaults to
    ``"fresh"``, not the space-level default ``"stack"``: this search
    is breadth-sensitive — it exits as soon as every obligation is
    witnessed, and failure witnesses sit shallow, so breadth-first
    fresh-proviso discovery reaches them after far fewer states than
    the depth-first stack walk, and its traces are shortest in the
    reduced space.  ``"stack"`` pays off on the opposite workload:
    receptive (witness-free) compositions with pure cycles, where the
    search must exhaust the reduced space and the stack proviso keeps
    that space exponentially smaller (see ``docs/PERFORMANCE.md``).  The Prop 5.5 failure predicate only reads
    the token counts of the obligation places (producer and consumer
    presets), so those are declared as *visible places*: every
    transition that changes one of them is visible to the selector, the
    predicate's value is invariant under invisible firings, and a
    failure marking is reachable in the reduced space iff one is
    reachable in the full space.  Reduced edges are real firings of the
    unreduced net, so witness traces replay unchanged.
    """
    from repro.petri.product import LazyStateSpace, resolve_proviso

    if reduce:
        proviso = resolve_proviso(
            proviso if proviso is not None else SEARCH_PROVISO
        )
        predicate_places: set[str] = set()
        for obligation in obligations:
            predicate_places |= obligation.producer_preset
            for preset in obligation.consumer_presets:
                predicate_places |= preset
        space = LazyStateSpace(
            composite.net,
            max_states=max_states,
            reduction=True,
            visible_actions=(),
            visible_places=predicate_places,
            backend=backend,
            proviso=proviso,
        )
    else:
        space = LazyStateSpace(
            composite.net, max_states=max_states, backend=backend
        )
    if space.backend == "compiled":
        return _onthefly_failures_packed(space, obligations, stop_at_first)
    pending = list(obligations)
    failures: list[ReceptivenessFailure] = []
    for marking in space.iter_discovery():
        if not pending:
            break
        remaining: list[SyncObligation] = []
        for obligation in pending:
            if _is_failure_marking(obligation, marking):
                steps = space.trace_to(marking)
                failures.append(
                    ReceptivenessFailure(
                        obligation,
                        marking,
                        trace=tuple(action for _, action in steps),
                        tids=tuple(tid for tid, _ in steps),
                    )
                )
                if stop_at_first:
                    space.publish_metrics("engine.lazy")
                    return failures, space.num_explored(), space.stats.reduced_states
            else:
                remaining.append(obligation)
        pending = remaining
    space.publish_metrics("engine.lazy")
    return failures, space.num_explored(), space.stats.reduced_states


def _onthefly_failures_packed(
    space, obligations: list[SyncObligation], stop_at_first: bool
) -> tuple[list[ReceptivenessFailure], int, int]:
    """Prop 5.5 search over the compiled backend's packed states.

    Obligation presets are lowered to dense place indices once, so the
    failure predicate reads token counts straight out of the packed
    vectors — no :class:`Marking` is materialised until a witness is
    found (and then only for the witnesses themselves)."""
    index = space.compiled_net.place_index
    packed_obligations = [
        (
            obligation,
            tuple(index[p] for p in sorted(obligation.producer_preset)),
            tuple(
                tuple(index[p] for p in sorted(preset))
                for preset in obligation.consumer_presets
            ),
        )
        for obligation in obligations
    ]
    pending = packed_obligations
    failures: list[ReceptivenessFailure] = []
    for state in space.iter_raw_discovery():
        if not pending:
            break
        remaining = []
        for entry in pending:
            obligation, producer, consumers = entry
            if all(state[i] for i in producer) and not any(
                all(state[i] for i in preset) for preset in consumers
            ):
                steps = space.trace_to(state)
                failures.append(
                    ReceptivenessFailure(
                        obligation,
                        space.decode(state),
                        trace=tuple(action for _, action in steps),
                        tids=tuple(tid for tid, _ in steps),
                    )
                )
                if stop_at_first:
                    space.publish_metrics("engine.lazy")
                    return (
                        failures,
                        space.num_explored(),
                        space.stats.reduced_states,
                    )
            else:
                remaining.append(entry)
        pending = remaining
    space.publish_metrics("engine.lazy")
    return failures, space.num_explored(), space.stats.reduced_states


def _parallel_failures(
    composite: Stg,
    obligations: list[SyncObligation],
    max_states: int,
    backend: str | None,
    workers: int,
    memory_budget: int | None,
) -> tuple[list[ReceptivenessFailure], int]:
    """Prop 5.5 over the sharded parallel explorer.

    The full composite space is explored (sharded workers cannot stop
    early the way the serial on-the-fly engine does), each discovered
    state is tested against every obligation by its owning shard, and
    the canonical (minimum packed key) witness per failing obligation
    is returned.  Verdicts and the set of failing obligations are
    byte-identical to the serial engines; witnesses carry no trace
    (``trace=None``), exactly like the eager oracle.
    """
    from repro.petri.parallel import parallel_explore

    result = parallel_explore(
        composite.net,
        workers=workers,
        max_states=max_states,
        memory_budget=memory_budget,
        backend=backend,
        obligations=[
            (obligation.producer_preset, obligation.consumer_presets)
            for obligation in obligations
        ],
    )
    failures = [
        ReceptivenessFailure(obligations[index], marking)
        for index, marking in sorted(result.failing.items())
    ]
    return failures, result.states


def _marked_graph_failures(
    composite: Stg, obligations: list[SyncObligation]
) -> list[ReceptivenessFailure]:
    """Theorem 5.7's polynomial path: linear feasibility of a failure
    marking under the marked-graph reachability characterisation
    ``M = M0 + C.sigma, M >= 0``.

    For each obligation we ask for a reachable marking where the
    producer preset is fully marked while every consumer alternative
    misses at least one place; the per-consumer choice of missing place
    is enumerated (consumer alternatives are few in practice)."""
    from scipy.optimize import linprog

    from repro.petri.structural import incidence_matrix

    places, _, matrix = incidence_matrix(composite.net)
    index = {place: i for i, place in enumerate(places)}
    m0 = np.array(
        [composite.net.initial[place] for place in places], dtype=float
    )
    num_places, num_transitions = matrix.shape
    failures: list[ReceptivenessFailure] = []
    for obligation in obligations:
        candidate_misses = [
            sorted(preset - obligation.producer_preset)
            for preset in obligation.consumer_presets
        ]
        if any(not misses for misses in candidate_misses):
            # Some consumer's preset is inside the producer's: it is
            # ready whenever the producer is; no failure possible.
            continue
        witness: Marking | None = None
        for choice in product(*candidate_misses):
            a_ub: list[np.ndarray] = []
            b_ub: list[float] = []
            for row in range(num_places):
                a_ub.append(-matrix[row])  # M0 + C sigma >= 0
                b_ub.append(m0[row])
            for place in obligation.producer_preset:
                row = index[place]
                a_ub.append(-matrix[row])
                b_ub.append(m0[row] - 1.0)  # marked
            for place in set(choice):
                row = index[place]
                a_ub.append(matrix[row])
                b_ub.append(-m0[row])  # empty
            result = linprog(
                c=np.zeros(num_transitions),
                A_ub=np.array(a_ub, dtype=float),
                b_ub=np.array(b_ub, dtype=float),
                bounds=[(0, None)] * num_transitions,
                method="highs",
            )
            if result.success:
                vector = m0 + matrix @ result.x
                witness = Marking(
                    {
                        place: int(round(max(0.0, vector[index[place]])))
                        for place in places
                    }
                )
                break
        if witness is not None:
            failures.append(ReceptivenessFailure(obligation, witness))
    return failures


def check_receptiveness(
    stg1: Stg,
    stg2: Stg,
    method: str = "auto",
    max_states: int = 1_000_000,
    engine: str | None = None,
    stop_at_first: bool = False,
    backend: str | None = None,
    workers: int | None = None,
    memory_budget: int | None = None,
    proviso: str | None = None,
) -> ReceptivenessReport:
    """Check Propositions 5.5/5.6 on the composition of two modules.

    ``method``:

    * ``"reachability"`` — exhaustive over the composed state space
      (exact for any bounded net);
    * ``"structural"`` — the Theorem 5.7 polynomial check, valid for
      live marked-graph compositions;
    * ``"auto"`` — structural when the preconditions hold, otherwise
      reachability.

    ``engine`` selects how the reachability method explores: the default
    ``"onthefly"`` checks obligations while the composite state space is
    being *discovered* and stops as soon as every obligation is resolved
    (failure witnesses come with a shortest firable counterexample
    trace); ``"por"`` additionally applies stubborn-set partial-order
    reduction with the obligation places declared visible, so the
    Prop 5.5 verdict is unchanged while fewer interleavings are
    explored; ``"eager"`` materialises the full graph first — the
    oracle path; ``"symbolic"`` first attempts to decide every
    obligation by state-equation reasoning alone
    (:mod:`repro.petri.symbolic`: exact-rational linear feasibility
    with trap refinement — no marking is ever constructed, so
    ``max_states`` does not bound it), and only the obligations the
    semi-decision procedure leaves INCONCLUSIVE fall back to the
    on-the-fly search; ``report.symbolic`` records the partition.

    ``proviso`` (``engine="por"`` only) picks the ignoring-prevention
    rule of the reduced search: the default ``"fresh"`` discovers
    breadth-first and fully expands any state with an already-discovered
    reduced successor — best for this early-exit witness hunt, and its
    traces stay shortest in the reduced space; ``"stack"`` discovers
    depth-first under the DFS-stack proviso with sleep sets — its
    traces are firable but not necessarily shortest, and it wins when
    the composition is receptive and cyclic, where the search must
    exhaust the reduced space and ``"stack"`` keeps that space
    exponentially smaller (channel banks: ``3*2^(n-1)+1`` states
    versus the full ``4^n``; see ``docs/PERFORMANCE.md``).

    ``stop_at_first`` makes the demand-driven engines
    return after the first failure (the verdict is already decided at
    that point; only the per-obligation attribution of *later* failures
    is lost).

    ``backend`` selects the state representation used by the explorer
    (``"compiled"`` packed vectors by default, ``"dict"`` for the
    plain-``Marking`` baseline); the verdict, witnesses and traces are
    identical either way — see ``docs/PERFORMANCE.md``.

    ``workers`` > 1 (or any ``memory_budget``) routes the reachability
    method through the sharded parallel explorer
    (:mod:`repro.petri.parallel`): hash-partitioned visited sets with
    spill-to-disk shards, full-space exploration, schedule-independent
    verdicts, canonical per-obligation witnesses without traces.  It
    composes with the ``eager`` and ``onthefly`` engines but not with
    ``por`` (partial-order reduction is inherently order-sensitive: the
    DFS-stack proviso and sleep sets assume one sequential search
    order), and ``stop_at_first`` is ignored on this path.  The structural method
    never explores states, so these knobs do not apply to it.

    Every check records its own instrumentation (spans, counters and
    gauges under the ``repro.obs/v1`` schema) on ``report.metrics``; the
    same events are also forwarded to any recorder already active in the
    caller, e.g. the one behind ``cip verify --profile``.
    """
    from repro.petri.compiled import resolve_backend
    from repro.petri.parallel import resolve_workers
    from repro.petri.product import (
        DEFAULT_ENGINE,
        resolve_engine,
        resolve_proviso,
    )

    engine = resolve_engine(
        engine if engine is not None else DEFAULT_ENGINE,
        extra=("symbolic",),
    )
    backend = resolve_backend(backend)
    workers = resolve_workers(workers)
    if (workers > 1 or memory_budget is not None) and engine == "symbolic":
        raise ValueError(
            "engine 'symbolic' does not compose with parallel/spill"
            " exploration: the state-equation engine explores no states,"
            " and its inconclusive fallback is the serial on-the-fly"
            " search; run the workers with engine 'eager' or 'onthefly'"
        )
    if proviso is not None and engine != "por":
        raise ValueError(
            "proviso is a partial-order-reduction knob;"
            " it requires engine 'por'"
        )
    if engine == "por":
        proviso = resolve_proviso(
            proviso if proviso is not None else SEARCH_PROVISO
        )
    if (workers > 1 or memory_budget is not None) and engine == "por":
        raise ValueError(
            "engine 'por' does not compose with parallel/spill"
            " exploration: partial-order reduction is inherently"
            " order-sensitive (the DFS-stack proviso and sleep sets"
            " depend on one sequential search order that sharded workers"
            " cannot preserve); run engine 'por' serially, or keep the"
            " workers with engine 'eager' or 'onthefly'"
        )
    cache_key = _receptiveness_key(stg1, stg2, method, stop_at_first)
    if cache_key is not None:
        hit = _receptiveness_restore(cache_key, stg1, stg2, max_states)
        if hit is not None:
            return hit
    with obs.record() as recorder:
        report = _checked_receptiveness(
            stg1,
            stg2,
            method,
            max_states,
            engine,
            stop_at_first,
            backend,
            recorder,
            workers,
            memory_budget,
            proviso,
        )
    report.metrics = recorder.to_dict()
    _receptiveness_publish(cache_key, report, max_states, backend, workers)
    return report


def _receptiveness_key(
    stg1: Stg, stg2: Stg, method: str, stop_at_first: bool
) -> str | None:
    """Verdict-memo key for a receptiveness check, ``None`` when caching
    is off or either net has opaque guards.  Keyed by the semantics only
    (STG content hashes, requested method, ``stop_at_first`` — the
    latter changes which failures are attributed, so reports differ);
    engine/backend/workers never change the verdict or the witnesses'
    validity and stay provenance-only."""
    from repro.cache import verdicts

    if verdicts.active_store() is None:
        return None
    if not (verdicts.hashable(stg1.net) and verdicts.hashable(stg2.net)):
        return None
    return verdicts.semantic_key(
        "receptiveness",
        verdicts.stg_content_hash(stg1),
        verdicts.stg_content_hash(stg2),
        method,
        bool(stop_at_first),
    )


def _receptiveness_restore(
    cache_key: str, stg1: Stg, stg2: Stg, max_states: int
) -> ReceptivenessReport | None:
    """Rebuild a full report from a memo entry (re-running only the
    composition, never the search), or ``None`` on miss/malformed."""
    from repro.cache import verdicts

    entry = verdicts.memo_lookup(verdicts.KIND, cache_key, max_states=max_states)
    if entry is None:
        return None
    result = entry["result"]
    try:
        method = str(result["method"])
        engine = str(result["engine"])
        states = result["states_explored"]
        with obs.record() as recorder:
            with obs.span(
                "verify.receptiveness", method=method, cached=True
            ) as span:
                composite, obligations = compose_with_obligations(stg1, stg2)
                failures = []
                for item in result["failures"]:
                    marking = verdicts.marking_from(item["marking"])
                    if marking is None:
                        raise ValueError("failure entry without a marking")
                    failures.append(
                        ReceptivenessFailure(
                            obligations[int(item["obligation"])],
                            marking,
                            trace=(
                                None
                                if item["trace"] is None
                                else tuple(item["trace"])
                            ),
                            tids=(
                                None
                                if item["tids"] is None
                                else tuple(item["tids"])
                            ),
                        )
                    )
                if states is not None:
                    obs.gauge(
                        "verify.receptiveness.states_explored", int(states)
                    )
                span.set(
                    engine=engine,
                    verdict=not failures,
                    obligations=len(obligations),
                    failures=len(failures),
                )
        report = ReceptivenessReport(
            composite,
            obligations,
            failures,
            method,
            engine=engine,
            states_explored=None if states is None else int(states),
            states_reduced=(
                None
                if result["states_reduced"] is None
                else int(result["states_reduced"])
            ),
            proviso=result["proviso"],
            symbolic=result["symbolic"],
            cached=True,
        )
        report.metrics = recorder.to_dict()
        return report
    except (KeyError, IndexError, TypeError, ValueError):
        return None


def _receptiveness_publish(
    cache_key: str | None,
    report: ReceptivenessReport,
    max_states: int,
    backend: str,
    workers: int,
) -> None:
    from repro.cache import verdicts

    if cache_key is None:
        return
    try:
        failures = [
            {
                "obligation": report.obligations.index(failure.obligation),
                "marking": verdicts.marking_items(failure.marking),
                "trace": (
                    None if failure.trace is None else list(failure.trace)
                ),
                "tids": None if failure.tids is None else list(failure.tids),
            }
            for failure in report.failures
        ]
    except ValueError:
        return
    verdicts.memo_store(
        verdicts.KIND,
        cache_key,
        {
            "method": report.method,
            "engine": report.engine,
            "states_explored": report.states_explored,
            "states_reduced": report.states_reduced,
            "proviso": report.proviso,
            "symbolic": report.symbolic,
            "failures": failures,
        },
        conclusive=True,
        floor=report.states_explored or 0,
        proven_at=max_states,
        provenance={
            "engine": report.engine,
            "backend": backend,
            "workers": workers,
        },
    )


def _checked_receptiveness(
    stg1: Stg,
    stg2: Stg,
    method: str,
    max_states: int,
    engine: str,
    stop_at_first: bool,
    backend: str,
    recorder: obs.MetricsRecorder,
    workers: int = 1,
    memory_budget: int | None = None,
    proviso: str | None = None,
) -> ReceptivenessReport:
    with obs.span("verify.receptiveness", method=method) as span:
        composite, obligations = compose_with_obligations(stg1, stg2)
        if method == "auto":
            from repro.petri.classify import is_marked_graph, marked_graph_is_live

            structural_ok = is_marked_graph(
                composite.net
            ) and marked_graph_is_live(composite.net)
            method = "structural" if structural_ok else "reachability"
        if method == "structural":
            with obs.span("verify.receptiveness.structural"):
                failures = _marked_graph_failures(composite, obligations)
            span.set(
                method=method,
                engine="-",
                verdict=not failures,
                obligations=len(obligations),
                failures=len(failures),
            )
            return ReceptivenessReport(
                composite, obligations, failures, method, engine="-"
            )
        if method != "reachability":
            raise ValueError(f"unknown method {method!r}")
        symbolic_info: dict | None = None
        search_engine = engine
        pending = obligations
        symbolic_failures: list[ReceptivenessFailure] = []
        if engine == "symbolic":
            from repro.petri.symbolic import symbolic_receptiveness

            with obs.span("verify.receptiveness.symbolic") as symbolic_span:
                outcome = symbolic_receptiveness(
                    composite.net, obligations
                )
                symbolic_span.set(
                    safe=len(outcome.safe),
                    failed=len(outcome.failed),
                    undecided=len(outcome.undecided),
                    conclusive=outcome.conclusive,
                )
            symbolic_failures = [
                ReceptivenessFailure(obligation, marking)
                for obligation, marking in outcome.failed
            ]
            symbolic_info = {
                "safe": len(outcome.safe),
                "failed": len(outcome.failed),
                "undecided": len(outcome.undecided),
                "conclusive": outcome.conclusive,
                "systems": outcome.stats.get("systems", 0),
                "constraints": outcome.stats.get("constraints", 0),
                "refinement_rounds": outcome.stats.get(
                    "refinement_rounds", 0
                ),
                "exact": outcome.stats.get("exact", False),
            }
            if outcome.conclusive:
                span.set(
                    method="symbolic",
                    engine=engine,
                    verdict=not symbolic_failures,
                    obligations=len(obligations),
                    failures=len(symbolic_failures),
                )
                return ReceptivenessReport(
                    composite,
                    obligations,
                    symbolic_failures,
                    "symbolic",
                    engine=engine,
                    symbolic=symbolic_info,
                )
            # Explicit fallback, restricted to the undecided remainder:
            # conclusively-safe obligations need no witness hunt and
            # conclusive failures are already proven.
            pending = outcome.undecided
            search_engine = "onthefly"
        reduced: int | None = None
        clock = recorder.clock
        search_start = clock.now()
        parallel = workers > 1 or memory_budget is not None
        with obs.span(
            "verify.receptiveness.search",
            engine=search_engine,
            backend=backend,
            workers=workers,
            proviso=proviso or "-",
        ) as search:
            if parallel:
                failures, explored = _parallel_failures(
                    composite,
                    pending,
                    max_states,
                    backend,
                    workers,
                    memory_budget,
                )
            elif search_engine in ("onthefly", "por"):
                failures, explored, reduced = _onthefly_failures(
                    composite,
                    pending,
                    max_states,
                    stop_at_first=stop_at_first,
                    reduce=search_engine == "por",
                    backend=backend,
                    proviso=proviso,
                )
            else:
                failures, explored = _reachability_failures(
                    composite, pending, max_states, backend=backend
                )
            search.set(states=explored)
        failures = symbolic_failures + failures
        elapsed = clock.now() - search_start
        obs.gauge("verify.receptiveness.states_explored", explored)
        if elapsed > 0:
            obs.gauge(
                "verify.receptiveness.states_per_second",
                round(explored / elapsed, 3),
            )
        if reduced is not None:
            obs.gauge("verify.receptiveness.states_reduced", reduced)
            if explored:
                obs.gauge(
                    "verify.receptiveness.reduction_ratio",
                    round(reduced / explored, 6),
                )
        span.set(
            method=method,
            engine=engine,
            verdict=not failures,
            obligations=len(obligations),
            failures=len(failures),
        )
        return ReceptivenessReport(
            composite,
            obligations,
            failures,
            method,
            engine=engine,
            states_explored=explored,
            states_reduced=reduced,
            proviso=proviso,
            symbolic=symbolic_info,
        )


def check_receptiveness_with_hiding(
    stg1: Stg,
    stg2: Stg,
    max_states: int = 1_000_000,
    engine: str | None = None,
    backend: str | None = None,
    workers: int | None = None,
    memory_budget: int | None = None,
    proviso: str | None = None,
) -> ReceptivenessReport:
    """The Section 5.3 refinement: apply ``hide'`` (relabel-to-epsilon)
    to each module's private signals before composing, keeping the
    net structure (and hence the Prop 5.5 check) intact while shrinking
    the visible alphabet.

    Receptiveness must NOT be checked on fully *contracted* modules —
    contraction forgets whether synchronization transitions are reached
    via internal transitions; ``hide'`` keeps dummy transitions instead.
    """
    from repro.stg.stg import hide_signals_to_epsilon

    private1 = stg1.signals() - stg2.signals()
    private2 = stg2.signals() - stg1.signals()
    reduced1 = hide_signals_to_epsilon(stg1, private1)
    reduced2 = hide_signals_to_epsilon(stg2, private2)
    reduced1.net.name = stg1.name
    reduced2.net.name = stg2.name
    return check_receptiveness(
        reduced1,
        reduced2,
        method="reachability",
        max_states=max_states,
        engine=engine,
        backend=backend,
        workers=workers,
        memory_budget=memory_budget,
        proviso=proviso,
    )
