"""Trace-theory conformance via the mirror construction.

An implementation *conforms* to a specification when it can be safely
substituted for it in every environment the specification works in.
The classical check (Dill): compose the implementation with the
*mirror* of the specification (the specification's most liberal
environment) and verify that no failure occurs — here, the
Proposition 5.5 receptiveness condition, plus trace containment of the
implementation's output behaviour.

This packages the paper's Section 5.3 machinery into the standard
substitutability question asked by hierarchical design flows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import metrics as obs
from repro.petri.net import EPSILON
from repro.stg.stg import Stg, mirror
from repro.verify.language import language_contained
from repro.verify.receptiveness import ReceptivenessReport, check_receptiveness


@dataclass
class ConformanceReport:
    """Outcome of a conformance check."""

    trace_contained: bool
    receptiveness: ReceptivenessReport
    interface_ok: bool
    interface_errors: tuple[str, ...]

    def conforms(self) -> bool:
        return (
            self.interface_ok
            and self.trace_contained
            and self.receptiveness.is_receptive()
        )

    def __str__(self) -> str:
        if self.conforms():
            return "conforms"
        reasons = []
        if not self.interface_ok:
            reasons += list(self.interface_errors)
        if not self.trace_contained:
            reasons.append("implementation has traces the spec forbids")
        if not self.receptiveness.is_receptive():
            reasons.append(str(self.receptiveness))
        return "does NOT conform: " + "; ".join(reasons)


def check_conformance(
    implementation: Stg,
    specification: Stg,
    max_states: int = 1_000_000,
    engine: str | None = None,
) -> ConformanceReport:
    """Check that ``implementation`` can replace ``specification``.

    Three conditions:

    1. **interface**: same input and output signal sets;
    2. **safety**: the implementation's visible traces are contained in
       the specification's (it never produces an output the spec could
       not);
    3. **receptiveness**: composed with the specification's mirror, no
       Proposition 5.5 failure occurs (the implementation accepts every
       input the spec's environments may produce, whenever they may
       produce it).

    ``engine`` selects the exploration engine for conditions 2 and 3
    (``"onthefly"`` by default — lazy product exploration with early
    exit; ``"por"`` adds stubborn-set partial-order reduction to both
    the containment check and the mirror-composition receptiveness
    search; ``"eager"`` forces the full-graph oracle path).
    """
    from repro.petri.product import DEFAULT_ENGINE, resolve_engine

    engine = resolve_engine(engine if engine is not None else DEFAULT_ENGINE)
    errors: list[str] = []
    if implementation.inputs != specification.inputs:
        errors.append(
            f"input mismatch: {sorted(implementation.inputs)} vs"
            f" {sorted(specification.inputs)}"
        )
    if implementation.outputs != specification.outputs:
        errors.append(
            f"output mismatch: {sorted(implementation.outputs)} vs"
            f" {sorted(specification.outputs)}"
        )
    with obs.span("verify.conformance.containment", engine=engine) as span:
        contained = language_contained(
            implementation.net,
            specification.net,
            silent={EPSILON},
            max_states=max_states,
            engine=engine,
        )
        span.set(verdict=contained)
    with obs.span("verify.conformance.receptiveness", engine=engine) as span:
        environment = mirror(specification)
        receptiveness = check_receptiveness(
            environment,
            implementation,
            method="reachability",
            max_states=max_states,
            engine=engine,
        )
        span.set(verdict=receptiveness.is_receptive())
    return ConformanceReport(
        trace_contained=contained,
        receptiveness=receptiveness,
        interface_ok=not errors,
        interface_errors=tuple(errors),
    )


def conforms(
    implementation: Stg,
    specification: Stg,
    max_states: int = 1_000_000,
    engine: str | None = None,
) -> bool:
    """Boolean shorthand for :func:`check_conformance`."""
    return check_conformance(
        implementation, specification, max_states, engine=engine
    ).conforms()
