"""Verification: receptiveness (Section 5.3) and exact language checks.

* :mod:`repro.verify.receptiveness` — the Proposition 5.5/5.6 failure
  check on composed modules, with the Theorem 5.7 structural fast path
  for marked graphs and the ``hide'`` refinement.
* :mod:`repro.verify.language` — DFA-based trace-language equality and
  containment for bounded nets (exact Theorems 4.5/4.7 and 5.1 checks).
* :mod:`repro.verify.equivalence` — strong/weak bisimulation and CSP
  failures semantics (refinement, deadlock traces), finer than the
  paper's trace semantics.
"""

from repro.verify.conformance import (
    ConformanceReport,
    check_conformance,
    conforms,
)
from repro.verify.equivalence import (
    deadlock_traces,
    failures,
    failures_refines,
    strongly_bisimilar,
    weakly_bisimilar,
)
from repro.verify.language import (
    Dfa,
    dfa_contained,
    dfa_equal,
    dfa_of_net,
    distinguishing_trace,
    language_contained,
    languages_equal,
    minimize,
)
from repro.verify.isomorphism import isomorphic, place_bijection
from repro.verify.receptiveness import (
    ReceptivenessFailure,
    ReceptivenessReport,
    SyncObligation,
    check_receptiveness,
    check_receptiveness_with_hiding,
    compose_with_obligations,
)

__all__ = [
    "ConformanceReport",
    "Dfa",
    "check_conformance",
    "conforms",
    "isomorphic",
    "place_bijection",
    "deadlock_traces",
    "failures",
    "failures_refines",
    "strongly_bisimilar",
    "weakly_bisimilar",
    "ReceptivenessFailure",
    "ReceptivenessReport",
    "SyncObligation",
    "check_receptiveness",
    "check_receptiveness_with_hiding",
    "compose_with_obligations",
    "dfa_contained",
    "dfa_equal",
    "dfa_of_net",
    "distinguishing_trace",
    "language_contained",
    "languages_equal",
    "minimize",
]
