"""Dead-transition removal and net cleanup (Section 5.2).

After parallel composition, synchronization transitions may be dead
(L0-dead: no reachable marking ever enables them).  The paper notes
their removal is polynomial for marked graphs and free-choice nets; for
general bounded nets we fall back to reachability.
"""

from __future__ import annotations

from repro.obs import metrics as obs
from repro.petri.classify import is_marked_graph
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError


def fireable_transitions_marked_graph(net: PetriNet) -> set[int]:
    """Polynomial fireability for marked graphs.

    In a marked graph there are no conflicts, so a transition can fire
    (at least once) iff each of its input places is marked or its unique
    producer can fire.  Computed as a least fixpoint.
    """
    if not is_marked_graph(net):
        raise ValueError("polynomial fireability requires a marked graph")
    producer_of = {
        place: net.producers(place)[0].tid for place in net.places
    }
    fireable: set[int] = set()
    changed = True
    while changed:
        changed = False
        for tid, transition in net.transitions.items():
            if tid in fireable:
                continue
            if all(
                net.initial[place] > 0 or producer_of[place] in fireable
                for place in transition.preset
            ):
                fireable.add(tid)
                changed = True
    return fireable


def dead_transition_ids(net: PetriNet, max_states: int = 1_000_000) -> set[int]:
    """Ids of transitions that never fire.

    Uses the polynomial marked-graph fixpoint when possible, otherwise
    explicit reachability; on unbounded nets, falls back to the
    Karp-Miller coverability tree (sound: a transition absent from the
    tree is definitely dead, though some dead transitions may be kept
    because omega-markings over-approximate)."""
    if is_marked_graph(net):
        return set(net.transitions) - fireable_transitions_marked_graph(net)
    try:
        graph = ReachabilityGraph(net, max_states=max_states)
    except UnboundedNetError:
        return set(net.transitions) - _coverability_fireable(net)
    return {t.tid for t in graph.dead_transitions()}


def _coverability_fireable(net: PetriNet, max_nodes: int = 200_000) -> set[int]:
    """Transition *actions* that appear in the Karp-Miller tree cannot be
    distinguished per tid from the tree edges alone, so fireability is
    recomputed per transition against the coverability set."""
    from repro.petri.coverability import coverability_tree

    tree = coverability_tree(net, max_nodes=max_nodes)
    fireable: set[int] = set()
    for tid, transition in net.transitions.items():
        for node in tree.nodes:
            counts = dict(node)
            if all(counts.get(place, 0) >= 1 for place in transition.preset):
                fireable.add(tid)
                break
    return fireable


def drop_sink_places(net: PetriNet) -> PetriNet:
    """Remove places no transition consumes from (pure token sinks).

    A consumer-free place never constrains any firing, so removing it
    (and its incoming arcs) preserves the trace language exactly.  This
    also eliminates the unbounded 'garbage collectors' that net
    contraction can leave behind.
    """
    sinks = {
        place
        for place in net.places
        if not net.consumers(place)
    }
    if not sinks:
        return net.copy()
    result = PetriNet(net.name, net.actions, net.places - sinks)
    for tid, transition in sorted(net.transitions.items()):
        result.add_transition(
            transition.preset, transition.action, transition.postset - sinks, tid=tid
        )
    result.input_guards = dict(net.input_guards)
    result.set_initial(
        Marking({p: c for p, c in net.initial.items() if p not in sinks})
    )
    return result


def merge_duplicate_places(net: PetriNet) -> PetriNet:
    """Merge places with identical producers, consumers and initial
    marking.

    Two such places provably hold the same token count in every
    reachable marking (induction over firings), so either one imposes
    the other's enabling constraint and one can be dropped.  Net
    contraction (Definition 4.10) mass-produces such duplicates among
    its product places; merging them after each contraction keeps
    cascaded hiding tractable.

    Guards on arcs from a dropped place are conjoined onto the kept
    place's arc to the same transition.
    """
    from repro.stg.guards import And, Guard

    groups: dict[tuple, list[str]] = {}
    for place in sorted(net.places):
        signature = (
            frozenset(t.tid for t in net.producers(place)),
            frozenset(t.tid for t in net.consumers(place)),
            net.initial[place],
        )
        groups.setdefault(signature, []).append(place)
    drop: dict[str, str] = {}
    for (producers, consumers, _), members in groups.items():
        if len(members) < 2:
            continue
        if not producers and not consumers:
            continue  # isolated places are handled by trim
        keeper = members[0]
        for other in members[1:]:
            drop[other] = keeper
    if not drop:
        return net.copy()
    result = PetriNet(net.name, net.actions, net.places - set(drop))
    for tid, transition in sorted(net.transitions.items()):
        result.add_transition(
            frozenset(p for p in transition.preset if p not in drop),
            transition.action,
            frozenset(p for p in transition.postset if p not in drop),
            tid=tid,
        )
    result.set_initial(
        Marking({p: c for p, c in net.initial.items() if p not in drop})
    )
    for (place, tid), guard in net.input_guards.items():
        target = drop.get(place, place)
        existing = result.input_guards.get((target, tid))
        if existing is None:
            result.input_guards[(target, tid)] = guard
        elif (
            existing is not guard
            and isinstance(existing, Guard)
            and isinstance(guard, Guard)
        ):
            result.input_guards[(target, tid)] = And(existing, guard)
    return result


def remove_dead_transitions(net: PetriNet, max_states: int = 1_000_000) -> PetriNet:
    """A copy of the net with all dead transitions removed.

    Behaviour-preserving: dead transitions contribute nothing to
    ``L(N)``.  This is the cleanup step the paper prescribes after
    compositional synthesis (the cross product of synchronization
    transitions leaves many dead duplicates).
    """
    with obs.span("algebra.remove_dead_transitions", net=net.name) as span:
        dead = dead_transition_ids(net, max_states=max_states)
        result = net.copy(name=net.name)
        for tid in dead:
            result.remove_transition(tid)
        span.set(
            dead=len(dead),
            transitions_before=len(net.transitions),
            transitions_after=len(result.transitions),
        )
        return result


def remove_unreachable_places(net: PetriNet, max_states: int = 1_000_000) -> PetriNet:
    """Remove places that are never marked and the transitions needing them.

    A place never marked in any reachable marking permanently disables
    every transition consuming from it; those transitions are dead, and
    after their removal the place can be dropped entirely.
    """
    try:
        graph = ReachabilityGraph(net, max_states=max_states)
    except UnboundedNetError:
        ever_marked = set(net.places)  # no pruning without a state space
    else:
        ever_marked = set()
        for marking in graph.states:
            ever_marked |= marking.marked_places()
    result = remove_dead_transitions(net, max_states=max_states)
    for place in sorted(net.places - ever_marked):
        # Only drop the place if no remaining transition touches it.
        if not result.consumers(place) and not result.producers(place):
            result.remove_place(place)
    return result


def trim(net: PetriNet, max_states: int = 1_000_000) -> PetriNet:
    """Full cleanup: drop sink places, dead transitions, then
    unreferenced unmarked places.  Language-preserving; robust on
    unbounded nets (coverability fallback).  A single reachability pass
    supplies both the fired-transition set and the ever-marked places.
    """
    with obs.span("algebra.trim", net=net.name) as span:
        from repro.cache import derived

        cached = derived.lookup("trim", [net], max_states=max_states)
        if cached is not None:
            span.set(
                cached=True,
                places_before=len(net.places),
                places_after=len(cached.places),
                transitions_before=len(net.transitions),
                transitions_after=len(cached.transitions),
            )
            return cached
        result = merge_duplicate_places(drop_sink_places(net))
        try:
            graph = ReachabilityGraph(result, max_states=max_states)
        except UnboundedNetError:
            dead = set(result.transitions) - _coverability_fireable(result)
            ever_marked = set(result.places)
        else:
            dead = set(result.transitions) - graph.fired_tids()
            ever_marked = set()
            for marking in graph.states:
                ever_marked |= marking.marked_places()
        for tid in dead:
            result.remove_transition(tid)
        for place in sorted(result.places):
            if result.consumers(place) or result.producers(place):
                continue
            if place not in ever_marked or result.initial[place] == 0:
                result.remove_place(place)
        span.set(
            dead=len(dead),
            places_before=len(net.places),
            places_after=len(result.places),
            transitions_before=len(net.transitions),
            transitions_after=len(result.transitions),
        )
        derived.publish("trim", [net], result, max_states=max_states)
        return result
