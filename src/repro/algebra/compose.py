"""Parallel composition by transition fusion (Definition 4.7, Theorem 4.5).

In a Petri net a transition already *is* a synchronization mechanism —
it fires only when all input places hold tokens.  Rendez-vous parallel
composition therefore needs no product construction: transitions of the
two nets carrying a *common* label are fused pairwise (all combinations,
since a label may occur on several transitions), everything else is kept.

``L(N1 || N2) = L(N1) || L(N2)`` — the reachability graph of the result
is the interleaved intersection of the component reachability graphs.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs import metrics as obs
from repro.petri.net import Action, PetriNet, disjoint_pair


def parallel(
    n1: PetriNet,
    n2: PetriNet,
    synchronize_on: Iterable[Action] | None = None,
) -> PetriNet:
    """The parallel composition ``N1 || N2`` (Definition 4.7).

    Synchronization happens on the intersection of the *alphabets* — a
    label in both alphabets but with transitions in only one net yields
    no fused transition at all (that action can never happen).

    Parameters
    ----------
    synchronize_on:
        Override the synchronization set (defaults to ``A1 & A2``).
        Useful for the circuit algebra, where only shared *signals*
        synchronize.
    """
    with obs.span("algebra.parallel", left=n1.name, right=n2.name) as span:
        from repro.cache import derived

        sync = (
            None if synchronize_on is None else sorted(set(synchronize_on))
        )
        result = derived.lookup("parallel", [n1, n2], sync=sync)
        cached = result is not None
        if result is None:
            result = _parallel(n1, n2, synchronize_on)
        span.set(
            places_before=len(n1.places) + len(n2.places),
            places_after=len(result.places),
            transitions_before=len(n1.transitions) + len(n2.transitions),
            transitions_after=len(result.transitions),
        )
        if cached:
            span.set(cached=True)
        else:
            derived.publish("parallel", [n1, n2], result, sync=sync)
        return result


def _parallel(
    n1: PetriNet,
    n2: PetriNet,
    synchronize_on: Iterable[Action] | None = None,
) -> PetriNet:
    n1, n2 = disjoint_pair(n1, n2)
    common = (
        set(synchronize_on)
        if synchronize_on is not None
        else n1.actions & n2.actions
    )
    result = PetriNet(
        f"({n1.name}||{n2.name})",
        n1.actions | n2.actions,
        n1.places | n2.places,
        n1.initial.add(
            place for place, count in n2.initial.items() for _ in range(count)
        ),
    )
    guard_sources: dict[int, list[tuple[PetriNet, int]]] = {}
    for net in (n1, n2):
        for tid, transition in sorted(net.transitions.items()):
            if transition.action not in common:
                added = result.add_transition(
                    transition.preset, transition.action, transition.postset
                )
                guard_sources[added.tid] = [(net, tid)]
    for action in sorted(common):
        for t1 in n1.transitions_with_action(action):
            for t2 in n2.transitions_with_action(action):
                fused = result.add_transition(
                    t1.preset | t2.preset, action, t1.postset | t2.postset
                )
                guard_sources[fused.tid] = [(n1, t1.tid), (n2, t2.tid)]
    # Section 5.1: boolean guards remain attached to the same arcs.
    for new_tid, origins in guard_sources.items():
        for net, old_tid in origins:
            old = net.transitions[old_tid]
            for place in old.preset:
                guard = net.guard_of(place, old_tid)
                if guard is not None:
                    result.input_guards[(place, new_tid)] = guard
    return result


def parallel_many(nets: Iterable[PetriNet]) -> PetriNet:
    """Left-associated n-ary parallel composition (|| is associative
    up to place naming and trace equivalence)."""
    iterator = iter(nets)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("parallel_many requires at least one net") from None
    for net in iterator:
        result = parallel(result, net)
    return result
