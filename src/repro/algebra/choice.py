"""Nondeterministic choice via root unwinding (Definitions 4.5-4.6, Fig 1).

The subtlety the paper illustrates in Figure 1: when the initial places
lie on cycles, naively merging initial places lets a loop iteration jump
into the *other* branch of the choice.  Root unwinding duplicates the
initially enabled transitions onto fresh copies of the initial places, so
once a branch has been entered, loop iterations return to the *original*
places and the unwound root is never re-entered.

Satisfies ``L(N1 + N2) = L(N1) | L(N2)`` (Proposition 4.4).

.. note::
   Definition 4.5 as printed duplicates only transitions whose preset
   lies *entirely* inside the initial places.  That loses behaviour when
   initial tokens are consumed at different times: after the first
   firing, remaining initial tokens still sit on the fresh copies, and a
   later transition needing one of them together with a newly produced
   token has no enabled variant (e.g. ``M0 = {p0, p1}``, ``t0 = {p0}
   -a-> {p0}``, ``t1 = {p0, p1} -b-> {p0}``: the trace ``a.b`` would be
   lost).  We therefore duplicate every transition once per *non-empty
   subset* of its initially-marked preset places, moving that subset to
   the copies — the printed definition is the special case where the
   whole preset is initial.  This generalization is validated against
   ``L(N1+N2) = L(N1) | L(N2)`` by exhaustive and property-based tests.
"""

from __future__ import annotations

from itertools import chain, combinations

from repro.algebra._util import fresh_place, product_place
from repro.obs import metrics as obs
from repro.petri.marking import Marking, Place
from repro.petri.net import PetriNet, disjoint_pair


def _nonempty_subsets(places: frozenset[Place]):
    ordered = sorted(places)
    return chain.from_iterable(
        combinations(ordered, size) for size in range(1, len(ordered) + 1)
    )


def root_unwinding(net: PetriNet) -> tuple[PetriNet, dict[Place, Place]]:
    """The root unwinding of a net with a safe initial marking (Def 4.5,
    generalized — see the module note).

    Returns ``(net', eta)`` where ``eta`` maps each fresh initial place
    to the original place it copies (the paper's bijection between
    ``P0`` and the initial places).  In ``net'`` the tokens sit on the
    fresh copies; no transition ever marks a copy again.
    """
    if not net.initial.is_safe():
        raise ValueError("root unwinding (Def 4.5) requires a safe initial marking")
    initial_places = net.initial.marked_places()
    result = net.copy()
    eta: dict[Place, Place] = {}
    inverse: dict[Place, Place] = {}
    for place in sorted(initial_places):
        copy = fresh_place(f"{place}0", result.places | set(eta))
        result.add_place(copy)
        eta[copy] = place
        inverse[place] = copy
    for transition in [t for _, t in sorted(net.transitions.items())]:
        shared = transition.preset & initial_places
        for subset in _nonempty_subsets(shared):
            moved = set(subset)
            result.add_transition(
                frozenset(
                    inverse[p] if p in moved else p for p in transition.preset
                ),
                transition.action,
                transition.postset,
            )
    result.set_initial(
        Marking({inverse[p]: net.initial[p] for p in initial_places})
    )
    return result, eta


def choice(n1: PetriNet, n2: PetriNet) -> PetriNet:
    """Nondeterministic choice ``N1 + N2`` (Definition 4.6).

    Both operands are root-unwound; the fresh initial place sets
    ``P01``/``P02`` are replaced by their cartesian product, and every
    copy place in a duplicated transition's preset becomes a full row
    (for ``N1``) or column (for ``N2``) of product places — so firing
    any initial transition of one operand disables every initial
    transition of the other.
    """
    with obs.span("algebra.choice", left=n1.name, right=n2.name) as span:
        from repro.cache import derived

        result = derived.lookup("choice", [n1, n2])
        cached = result is not None
        if result is None:
            result = _choice(n1, n2)
        span.set(
            places_before=len(n1.places) + len(n2.places),
            places_after=len(result.places),
            transitions_before=len(n1.transitions) + len(n2.transitions),
            transitions_after=len(result.transitions),
        )
        if cached:
            span.set(cached=True)
        else:
            derived.publish("choice", [n1, n2], result)
        return result


def _choice(n1: PetriNet, n2: PetriNet) -> PetriNet:
    n1, n2 = disjoint_pair(n1, n2)
    unwound1, eta1 = root_unwinding(n1)
    unwound2, eta2 = root_unwinding(n2)
    p01 = sorted(eta1)
    p02 = sorted(eta2)

    result = PetriNet(
        f"({n1.name}+{n2.name})",
        n1.actions | n2.actions,
        (n1.places | n2.places),
    )
    pair_name: dict[tuple[Place, Place], Place] = {}
    for x in p01:
        for y in p02:
            name = product_place(x, y, result.places | set(pair_name.values()))
            pair_name[(x, y)] = name
            result.add_place(name)

    def expand(place: Place, row_major: bool) -> set[Place]:
        """A copy place becomes its row/column of product places;
        ordinary places stay."""
        if row_major and place in eta1:
            return {pair_name[(place, y)] for y in p02}
        if not row_major and place in eta2:
            return {pair_name[(x, place)] for x in p01}
        return {place}

    for net, row_major in ((unwound1, True), (unwound2, False)):
        for transition in [t for _, t in sorted(net.transitions.items())]:
            preset: set[Place] = set()
            for place in transition.preset:
                preset |= expand(place, row_major)
            result.add_transition(preset, transition.action, transition.postset)

    marking = {
        pair_name[(x, y)]: min(unwound1.initial[x], unwound2.initial[y])
        for x in p01
        for y in p02
    }
    result.set_initial(Marking(marking))
    # Boolean guards are not propagated through choice: the paper only
    # defines guard propagation for hiding and parallel composition
    # (Section 5.1), and transition identities change across unwinding.
    return result
