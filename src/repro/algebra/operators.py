"""Basic action operators: nil, prefix, rename (Definitions 4.2-4.4)."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.algebra._util import fresh_place
from repro.petri.marking import Marking
from repro.petri.net import Action, PetriNet


def nil(name: str = "nil") -> PetriNet:
    """The deadlock process (Definition 4.2).

    A single marked place with no transitions: ``L(nil)`` contains only
    the empty trace (Proposition 4.1 states the set of non-empty traces
    is empty).
    """
    net = PetriNet(name)
    net.add_place("p0", tokens=1)
    return net


def prefix(net: PetriNet, action: Action, allow_unsafe: bool = False) -> PetriNet:
    """Action prefix ``a . N`` (Definition 4.3).

    A fresh initial place ``m0`` and a transition ``(m0, a, M)`` with
    ``M`` the initially marked places of ``N``; the new initial marking
    holds a single token in ``m0``, so ``a`` must fire exactly once
    before any behaviour of ``N``.

    The definition requires a *safe* initial marking.  With
    ``allow_unsafe=True`` the paper's sketched generalization is used
    instead: the original initial marking is kept, and a sentinel place
    (produced by the ``a`` transition) is added in a self-loop to every
    initially enabled transition of ``N``, blocking them until ``a``
    fires.
    """
    if not net.initial.is_safe():
        if not allow_unsafe:
            raise ValueError(
                "prefix (Def 4.3) requires a safe initial marking;"
                " pass allow_unsafe=True for the generalized construction"
            )
        return _prefix_unsafe(net, action)
    result = net.copy(name=f"{action}.{net.name}")
    start = fresh_place("m0", result.places)
    result.add_place(start)
    initial_places = result.initial.marked_places()
    result.set_initial(Marking({start: 1}))
    result.add_transition({start}, action, initial_places)
    return result


def _prefix_unsafe(net: PetriNet, action: Action) -> PetriNet:
    result = PetriNet(f"{action}.{net.name}", net.actions | {action}, net.places)
    start = fresh_place("m0", result.places)
    sentinel = fresh_place("started", result.places | {start})
    result.add_place(start)
    result.add_place(sentinel)
    initial_places = net.initial.marked_places()
    for tid, transition in net.transitions.items():
        if transition.preset <= initial_places:
            # Initially enabled: gate on the sentinel via a self-loop.
            result.add_transition(
                transition.preset | {sentinel},
                transition.action,
                transition.postset | {sentinel},
                tid=tid,
            )
        else:
            result.add_transition(
                transition.preset, transition.action, transition.postset, tid=tid
            )
    result.input_guards = dict(net.input_guards)
    result.add_transition({start}, action, {sentinel})
    counts = dict(net.initial)
    counts[start] = 1
    result.set_initial(Marking(counts))
    return result


def rename(net: PetriNet, mapping: Mapping[Action, Action]) -> PetriNet:
    """The renaming operator (Definition 4.4), extended to label sets.

    Every transition labeled ``b`` is relabeled ``mapping[b]``; the
    alphabet is updated accordingly.  Satisfies
    ``L(rename(N, f)) = rename(L(N), f)`` (Proposition 4.3).
    """
    result = PetriNet(
        net.name,
        {mapping.get(a, a) for a in net.actions},
        net.places,
        net.initial,
    )
    for tid, transition in net.transitions.items():
        result.add_transition(
            transition.preset,
            mapping.get(transition.action, transition.action),
            transition.postset,
            tid=tid,
        )
    result.input_guards = dict(net.input_guards)
    return result


def sequence_net(actions: Iterable[Action], cyclic: bool = False, name: str = "seq") -> PetriNet:
    """Convenience constructor: the net firing ``actions`` in order.

    With ``cyclic=True`` the last action feeds back to the first place,
    giving the Kleene-star behaviour ``(a1 . a2 ...)*`` used in the
    paper's Figure 2 example.
    """
    labels = list(actions)
    net = PetriNet(name)
    if not labels:
        net.add_place("p0", tokens=1)
        return net
    places = [f"p{i}" for i in range(len(labels) + (0 if cyclic else 1))]
    for index, label in enumerate(labels):
        source = places[index]
        target = places[(index + 1) % len(places)]
        net.add_transition({source}, label, {target})
    net.set_initial(Marking({places[0]: 1}))
    return net
