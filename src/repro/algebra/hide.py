"""Hiding as generalized net contraction (Definition 4.10, Theorem 4.7).

This is the paper's key technical novelty.  Conventional approaches hide
an action by relabeling its transitions to a silent epsilon; here the
transitions are *removed from the net*, analogous to the epsilon-closure
of automata — a net contraction.

For a transition ``t = (p, a, q)`` to hide:

1. new product places ``p x q`` replace the input places ``p``
   (a token in ``p_i`` is represented by one token in *every*
   ``(p_i, q_j)`` — the token "might be considered" to already sit in
   any output place of ``t``);
2. transitions producing into / consuming from ``p`` are re-routed
   through the full row ``{p_i} x q`` (consuming a ``p_i`` token removes
   all of its copies atomically, so no spurious partial enablings of the
   contracted transition can linger — the paper's 'curved arcs');
3. every *successor* of ``t`` (a consumer of some ``q_j``) is kept (it
   may still consume real ``q`` tokens produced by other transitions)
   **and** duplicated: the duplicate consumes *all* product places
   (atomically performing the virtual firing of ``t``) plus its other
   inputs, and produces its own outputs plus the leftover outputs
   ``q \\ p'`` of the virtual firing;
4. ``t`` itself is deleted.

Transitions with ``p & q != {}`` (self-loops) would introduce divergence
(an unobservable livelock) and are rejected, as the paper assumes.

Theorem 4.7: ``L(hide(N, a)) = hide(L(N), a)`` — validated exhaustively
in the test suite, including on the paper's Figure 3 nets.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra._util import product_place
from repro.obs import metrics as obs
from repro.petri.marking import Marking, Place
from repro.petri.net import Action, PetriNet, Transition


class DivergenceError(Exception):
    """Hiding a self-looping transition would create unobservable livelock."""


def hide_transition(
    net: PetriNet, tid: int, fast_path: bool = True
) -> PetriNet:
    """Contract a single transition out of the net (Definition 4.10).

    With ``fast_path=True`` the simplified collapse mentioned at the end
    of Section 4.4 is used when applicable (single conflict-free input
    place and single output place): the two places are merged.
    """
    hidden = net.transitions[tid]
    if hidden.is_self_looping():
        raise DivergenceError(
            f"cannot hide self-looping transition {hidden!r} (divergence)"
        )
    if not hidden.preset or not hidden.postset:
        raise ValueError(
            f"cannot contract {hidden!r}: source/sink transitions have no"
            " input or output places to collapse"
        )
    if fast_path and _collapsible(net, hidden):
        return _collapse(net, hidden)
    return _contract(net, hidden)


def _collapsible(net: PetriNet, hidden: Transition) -> bool:
    """The Section 4.4 special case: one conflict-free input place and
    one output place — contraction degenerates to merging the places.

    The merge rewrites ``source`` to ``target`` inside set-valued
    pre/postsets, so any other transition touching *both* places would
    silently lose an arc (a postset ``{source, target}`` denotes two
    produced tokens, the merged ``{target}`` only one); such nets must
    take the general contraction."""
    if len(hidden.preset) != 1 or len(hidden.postset) != 1:
        return False
    (source,) = hidden.preset
    (target,) = hidden.postset
    consumers = net.consumers(source)
    if len(consumers) != 1 or consumers[0].tid != hidden.tid:
        return False
    both = {source, target}
    return not any(
        both <= t.preset or both <= t.postset
        for tid, t in net.transitions.items()
        if tid != hidden.tid
    )


def _collapse(net: PetriNet, hidden: Transition) -> PetriNet:
    (source,) = hidden.preset
    (target,) = hidden.postset
    result = PetriNet(net.name, net.actions, net.places - {source}, None)
    counts = {p: c for p, c in net.initial.items() if p != source}
    if net.initial[source]:
        counts[target] = counts.get(target, 0) + net.initial[source]
    for tid, transition in net.transitions.items():
        if tid == hidden.tid:
            continue
        result.add_transition(
            frozenset(target if p == source else p for p in transition.preset),
            transition.action,
            frozenset(target if p == source else p for p in transition.postset),
            tid=tid,
        )
    result.set_initial(Marking(counts))
    result.input_guards = {
        (target if place == source else place, arc_tid): guard
        for (place, arc_tid), guard in net.input_guards.items()
        if arc_tid != hidden.tid
    }
    return result


def _contract(net: PetriNet, hidden: Transition) -> PetriNet:
    preset = sorted(hidden.preset)
    postset = sorted(hidden.postset)
    result = PetriNet(net.name, set(net.actions), net.places - hidden.preset)
    pair: dict[tuple[Place, Place], Place] = {}
    for p in preset:
        for q in postset:
            name = product_place(p, q, result.places | set(pair.values()))
            pair[(p, q)] = name
            result.add_place(name)

    def remap(places: frozenset[Place]) -> frozenset[Place]:
        """H of Def 4.10 restricted to the preset: each hidden input place
        becomes its full row of product places."""
        mapped: set[Place] = set()
        for place in places:
            if place in hidden.preset:
                mapped.update(pair[(place, q)] for q in postset)
            else:
                mapped.add(place)
        return frozenset(mapped)

    all_products = frozenset(pair.values())
    guard_moves: list[tuple[tuple[Place, int], tuple[Place, int]]] = []
    for tid, transition in sorted(net.transitions.items()):
        if tid == hidden.tid:
            continue
        kept = result.add_transition(
            remap(transition.preset), transition.action, remap(transition.postset)
        )
        for place in transition.preset:
            if net.guard_of(place, tid) is not None:
                for target in (
                    [pair[(place, q)] for q in postset]
                    if place in hidden.preset
                    else [place]
                ):
                    guard_moves.append(((place, tid), (target, kept.tid)))
        if transition.preset & hidden.postset:
            # Successor of the hidden transition: the duplicate performs
            # the virtual firing of ``t`` and its own firing atomically.
            duplicate_preset = all_products | remap(
                transition.preset - hidden.postset
            )
            duplicate_postset = remap(transition.postset) | (
                hidden.postset - transition.preset
            )
            duplicate = result.add_transition(
                duplicate_preset, transition.action, duplicate_postset
            )
            # Guards of the hidden transition's input arcs propagate to
            # the product-place arcs of the duplicates (Section 5.1).
            for place in hidden.preset:
                guard = net.guard_of(place, hidden.tid)
                if guard is not None:
                    for q in postset:
                        guard_moves.append(
                            ((place, hidden.tid), (pair[(place, q)], duplicate.tid))
                        )
            for place in transition.preset - hidden.postset:
                if net.guard_of(place, tid) is not None:
                    for target in (
                        [pair[(place, q)] for q in postset]
                        if place in hidden.preset
                        else [place]
                    ):
                        guard_moves.append(((place, tid), (target, duplicate.tid)))

    counts: dict[Place, int] = {
        place: count
        for place, count in net.initial.items()
        if place not in hidden.preset
    }
    for p in preset:
        if net.initial[p]:
            for q in postset:
                counts[pair[(p, q)]] = net.initial[p]
    result.set_initial(Marking(counts))
    for (old_place, old_tid), (new_place, new_tid) in guard_moves:
        guard = net.input_guards.get((old_place, old_tid))
        if guard is not None:
            result.input_guards[(new_place, new_tid)] = guard
    return result


def hide(
    net: PetriNet,
    actions: Action | Iterable[Action],
    fast_path: bool = True,
    max_steps: int = 10_000,
) -> PetriNet:
    """Hide all transitions carrying the given label(s) (Section 4.4).

    Transitions are contracted one at a time; Proposition 4.6 guarantees
    the result is independent of the order.  The labels are removed from
    the alphabet.  ``max_steps`` guards against pathological growth when
    same-label transitions are chained (each contraction can duplicate
    successors, which may themselves carry a hidden label).
    """
    labels = {actions} if isinstance(actions, str) else set(actions)
    with obs.span("algebra.hide", net=net.name, labels=sorted(labels)) as span:
        from repro.cache import derived

        cached = derived.lookup(
            "hide",
            [net],
            labels=sorted(labels),
            fast_path=bool(fast_path),
            max_steps=max_steps,
        )
        if cached is not None:
            span.set(
                cached=True,
                places_before=len(net.places),
                places_after=len(cached.places),
                transitions_before=len(net.transitions),
                transitions_after=len(cached.transitions),
            )
            return cached
        result = net.copy()
        steps = 0
        while True:
            candidates = [
                t
                for _, t in sorted(result.transitions.items())
                if t.action in labels
            ]
            if not candidates:
                break
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"hide({sorted(labels)}) did not converge in {max_steps} steps"
                )
            target = candidates[0]
            if target.preset == target.postset:
                # A hidden transition whose firing provably changes nothing
                # (preset equals postset) is an unobservable no-op; deleting
                # it preserves the visible language.  Such loops arise when
                # contracting one direction of an internal up/down pair.
                result.remove_transition(target.tid)
                continue
            result = hide_transition(result, target.tid, fast_path=fast_path)
        result.actions -= labels
        result.name = f"hide({net.name})"
        obs.count("algebra.hide.contractions", steps)
        span.set(
            contractions=steps,
            places_before=len(net.places),
            places_after=len(result.places),
            transitions_before=len(net.transitions),
            transitions_after=len(result.transitions),
        )
        derived.publish(
            "hide",
            [net],
            result,
            labels=sorted(labels),
            fast_path=bool(fast_path),
            max_steps=max_steps,
        )
        return result


def hide_to_epsilon(net: PetriNet, actions: Action | Iterable[Action]) -> PetriNet:
    """The paper's ``hide'`` refinement (Section 5.3): relabel instead of
    contract, leaving dummy epsilon transitions in place.

    Receptiveness checking must not lose the information of whether
    synchronization transitions are reached via internal transitions;
    ``hide'`` keeps one epsilon transition where ``hide`` would contract.
    """
    from repro.algebra.operators import rename
    from repro.petri.net import EPSILON

    labels = {actions} if isinstance(actions, str) else set(actions)
    result = rename(net, {label: EPSILON for label in labels})
    result.name = f"hide'({net.name})"
    return result
