"""Behaviour-preserving net reductions.

The algebra's derived nets (compositions, contractions, expansions)
accumulate epsilon dummies and redundant structure.  This module
provides classical language-preserving reductions:

* :func:`remove_noop_transitions` — transitions with ``preset ==
  postset`` fire invisibly and change nothing;
* :func:`contract_epsilon_transitions` — epsilon dummies that satisfy
  Definition 4.10's preconditions are contracted away (hide applied to
  the epsilon label, transition by transition, skipping the unsafe
  ones);
* :func:`fuse_series_places` — a place whose single producer and single
  consumer are epsilon-free can absorb chains (special case of the
  Section 4.4 fast path, applied globally);
* :func:`reduce` — a fixpoint of all of the above plus the dead-code
  cleanup of :mod:`repro.algebra.dead`.

Every reduction preserves the visible trace language exactly; the test
suite checks each against DFA equivalence.
"""

from __future__ import annotations

from repro.algebra.dead import merge_duplicate_places, trim
from repro.algebra.hide import _collapsible, hide_transition
from repro.petri.net import EPSILON, PetriNet


def remove_noop_transitions(net: PetriNet) -> PetriNet:
    """Drop epsilon transitions whose firing provably changes nothing
    (``preset == postset``)."""
    result = net.copy()
    for tid, transition in sorted(net.transitions.items()):
        if transition.action == EPSILON and transition.preset == transition.postset:
            result.remove_transition(tid)
    return result


def contract_epsilon_transitions(
    net: PetriNet, max_steps: int = 10_000
) -> PetriNet:
    """Contract every epsilon transition that Definition 4.10 supports.

    Self-looping epsilons and source/sink epsilons are left in place
    (contraction is undefined for them); everything else is removed by
    the hide construction with the Section 4.4 fast path.  Contractions
    that would *grow* the net (product-place blowup on multi-place
    pre/postsets with conflicts) are skipped unless they collapse.
    """
    result = net.copy()
    steps = 0
    changed = True
    while changed and steps < max_steps:
        changed = False
        for tid, transition in sorted(result.transitions.items()):
            if transition.action != EPSILON:
                continue
            if transition.preset == transition.postset:
                result.remove_transition(tid)
                changed = True
                break
            if transition.is_self_looping():
                continue
            if not transition.preset or not transition.postset:
                continue
            if _collapsible(result, transition):
                result = hide_transition(result, tid)
                changed = True
                break
            # General contraction only when it cannot blow up: single
            # input and output place (but with conflicts on the input).
            if len(transition.preset) == 1 and len(transition.postset) == 1:
                result = hide_transition(result, tid, fast_path=False)
                changed = True
                break
        steps += 1
    return result


def fuse_series_places(net: PetriNet) -> PetriNet:
    """Collapse ``place -> eps -> place`` chains left by expansions.

    Alias view of :func:`contract_epsilon_transitions` restricted to the
    pure series case; provided for targeted cleanup after
    :mod:`repro.core.expansion`.
    """
    result = net.copy()
    changed = True
    while changed:
        changed = False
        for tid, transition in sorted(result.transitions.items()):
            if transition.action != EPSILON:
                continue
            if (
                len(transition.preset) == 1
                and len(transition.postset) == 1
                and not transition.is_self_looping()
                and _collapsible(result, transition)
            ):
                result = hide_transition(result, tid)
                changed = True
                break
    return result


def reduce(net: PetriNet, max_states: int = 1_000_000) -> PetriNet:
    """Fixpoint cleanup: noop/epsilon contraction, duplicate-place
    merging and dead-code removal, iterated until stable."""
    current = net.copy()
    while True:
        before = (
            len(current.places),
            len(current.transitions),
            current.arcs(),
        )
        current = remove_noop_transitions(current)
        current = contract_epsilon_transitions(current)
        current = merge_duplicate_places(current)
        current = trim(current, max_states=max_states)
        after = (
            len(current.places),
            len(current.transitions),
            current.arcs(),
        )
        if after == before:
            return current
