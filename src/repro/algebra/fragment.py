"""The fragment of nets on which Definition 4.10's contraction is exact.

The paper's transition relation is set-based (``2^P x A x 2^P``), so net
contraction (hide) only has a faithful construction when no fused place
would need an arc weight above 1.  These predicates delimit that
fragment; they are shared by the hypothesis suites
(``tests/strategies.py`` re-exports them) and the corpus fuzz layer
(:mod:`repro.bench.corpus`), which replays the algebra laws on parsed
external nets.
"""

from __future__ import annotations

from repro.petri.net import PetriNet


def hidable_transition_ids(net: PetriNet, label: str) -> list[int]:
    """Transitions with ``label`` that Definition 4.10's construction
    supports exactly under the paper's set-based (weight-free) formalism.

    Excluded:

    * self-loops (divergence — the paper excludes them),
    * transitions whose successors consume from the hidden preset or
      produce into leftover postset places: the paper's set-based
      postsets cannot express the arc *weights* those cases need (the
      formalism's transition relation lives in ``2^P x A x 2^P``).
    """
    result = []
    for tid, t in sorted(net.transitions.items()):
        if t.action != label or t.is_self_looping():
            continue
        if not t.preset or not t.postset:
            continue
        supported = True
        for other_tid, other in net.transitions.items():
            if other_tid == tid:
                continue
            if other.preset & t.postset:
                if other.preset & t.preset:
                    supported = False  # successor competing for the preset
                if other.postset & (t.postset - other.preset):
                    supported = False  # duplicate would need arc weight 2
        if supported:
            result.append(tid)
    return result


def supported_hide(net: PetriNet, labels) -> PetriNet | None:
    """:func:`repro.algebra.hide.hide`, but guarded *step by step*.

    Proposition 4.6 (order-independence of contraction) only holds while
    every individual contraction stays inside the fragment the set-based
    formalism supports — and contracting one transition can push a
    *remaining* hidden transition outside that fragment (e.g. its fused
    preset place gains a competing successor).  Checking
    :func:`hidable_transition_ids` on the original net alone is
    therefore not enough.  This helper mirrors ``hide``'s contraction
    loop, re-validating the next candidate against the *current* net at
    each step, and returns ``None`` as soon as an unsupported
    contraction would be required.
    """
    from repro.algebra.hide import hide_transition

    label_set = {labels} if isinstance(labels, str) else set(labels)
    current = net.copy()
    steps = 0
    while True:
        candidates = [
            t
            for _, t in sorted(current.transitions.items())
            if t.action in label_set
        ]
        if not candidates:
            break
        steps += 1
        if steps > 10_000:
            return None
        target = candidates[0]
        if target.preset == target.postset:
            # Mirrors hide(): an unobservable no-op, safe to delete.
            current.remove_transition(target.tid)
            continue
        if target.tid not in hidable_transition_ids(current, target.action):
            return None
        current = hide_transition(current, target.tid)
    current.actions -= label_set
    current.name = f"hide({net.name})"
    return current
