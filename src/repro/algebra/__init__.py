"""The paper's Petri net algebra (Section 4).

Process-algebra operators defined *directly on net structure* — no
unfolding, no restriction to safe nets:

* :func:`~repro.algebra.operators.nil` — the deadlock process (Def 4.2),
* :func:`~repro.algebra.operators.prefix` — action prefix (Def 4.3),
* :func:`~repro.algebra.operators.rename` — label renaming (Def 4.4),
* :func:`~repro.algebra.choice.root_unwinding` and
  :func:`~repro.algebra.choice.choice` — nondeterministic choice via
  root unwinding (Defs 4.5/4.6, Fig 1),
* :func:`~repro.algebra.compose.parallel` — rendez-vous parallel
  composition by transition fusion (Def 4.7, Fig 2, Thm 4.5),
* :func:`~repro.algebra.hide.hide` — hiding as generalized net
  contraction (Def 4.10, Fig 3, Thm 4.7),
* :func:`~repro.algebra.dead.remove_dead_transitions` — the post-
  composition cleanup of Section 5.2.
"""

from repro.algebra.choice import choice, root_unwinding
from repro.algebra.compose import parallel
from repro.algebra.dead import (
    drop_sink_places,
    remove_dead_transitions,
    remove_unreachable_places,
    trim,
)
from repro.algebra.hide import (
    DivergenceError,
    hide,
    hide_to_epsilon,
    hide_transition,
)
from repro.algebra.operators import nil, prefix, rename, sequence_net
from repro.algebra.reductions import (
    contract_epsilon_transitions,
    fuse_series_places,
    reduce,
    remove_noop_transitions,
)

__all__ = [
    "DivergenceError",
    "choice",
    "contract_epsilon_transitions",
    "drop_sink_places",
    "fuse_series_places",
    "reduce",
    "remove_noop_transitions",
    "hide",
    "hide_to_epsilon",
    "hide_transition",
    "nil",
    "parallel",
    "prefix",
    "remove_dead_transitions",
    "remove_unreachable_places",
    "rename",
    "root_unwinding",
    "sequence_net",
    "trim",
]
