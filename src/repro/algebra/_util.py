"""Shared helpers for the algebra operators (fresh names, products)."""

from __future__ import annotations

from collections.abc import Iterable

from repro.petri.marking import Place


def fresh_place(base: str, existing: Iterable[Place]) -> Place:
    """A place name derived from ``base`` not colliding with ``existing``."""
    taken = set(existing)
    if base not in taken:
        return base
    counter = 1
    while f"{base}_{counter}" in taken:
        counter += 1
    return f"{base}_{counter}"


def product_place(left: Place, right: Place, existing: Iterable[Place]) -> Place:
    """A readable name for the product place ``(left, right)``.

    Used by choice (product of initial-place copies) and hide (product of
    the hidden transition's preset and postset).
    """
    return fresh_place(f"({left}*{right})", existing)
