"""Closed-loop gate-level simulation of a synthesized implementation.

The synthesized circuit is placed back into its specification
environment: the STG's state graph generates the allowed *input*
events, while the circuit's next-state functions decide the *output*
events.  The simulator checks, step by step, that

* every output the circuit produces is enabled in the specification
  (no unexpected output), and
* whenever the specification requires an output, the circuit is indeed
  excited to produce it (no missing output).

This is a direct behavioural validation of the synthesis flow on top of
:mod:`repro.synth.implementation`'s static excitation check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.stg.signals import is_signal_action, parse_event
from repro.stg.state_graph import StgState, build_state_graph
from repro.stg.stg import Stg
from repro.synth.implementation import GateImplementation


@dataclass
class SimulationTrace:
    """Record of one closed-loop run."""

    steps: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.errors


def _minterm(encoding: tuple) -> int:
    value = 0
    for i, level in enumerate(encoding):
        if level is None:
            raise ValueError("simulation requires binary encodings")
        value |= level << i
    return value


def _excited_outputs(
    implementation: GateImplementation, encoding: tuple, variables: tuple[str, ...]
) -> set[str]:
    """Outputs whose function value differs from their current level."""
    minterm = _minterm(encoding)
    excited = set()
    for signal, function in implementation.functions.items():
        index = variables.index(signal)
        current = (minterm >> index) & 1
        if function.evaluate(minterm) != bool(current):
            excited.add(signal)
    return excited


def simulate(
    stg: Stg,
    implementation: GateImplementation,
    steps: int = 200,
    seed: int = 0,
    max_states: int = 200_000,
) -> SimulationTrace:
    """Run a random closed-loop walk of ``steps`` events.

    At each state the environment may fire any enabled input event of
    the specification; the circuit may fire any excited output.  The
    walk picks uniformly among the union and cross-checks circuit
    excitation against specification enabling.
    """
    rng = random.Random(seed)
    graph = build_state_graph(stg, max_states=max_states)
    trace = SimulationTrace()
    state = graph.initial
    successors: dict[StgState, list[tuple[str, StgState]]] = {}
    for source, action, _, target in graph.edges:
        successors.setdefault(source, []).append((action, target))
    variables = graph.signals
    for _ in range(steps):
        outgoing = successors.get(state, [])
        spec_enabled_outputs = {
            parse_event(action).signal
            for action, _ in outgoing
            if is_signal_action(action) and stg.is_output_action(action)
        }
        circuit_excited = _excited_outputs(
            implementation, state.encoding, variables
        )
        unexpected = circuit_excited - spec_enabled_outputs
        if unexpected:
            trace.errors.append(
                f"circuit excites {sorted(unexpected)} not allowed by the"
                f" specification in {state!r}"
            )
            break
        missing = spec_enabled_outputs - circuit_excited
        if missing:
            trace.errors.append(
                f"specification requires {sorted(missing)} but the circuit"
                f" is not excited in {state!r}"
            )
            break
        if not outgoing:
            break  # specification deadlock (end of behaviour)
        action, state = rng.choice(outgoing)
        trace.steps.append(action)
    return trace
