"""Speed-independence (hazard) checks for synthesized implementations.

Matching the excitation function (checked by
:func:`repro.synth.implementation.verify_implementation`) is necessary
but not sufficient for a hazard-free speed-independent circuit; this
module adds the classical cover conditions:

* **monotonic cover** for complex gates: while an output stays excited
  to rise, the cube that turned it on must stay on (a cube that drops
  and another that picks up can glitch in a real OR gate);
* **set/reset exclusiveness** for C-element implementations: the set
  and reset networks must never be active simultaneously in any
  reachable code (a drive fight otherwise).

Both checks run over the binary encoded state graph of the STG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stg.signals import is_signal_action, parse_event
from repro.stg.state_graph import StateGraph, build_state_graph
from repro.stg.stg import Stg
from repro.synth.boolean import Cube, SumOfProducts
from repro.synth.implementation import CElementImplementation, GateImplementation
from repro.synth.nextstate import CodingError


@dataclass(frozen=True)
class HazardViolation:
    """A potential glitch: which signal, which kind, and where."""

    signal: str
    kind: str  # "monotonic-cover" | "set-reset-conflict"
    detail: str


def _minterm_of(encoding: tuple) -> int:
    value = 0
    for index, level in enumerate(encoding):
        if level is None:
            raise CodingError("hazard analysis requires binary encodings")
        value |= level << index
    return value


def _covering_cubes(sop: SumOfProducts, minterm: int) -> frozenset[Cube]:
    return frozenset(cube for cube in sop.cubes if cube.covers(minterm))


def monotonic_cover_violations(
    stg: Stg,
    implementation: GateImplementation,
    max_states: int = 200_000,
) -> list[HazardViolation]:
    """Check the monotonic cover condition on every output.

    For every state-graph edge ``state -x-> state'`` where output ``s``
    is excited to rise in both states (i.e. the excitation persists
    across an unrelated transition), some cube that covered ``state``
    must still cover ``state'``.  If the covering switches entirely to
    different cubes, the OR stage of the gate can glitch.
    """
    graph = build_state_graph(stg, max_states=max_states)
    excitation = _excitation_map(graph)
    violations: list[HazardViolation] = []
    for signal, function in implementation.functions.items():
        index = graph.signals.index(signal)
        for source, action, _, target in graph.edges:
            changed = (
                is_signal_action(action)
                and parse_event(action).signal == signal
            )
            if changed:
                continue
            rising_before = (signal, "rise") in excitation.get(source, ())
            rising_after = (signal, "rise") in excitation.get(target, ())
            if not (rising_before and rising_after):
                continue
            before = _covering_cubes(function, _minterm_of(source.encoding))
            after = _covering_cubes(function, _minterm_of(target.encoding))
            if before and after and not (before & after):
                violations.append(
                    HazardViolation(
                        signal,
                        "monotonic-cover",
                        f"cube handover across {action} while {signal}+ is"
                        f" pending ({source!r} -> {target!r})",
                    )
                )
    return violations


def _excitation_map(graph: StateGraph) -> dict:
    """Per state, the set of (signal, 'rise'|'fall') excitations."""
    excitation: dict = {}
    for source, action, _, _ in graph.edges:
        if not is_signal_action(action):
            continue
        event = parse_event(action)
        direction = {
            "+": "rise",
            "-": "fall",
        }.get(event.kind.value)
        if direction is None:
            continue
        excitation.setdefault(source, set()).add((event.signal, direction))
    return excitation


def set_reset_conflicts(
    stg: Stg,
    implementation: CElementImplementation,
    max_states: int = 200_000,
) -> list[HazardViolation]:
    """The set and reset networks of a C-element output must never both
    evaluate true in a reachable code."""
    graph = build_state_graph(stg, max_states=max_states)
    violations: list[HazardViolation] = []
    for signal in implementation.set_functions:
        set_fn = implementation.set_functions[signal]
        reset_fn = implementation.reset_functions[signal]
        seen: set[int] = set()
        for state in graph.states:
            minterm = _minterm_of(state.encoding)
            if minterm in seen:
                continue
            seen.add(minterm)
            if set_fn.evaluate(minterm) and reset_fn.evaluate(minterm):
                violations.append(
                    HazardViolation(
                        signal,
                        "set-reset-conflict",
                        f"S and R both active in code {minterm:b}",
                    )
                )
    return violations


def is_speed_independent(
    stg: Stg,
    implementation: GateImplementation,
    max_states: int = 200_000,
) -> bool:
    """Convenience: excitation match + monotonic covers + output
    persistency of the specification itself."""
    from repro.synth.implementation import verify_implementation

    if not verify_implementation(stg, implementation, max_states).ok:
        return False
    graph = build_state_graph(stg, max_states=max_states)
    if graph.output_persistency_violations():
        return False
    return not monotonic_cover_violations(stg, implementation, max_states)
