"""Next-state function extraction from encoded state graphs.

The classical STG synthesis step (Chu [3]): for every non-input signal,
derive the excitation function over the binary signal encodings —
``F_s(code) = 1`` iff in (every) state with that code the signal is 1
and stays 1, or is 0 and is excited to rise.  Requires a consistent
state assignment and complete state coding (CSC); violations are
reported as :class:`CodingError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stg.signals import EdgeKind, is_signal_action, parse_event
from repro.stg.state_graph import StateGraph, StgState, build_state_graph
from repro.stg.stg import Stg


class CodingError(Exception):
    """The state graph does not support next-state function extraction
    (inconsistent assignment, X values, or a CSC violation)."""


@dataclass(frozen=True)
class NextStateTable:
    """On/off/don't-care minterm sets for one signal.

    Minterms are integers over the signal ordering ``variables`` (bit i
    is ``variables[i]``'s level).
    """

    signal: str
    variables: tuple[str, ...]
    on_set: frozenset[int]
    off_set: frozenset[int]

    def dc_set(self) -> frozenset[int]:
        universe = set(range(2 ** len(self.variables)))
        return frozenset(universe - set(self.on_set) - set(self.off_set))


def _encoding_to_minterm(encoding: tuple, variables_count: int) -> int:
    minterm = 0
    for i, value in enumerate(encoding):
        if value is None:
            raise CodingError(
                "state graph contains X-valued encodings; resolve all"
                " unstable signals before synthesis"
            )
        minterm |= value << i
    return minterm


def _excited_to(graph: StateGraph, state: StgState, signal: str) -> EdgeKind | None:
    """The pending edge kind on ``signal`` in ``state``, if any."""
    for source, action, _, _ in graph.edges:
        if source != state or not is_signal_action(action):
            continue
        parsed = parse_event(action)
        if parsed.signal == signal:
            return parsed.kind
    return None


def next_state_tables(
    stg: Stg, max_states: int = 200_000
) -> dict[str, NextStateTable]:
    """Extract the next-state table of every non-input signal.

    Raises :class:`CodingError` on inconsistent assignment or CSC
    conflicts (the same code requiring both levels of a signal).
    """
    graph = build_state_graph(stg, max_states=max_states)
    return tables_from_graph(graph)


def tables_from_graph(graph: StateGraph) -> dict[str, NextStateTable]:
    stg = graph.stg
    if not graph.is_consistent():
        first = graph.violations[0]
        raise CodingError(
            f"inconsistent state assignment: {first.action} — {first.reason}"
        )
    variables = graph.signals
    tables: dict[str, NextStateTable] = {}
    for signal in sorted(stg.outputs | stg.internals):
        index = variables.index(signal)
        on: set[int] = set()
        off: set[int] = set()
        for state in graph.states:
            minterm = _encoding_to_minterm(state.encoding, len(variables))
            excitation = _excited_to(graph, state, signal)
            value = state.encoding[index]
            if excitation is EdgeKind.TOGGLE:
                raise CodingError(
                    f"toggle transitions on {signal!r} have no level-based"
                    " next-state function; expand to rise/fall first"
                )
            if value == 1 and excitation is not EdgeKind.FALL:
                target = on
            elif value == 0 and excitation is not EdgeKind.RISE:
                target = off
            elif value == 0 and excitation is EdgeKind.RISE:
                target = on
            else:  # value 1, falling
                target = off
            target.add(minterm)
        conflict = on & off
        if conflict:
            raise CodingError(
                f"CSC violation for signal {signal!r}: code(s)"
                f" {sorted(conflict)} require both levels"
            )
        tables[signal] = NextStateTable(
            signal=signal,
            variables=variables,
            on_set=frozenset(on),
            off_set=frozenset(off),
        )
    return tables
