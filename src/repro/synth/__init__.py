"""Logic synthesis of speed-independent circuits from STGs.

The substrate the paper assumes ("if each of these STGs is synthesized
correctly..."): next-state function extraction from the encoded state
graph, two-level minimization, complex-gate and C-element
implementation styles, and a closed-loop simulator validating the
synthesized logic against its specification.
"""

from repro.synth.boolean import (
    Cube,
    SumOfProducts,
    equivalent_on,
    minimize,
    prime_implicants,
    truth_table,
)
from repro.synth.hazards import (
    HazardViolation,
    is_speed_independent,
    monotonic_cover_violations,
    set_reset_conflicts,
)
from repro.synth.implementation import (
    CElementImplementation,
    GateImplementation,
    VerificationResult,
    implementation_from_tables,
    synthesize,
    synthesize_c_elements,
    verify_implementation,
)
from repro.synth.nextstate import (
    CodingError,
    NextStateTable,
    next_state_tables,
    tables_from_graph,
)
from repro.synth.simulate import SimulationTrace, simulate

__all__ = [
    "CElementImplementation",
    "HazardViolation",
    "is_speed_independent",
    "monotonic_cover_violations",
    "set_reset_conflicts",
    "CodingError",
    "Cube",
    "GateImplementation",
    "NextStateTable",
    "SimulationTrace",
    "SumOfProducts",
    "VerificationResult",
    "equivalent_on",
    "implementation_from_tables",
    "minimize",
    "next_state_tables",
    "prime_implicants",
    "simulate",
    "synthesize",
    "synthesize_c_elements",
    "tables_from_graph",
    "truth_table",
    "verify_implementation",
]
