"""Speed-independent implementations from next-state functions.

Two implementation styles:

* **complex gate** — one atomic gate per output computing the minimized
  next-state function ``F_s`` (output feeds back as an input);
* **standard C-element** — per output a set network ``S_s`` (cover of
  the excitation-to-1 region) and reset network ``R_s`` (excitation to
  0) driving a Muller C-element; this is the classical architecture for
  STG synthesis.

Both are validated against the specification state graph:
``F_s(code)`` must equal the next value of ``s`` in every reachable
state (the correctness criterion of state-graph based synthesis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stg.state_graph import build_state_graph
from repro.stg.stg import Stg
from repro.synth.boolean import SumOfProducts, minimize
from repro.synth.nextstate import (
    NextStateTable,
    next_state_tables,
    tables_from_graph,
)


@dataclass(frozen=True)
class GateImplementation:
    """A complex-gate circuit: one minimized function per output."""

    variables: tuple[str, ...]
    functions: dict[str, SumOfProducts]

    def expression(self, signal: str) -> str:
        return self.functions[signal].to_expression(self.variables)

    def netlist(self) -> str:
        lines = [
            f"{signal} = {self.expression(signal)}"
            for signal in sorted(self.functions)
        ]
        return "\n".join(lines)

    def literal_count(self) -> int:
        return sum(f.literal_count() for f in self.functions.values())


@dataclass(frozen=True)
class CElementImplementation:
    """A standard C-element circuit: set/reset covers per output.

    The output holds its value unless exactly one of S/R is active:
    ``s' = S | (s & !R)`` with the invariant that S and R are never
    active together on reachable codes.
    """

    variables: tuple[str, ...]
    set_functions: dict[str, SumOfProducts]
    reset_functions: dict[str, SumOfProducts]

    def netlist(self) -> str:
        lines = []
        for signal in sorted(self.set_functions):
            lines.append(
                f"set({signal})   = "
                f"{self.set_functions[signal].to_expression(self.variables)}"
            )
            lines.append(
                f"reset({signal}) = "
                f"{self.reset_functions[signal].to_expression(self.variables)}"
            )
        return "\n".join(lines)


def synthesize(stg: Stg, max_states: int = 200_000) -> GateImplementation:
    """Complex-gate synthesis of every non-input signal."""
    tables = next_state_tables(stg, max_states=max_states)
    return implementation_from_tables(tables)


def implementation_from_tables(
    tables: dict[str, NextStateTable]
) -> GateImplementation:
    functions: dict[str, SumOfProducts] = {}
    variables: tuple[str, ...] = ()
    for signal, table in tables.items():
        variables = table.variables
        functions[signal] = minimize(
            len(table.variables), table.on_set, table.dc_set()
        )
    return GateImplementation(variables, functions)


def synthesize_c_elements(
    stg: Stg, max_states: int = 200_000
) -> CElementImplementation:
    """Standard C-element synthesis: separate set and reset covers.

    Set region: codes where the signal is 0 and excited to rise.
    Reset region: codes where the signal is 1 and excited to fall.
    Hold region is everything else reachable; unreachable codes are
    don't cares for both.
    """
    graph = build_state_graph(stg, max_states=max_states)
    tables = tables_from_graph(graph)
    set_functions: dict[str, SumOfProducts] = {}
    reset_functions: dict[str, SumOfProducts] = {}
    variables: tuple[str, ...] = ()
    for signal, table in tables.items():
        variables = table.variables
        index = table.variables.index(signal)
        rising = {m for m in table.on_set if not (m >> index) & 1}
        falling = {m for m in table.off_set if (m >> index) & 1}
        care = set(table.on_set) | set(table.off_set)
        universe = set(range(2 ** len(table.variables)))
        dc = universe - care
        set_functions[signal] = minimize(
            len(table.variables), rising, dc
        )
        reset_functions[signal] = minimize(
            len(table.variables), falling, dc
        )
    return CElementImplementation(variables, set_functions, reset_functions)


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of checking an implementation against its STG."""

    ok: bool
    mismatches: tuple[tuple[str, int], ...]  # (signal, minterm)

    def __bool__(self) -> bool:
        return self.ok


def verify_implementation(
    stg: Stg, implementation: GateImplementation, max_states: int = 200_000
) -> VerificationResult:
    """Check ``F_s(code) == next value of s`` on every reachable code."""
    tables = next_state_tables(stg, max_states=max_states)
    mismatches: list[tuple[str, int]] = []
    for signal, table in tables.items():
        function = implementation.functions[signal]
        for minterm in table.on_set:
            if not function.evaluate(minterm):
                mismatches.append((signal, minterm))
        for minterm in table.off_set:
            if function.evaluate(minterm):
                mismatches.append((signal, minterm))
    return VerificationResult(not mismatches, tuple(mismatches))
