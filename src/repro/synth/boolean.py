"""Two-level boolean minimization (Quine-McCluskey with don't-cares).

The logic-synthesis substrate: next-state functions extracted from STG
state graphs are minimized into sum-of-products covers, from which
complex-gate or C-element implementations are built.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence


@dataclass(frozen=True)
class Cube:
    """A product term over ``n`` ordered variables.

    ``mask`` has bit i set when variable i is cared about; ``value``
    holds the required level of each cared-about variable.
    """

    n: int
    mask: int
    value: int

    def __post_init__(self):
        if self.value & ~self.mask:
            raise ValueError("value bits outside the mask")

    def covers(self, minterm: int) -> bool:
        return (minterm & self.mask) == self.value

    def literals(self) -> int:
        return bin(self.mask).count("1")

    def to_expression(self, names: Sequence[str]) -> str:
        parts = []
        for i, name in enumerate(names):
            if self.mask >> i & 1:
                parts.append(name if self.value >> i & 1 else f"!{name}")
        return " & ".join(parts) if parts else "1"

    def evaluate(self, assignment: int) -> bool:
        return self.covers(assignment)


@dataclass(frozen=True)
class SumOfProducts:
    """A minimized cover: OR of :class:`Cube` terms."""

    n: int
    cubes: tuple[Cube, ...]

    def evaluate(self, assignment: int) -> bool:
        return any(cube.covers(assignment) for cube in self.cubes)

    def to_expression(self, names: Sequence[str]) -> str:
        if not self.cubes:
            return "0"
        terms = [cube.to_expression(names) for cube in self.cubes]
        if terms == ["1"]:
            return "1"
        return " | ".join(terms)

    def literal_count(self) -> int:
        return sum(cube.literals() for cube in self.cubes)


def _combine(a: Cube, b: Cube) -> Cube | None:
    """Merge two cubes differing in exactly one cared-about bit."""
    if a.mask != b.mask:
        return None
    diff = a.value ^ b.value
    if diff and (diff & (diff - 1)) == 0:
        return Cube(a.n, a.mask & ~diff, a.value & ~diff)
    return None


def prime_implicants(
    n: int, on_set: Iterable[int], dc_set: Iterable[int] = ()
) -> list[Cube]:
    """All prime implicants of the function via iterated merging."""
    full_mask = (1 << n) - 1
    current = {Cube(n, full_mask, m) for m in set(on_set) | set(dc_set)}
    primes: set[Cube] = set()
    while current:
        merged: set[Cube] = set()
        used: set[Cube] = set()
        ordered = sorted(current, key=lambda c: (c.mask, c.value))
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                combined = _combine(a, b)
                if combined is not None:
                    merged.add(combined)
                    used.add(a)
                    used.add(b)
        primes |= current - used
        current = merged
    return sorted(primes, key=lambda c: (c.mask, c.value))


def _greedy_cover(on_set: list[int], primes: list[Cube]) -> list[Cube]:
    """Essential primes first, then greedy set cover of the rest."""
    remaining = set(on_set)
    chosen: list[Cube] = []
    # Essential primes.
    for minterm in list(remaining):
        covering = [p for p in primes if p.covers(minterm)]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for cube in chosen:
        remaining -= {m for m in remaining if cube.covers(m)}
    # Greedy for the rest: widest coverage, fewest literals.
    while remaining:
        best = max(
            primes,
            key=lambda p: (
                len([m for m in remaining if p.covers(m)]),
                -p.literals(),
            ),
        )
        covered = {m for m in remaining if best.covers(m)}
        if not covered:
            raise RuntimeError("cover construction failed (uncoverable on-set)")
        chosen.append(best)
        remaining -= covered
    return chosen


def minimize(
    n: int, on_set: Iterable[int], dc_set: Iterable[int] = ()
) -> SumOfProducts:
    """Quine-McCluskey: minimal (heuristically) sum-of-products cover.

    ``on_set``/``dc_set`` are minterm integers over ``n`` variables
    (bit i of a minterm is variable i's value).
    """
    on_list = sorted(set(on_set))
    if not on_list:
        return SumOfProducts(n, ())
    dc = set(dc_set) - set(on_list)
    if len(on_list) + len(dc) == 2**n:
        return SumOfProducts(n, (Cube(n, 0, 0),))  # constant 1
    primes = prime_implicants(n, on_list, dc)
    cover = _greedy_cover(on_list, primes)
    # Deterministic order for reproducible output.
    return SumOfProducts(
        n, tuple(sorted(set(cover), key=lambda c: (c.mask, c.value)))
    )


def truth_table(sop: SumOfProducts) -> list[bool]:
    """The full truth table (index = minterm)."""
    return [sop.evaluate(m) for m in range(2**sop.n)]


def equivalent_on(
    f: SumOfProducts, g: SumOfProducts, care_set: Iterable[int]
) -> bool:
    """``True`` iff the two covers agree on every minterm in ``care_set``."""
    return all(f.evaluate(m) == g.evaluate(m) for m in care_set)
