"""Dependency-free instrumentation: spans, counters, gauges, JSON emission.

Every layer of the pipeline — the exploration engines
(:mod:`repro.petri.reachability`, :mod:`repro.petri.product`,
:mod:`repro.petri.independence`), the algebra operators
(:mod:`repro.algebra`), and the verification checks
(:mod:`repro.verify`) — reports what it did through this package:
wall-time *spans* around each phase, additive *counters* for work
performed (states discovered, edges expanded, enabledness checks,
interner hits), and *gauges* for level-style measurements (frontier
high-water mark, interning hit rate, reduction ratio).

Nothing is collected unless a recorder is active::

    from repro import obs

    with obs.record() as recorder:
        report = check_receptiveness(a, b, engine="por")
    payload = recorder.to_dict()          # the documented JSON schema

When no recorder is installed every instrumentation call is a no-op
with a constant-time fast path, so instrumented hot paths cost nothing
in ordinary runs.  Recorders nest: an inner ``record()`` (e.g. the one
:func:`repro.verify.receptiveness.check_receptiveness` uses to attach
``report.metrics``) forwards every event to the outer recorder as well,
which is how ``cip verify --metrics-out`` sees the same numbers the
report carries.

Timing uses a monotonic clock by default; tests inject
:class:`FakeClock` for deterministic durations.  See
``docs/OBSERVABILITY.md`` for the JSON schema and the span/counter
naming scheme.
"""

from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.emit import (
    benchmark_trajectory,
    metrics_payload,
    validate_metrics,
    write_benchmark,
    write_metrics,
)
from repro.obs.metrics import (
    SCHEMA_VERSION,
    MetricsRecorder,
    SpanRecord,
    active,
    count,
    current,
    gauge,
    gauge_max,
    record,
    span,
)

__all__ = [
    "Clock",
    "FakeClock",
    "MetricsRecorder",
    "MonotonicClock",
    "SCHEMA_VERSION",
    "SpanRecord",
    "active",
    "benchmark_trajectory",
    "count",
    "current",
    "gauge",
    "gauge_max",
    "metrics_payload",
    "record",
    "span",
    "validate_metrics",
    "write_benchmark",
    "write_metrics",
]
