"""Recorders, spans, counters, gauges — and the active-recorder stack.

Instrumented code never holds a recorder; it calls the module-level
helpers (:func:`span`, :func:`count`, :func:`gauge`,
:func:`gauge_max`), which dispatch to every recorder currently
installed by :func:`record`.  With no recorder installed the helpers
return immediately, so instrumentation is free in ordinary runs.

Recorders nest by stacking: events reach *all* active recorders, which
lets :func:`repro.verify.receptiveness.check_receptiveness` attach its
own per-call metrics while an outer CLI ``--profile`` recorder sees the
same events — the two can never disagree.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.clock import Clock, MonotonicClock

#: Version tag carried by every emitted metrics payload.
SCHEMA_VERSION = "repro.obs/v1"


@dataclass
class SpanRecord:
    """One timed phase.  ``end`` is ``None`` while the span is open."""

    name: str
    start: float
    end: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "meta": dict(self.meta),
        }


class MetricsRecorder:
    """A sink for spans, counters and gauges.

    * **spans** are appended in open order and closed in place;
    * **counters** are additive (``count`` sums deltas);
    * **gauges** are level measurements — ``gauge`` overwrites,
      ``gauge_max`` keeps the high-water mark.

    The clock defaults to the clock of the innermost already-active
    recorder (so a test installing a :class:`~repro.obs.clock.FakeClock`
    controls nested recorders too), then to a monotonic clock.
    """

    def __init__(self, clock: Clock | None = None):
        if clock is None:
            parent = current()
            clock = parent.clock if parent is not None else MonotonicClock()
        self.clock = clock
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, int | float] = {}

    # -- event sinks --------------------------------------------------------

    def start_span(self, name: str, meta: dict[str, Any]) -> SpanRecord:
        record = SpanRecord(name, self.clock.now(), None, meta)
        self.spans.append(record)
        return record

    def end_span(self, span: SpanRecord) -> None:
        span.end = self.clock.now()

    def count(self, name: str, delta: int | float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: int | float) -> None:
        self.gauges[name] = value

    def gauge_max(self, name: str, value: int | float) -> None:
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    # -- queries ------------------------------------------------------------

    def span_named(self, name: str) -> SpanRecord | None:
        """The most recent span with this name (``None`` if absent)."""
        for span in reversed(self.spans):
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        """The documented JSON payload (see ``docs/OBSERVABILITY.md``)."""
        return {
            "schema": SCHEMA_VERSION,
            "clock": self.clock.name,
            "spans": [span.to_dict() for span in self.spans],
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
        }


#: Innermost-last stack of active recorders; events go to all of them.
_stack: list[MetricsRecorder] = []


def active() -> bool:
    """``True`` iff at least one recorder is collecting."""
    return bool(_stack)


def current() -> MetricsRecorder | None:
    """The innermost active recorder, or ``None``."""
    return _stack[-1] if _stack else None


@contextmanager
def record(
    clock: Clock | None = None, recorder: MetricsRecorder | None = None
) -> Iterator[MetricsRecorder]:
    """Install a recorder for the duration of the ``with`` block."""
    sink = recorder if recorder is not None else MetricsRecorder(clock=clock)
    _stack.append(sink)
    try:
        yield sink
    finally:
        for index in range(len(_stack) - 1, -1, -1):
            if _stack[index] is sink:
                del _stack[index]
                break


class SpanHandle:
    """Yielded by :func:`span`; lets the body attach metadata."""

    __slots__ = ("_meta",)

    def __init__(self, meta: dict[str, Any]):
        self._meta = meta

    def set(self, **values: Any) -> None:
        self._meta.update(values)


class _NullHandle:
    __slots__ = ()

    def set(self, **values: Any) -> None:
        pass


_NULL_HANDLE = _NullHandle()


@contextmanager
def span(name: str, **meta: Any) -> Iterator[SpanHandle | _NullHandle]:
    """Time a phase on every active recorder.

    The handle's ``set(**values)`` attaches metadata visible in all
    recorders (the ``meta`` dict is shared).  Spans close even when the
    body raises, so aborted explorations still report their cost.
    """
    if not _stack:
        yield _NULL_HANDLE
        return
    shared = dict(meta)
    opened = [(sink, sink.start_span(name, shared)) for sink in _stack]
    try:
        yield SpanHandle(shared)
    finally:
        for sink, started in opened:
            sink.end_span(started)


def count(name: str, delta: int | float = 1) -> None:
    """Add ``delta`` to a counter on every active recorder."""
    for sink in _stack:
        sink.count(name, delta)


def gauge(name: str, value: int | float) -> None:
    """Set a gauge (last write wins) on every active recorder."""
    for sink in _stack:
        sink.gauge(name, value)


def gauge_max(name: str, value: int | float) -> None:
    """Raise a high-water-mark gauge on every active recorder."""
    for sink in _stack:
        sink.gauge_max(name, value)
