"""Clocks for span timing.

The recorder never calls :func:`time.perf_counter` directly; it asks
its clock.  That single indirection is what makes every duration in the
metrics schema testable: inject a :class:`FakeClock` and spans have
exact, reproducible lengths.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Anything with a monotonically non-decreasing ``now()``."""

    name: str

    def now(self) -> float: ...


class MonotonicClock:
    """Wall-time spans via :func:`time.perf_counter` (the default)."""

    name = "monotonic"
    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class FakeClock:
    """A deterministic clock for tests.

    Every ``now()`` call returns the current value and then advances it
    by ``tick`` — so with ``tick=1.0`` the n-th reading is exactly
    ``start + n``, and span durations depend only on how many clock
    reads happened between open and close, never on the machine.
    ``advance()`` jumps the clock explicitly (e.g. to model a slow
    phase).
    """

    name = "fake"
    __slots__ = ("_now", "tick")

    def __init__(self, start: float = 0.0, tick: float = 0.0):
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        value = self._now
        self._now += self.tick
        return value

    def advance(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("clocks only move forward")
        self._now += amount
