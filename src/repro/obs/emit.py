"""JSON emission and schema validation for collected metrics.

One serializer for everything numeric the project reports: the
``cip verify --metrics-out`` payload, the ``metrics`` field of
:class:`~repro.verify.receptiveness.ReceptivenessReport`, and the
``benchmarks/BENCH_*.json`` trajectory files all go through this
module, so the CLI, the library, and the benchmarks can never emit
structurally different numbers for the same run.

The metrics payload layout (validated by :func:`validate_metrics`) is
documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.obs.metrics import SCHEMA_VERSION, MetricsRecorder

_NUMBER = (int, float)


def _write_json(path: str | Path, payload: dict[str, Any]) -> None:
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def metrics_payload(source: MetricsRecorder | Mapping[str, Any]) -> dict[str, Any]:
    """The schema dict of a recorder (dicts pass through unchanged)."""
    if isinstance(source, MetricsRecorder):
        return source.to_dict()
    return dict(source)


def write_metrics(
    path: str | Path, source: MetricsRecorder | Mapping[str, Any]
) -> dict[str, Any]:
    """Validate and write a metrics payload; returns the payload."""
    payload = validate_metrics(metrics_payload(source))
    _write_json(path, payload)
    return payload


def validate_metrics(payload: Any) -> dict[str, Any]:
    """Check a payload against the documented schema.

    Returns the payload on success; raises :class:`ValueError` naming
    the first offending field otherwise.  Used by the emitter itself,
    by the CLI tests, and by the CI schema-smoke job.
    """

    def fail(reason: str) -> ValueError:
        return ValueError(f"invalid metrics payload: {reason}")

    if not isinstance(payload, dict):
        raise fail(f"expected an object, got {type(payload).__name__}")
    if payload.get("schema") != SCHEMA_VERSION:
        raise fail(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA_VERSION!r}"
        )
    if not isinstance(payload.get("clock"), str):
        raise fail("clock must be a string")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        raise fail("spans must be a list")
    for index, span in enumerate(spans):
        if not isinstance(span, dict):
            raise fail(f"spans[{index}] must be an object")
        if not isinstance(span.get("name"), str) or not span["name"]:
            raise fail(f"spans[{index}].name must be a non-empty string")
        if not isinstance(span.get("start"), _NUMBER):
            raise fail(f"spans[{index}].start must be a number")
        for key in ("end", "duration"):
            value = span.get(key)
            if value is not None and not isinstance(value, _NUMBER):
                raise fail(f"spans[{index}].{key} must be a number or null")
        if not isinstance(span.get("meta"), dict):
            raise fail(f"spans[{index}].meta must be an object")
    for table in ("counters", "gauges"):
        entries = payload.get(table)
        if not isinstance(entries, dict):
            raise fail(f"{table} must be an object")
        for name, value in entries.items():
            if not isinstance(name, str):
                raise fail(f"{table} keys must be strings")
            if not isinstance(value, _NUMBER):
                raise fail(f"{table}[{name!r}] must be a number")
    return payload


def benchmark_trajectory(
    benchmark: str,
    unit: str,
    instances: Mapping[str, Mapping[str, int | float]],
) -> dict[str, Any]:
    """The ``BENCH_*.json`` trajectory layout: one named benchmark, a
    unit, and per-instance measurement dicts (instances sorted by name
    so regenerated files diff cleanly)."""
    return {
        "benchmark": benchmark,
        "unit": unit,
        "instances": {
            name: dict(instances[name]) for name in sorted(instances)
        },
    }


def write_benchmark(
    path: str | Path,
    benchmark: str,
    unit: str,
    instances: Mapping[str, Mapping[str, int | float]],
) -> dict[str, Any]:
    """Validate and write a benchmark trajectory file; returns the
    payload."""
    payload = validate_benchmark(benchmark_trajectory(benchmark, unit, instances))
    _write_json(path, payload)
    return payload


def validate_benchmark(payload: Any) -> dict[str, Any]:
    """Check a ``BENCH_*.json`` trajectory against its schema.

    The layout produced by :func:`benchmark_trajectory`: a non-empty
    ``benchmark`` name, a non-empty ``unit`` string, and an
    ``instances`` object mapping instance names to flat objects of
    numeric measurements.  Returns the payload on success; raises
    :class:`ValueError` naming the first offending field otherwise.
    Used by the emitter itself and by the CI schema-smoke step that
    guards the committed benchmark files.
    """

    def fail(reason: str) -> ValueError:
        return ValueError(f"invalid benchmark payload: {reason}")

    if not isinstance(payload, dict):
        raise fail(f"expected an object, got {type(payload).__name__}")
    for key in ("benchmark", "unit"):
        if not isinstance(payload.get(key), str) or not payload[key]:
            raise fail(f"{key} must be a non-empty string")
    instances = payload.get("instances")
    if not isinstance(instances, dict):
        raise fail("instances must be an object")
    for name, measurements in instances.items():
        if not isinstance(name, str) or not name:
            raise fail("instance names must be non-empty strings")
        if not isinstance(measurements, dict):
            raise fail(f"instances[{name!r}] must be an object")
        for metric, value in measurements.items():
            if not isinstance(metric, str) or not metric:
                raise fail(
                    f"instances[{name!r}] keys must be non-empty strings"
                )
            if not isinstance(value, _NUMBER) or isinstance(value, bool):
                raise fail(
                    f"instances[{name!r}][{metric!r}] must be a number"
                )
    return payload
