"""Model library: the paper's example nets and classic asynchronous modules.

* :mod:`repro.models.paper_figures` — the Figure 1-3 algebra examples,
* :mod:`repro.models.protocol_translator` — the Section 6 case study
  (Figures 4-9, Table 1),
* :mod:`repro.models.library` — handshake components, C-element,
  toggle, 2-phase pipeline stages, and a general-net arbiter.
"""

from repro.models import library, paper_figures, protocol_translator

__all__ = ["library", "paper_figures", "protocol_translator"]
