"""A library of classic asynchronous modules as STGs.

Used by the examples and tests; the arbiter demonstrates why the paper
insists on *general* Petri nets (arbiters cannot be modeled as marked
graphs or free-choice nets).
"""

from __future__ import annotations

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import Stg


def four_phase_master(req: str = "r", ack: str = "a", name: str = "master") -> Stg:
    """Active handshake side: drives ``req``, observes ``ack``."""
    net = PetriNet(name)
    net.add_transition({"m0"}, f"{req}+", {"m1"})
    net.add_transition({"m1"}, f"{ack}+", {"m2"})
    net.add_transition({"m2"}, f"{req}-", {"m3"})
    net.add_transition({"m3"}, f"{ack}-", {"m0"})
    net.set_initial(Marking({"m0": 1}))
    return Stg(net, inputs={ack}, outputs={req})


def four_phase_slave(req: str = "r", ack: str = "a", name: str = "slave") -> Stg:
    """Passive handshake side: observes ``req``, drives ``ack``."""
    net = PetriNet(name)
    net.add_transition({"s0"}, f"{req}+", {"s1"})
    net.add_transition({"s1"}, f"{ack}+", {"s2"})
    net.add_transition({"s2"}, f"{req}-", {"s3"})
    net.add_transition({"s3"}, f"{ack}-", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={req}, outputs={ack})


def branching_four_phase_slave(
    req: str = "r", ack: str = "a", name: str = "branching-slave"
) -> Stg:
    """Passive handshake side with an internal free choice: after
    ``req+`` the slave silently commits to one of two acknowledgement
    paths before driving ``ack+``.

    Externally language-equivalent to :func:`four_phase_slave`, but the
    choice place breaks the marked-graph property, so a composition
    with masters cannot take the structural (Thm 5.7) shortcut — it
    must be decided by a reachability-class engine.  A bank of these
    is the canonical stress instance for ``engine=symbolic``: the
    explicit composite grows as ``~6^n`` while every Prop 5.5
    obligation stays a constant-size per-channel linear system.
    """
    from repro.petri.net import EPSILON

    net = PetriNet(name)
    net.add_transition({"s0"}, f"{req}+", {"s1"})
    net.add_transition({"s1"}, EPSILON, {"s2a"})
    net.add_transition({"s1"}, EPSILON, {"s2b"})
    net.add_transition({"s2a"}, f"{ack}+", {"s3"})
    net.add_transition({"s2b"}, f"{ack}+", {"s3"})
    net.add_transition({"s3"}, f"{req}-", {"s4"})
    net.add_transition({"s4"}, f"{ack}-", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return Stg(net, inputs={req}, outputs={ack})


def two_phase_buffer_stage(
    left_req: str, left_ack: str, right_req: str, right_ack: str, name: str
) -> Stg:
    """A transition-signaling FIFO stage: accept on the left handshake,
    pass on via the right, and only acknowledge left once the right
    side has acknowledged.

    The fully sequential discipline keeps a chain of stages *receptive*:
    a stage signals ``left_ack`` exactly when it is ready for the next
    ``left_req``, so no event can ever arrive at an unready stage.
    """
    net = PetriNet(name)
    net.add_transition({"b0"}, f"{left_req}~", {"b1"})
    net.add_transition({"b1"}, f"{right_req}~", {"b2"})
    net.add_transition({"b2"}, f"{right_ack}~", {"b3"})
    net.add_transition({"b3"}, f"{left_ack}~", {"b0"})
    net.set_initial(Marking({"b0": 1}))
    return Stg(
        net,
        inputs={left_req, right_ack},
        outputs={left_ack, right_req},
    )


def muller_c_element(x: str = "x", y: str = "y", c: str = "c") -> Stg:
    """The Muller C-element: ``c`` rises after both inputs rise and
    falls after both fall."""
    net = PetriNet("c_element")
    net.add_transition({"x0"}, f"{x}+", {"x1"})
    net.add_transition({"y0"}, f"{y}+", {"y1"})
    net.add_transition({"x1", "y1"}, f"{c}+", {"x2", "y2"})
    net.add_transition({"x2"}, f"{x}-", {"x3"})
    net.add_transition({"y2"}, f"{y}-", {"y3"})
    net.add_transition({"x3", "y3"}, f"{c}-", {"x0", "y0"})
    net.set_initial(Marking({"x0": 1, "y0": 1}))
    return Stg(net, inputs={x, y}, outputs={c})


def toggle_element(inp: str = "t", out0: str = "q0", out1: str = "q1") -> Stg:
    """A toggle: input events alternate between the two outputs."""
    net = PetriNet("toggle")
    net.add_transition({"g0"}, f"{inp}~", {"g1"})
    net.add_transition({"g1"}, f"{out0}~", {"g2"})
    net.add_transition({"g2"}, f"{inp}~", {"g3"})
    net.add_transition({"g3"}, f"{out1}~", {"g0"})
    net.set_initial(Marking({"g0": 1}))
    return Stg(net, inputs={inp}, outputs={out0, out1})


def mutex_arbiter() -> Stg:
    """A two-user mutual-exclusion arbiter — a *general* Petri net.

    The shared ``mutex`` place makes the grant transitions compete for
    one token while each also needs its private request: the conflicts
    are neither free-choice nor asymmetric.  This net is the paper's
    argument (Section 5.1) for defining the algebra on general nets.
    """
    net = PetriNet("arbiter")
    net.add_transition({"idle1"}, "r1+", {"req1"})
    net.add_transition({"idle2"}, "r2+", {"req2"})
    net.add_transition({"req1", "mutex"}, "g1+", {"crit1"})
    net.add_transition({"req2", "mutex"}, "g2+", {"crit2"})
    net.add_transition({"crit1"}, "r1-", {"rel1"})
    net.add_transition({"crit2"}, "r2-", {"rel2"})
    net.add_transition({"rel1"}, "g1-", {"idle1", "mutex"})
    net.add_transition({"rel2"}, "g2-", {"idle2", "mutex"})
    net.set_initial(Marking({"idle1": 1, "idle2": 1, "mutex": 1}))
    return Stg(net, inputs={"r1", "r2"}, outputs={"g1", "g2"})


def merge_element(in0: str = "m0", in1: str = "m1", out: str = "z") -> Stg:
    """A 2-phase merge: an event on either input produces an output
    event.  The inputs must alternate with outputs (one at a time)."""
    net = PetriNet("merge")
    net.add_transition({"w"}, f"{in0}~", {"fire"})
    net.add_transition({"w"}, f"{in1}~", {"fire"})
    net.add_transition({"fire"}, f"{out}~", {"w"})
    net.set_initial(Marking({"w": 1}))
    return Stg(net, inputs={in0, in1}, outputs={out})


def call_element(
    req0: str = "r0",
    req1: str = "r1",
    sub_req: str = "sr",
    sub_ack: str = "sa",
    ack0: str = "a0",
    ack1: str = "a1",
) -> Stg:
    """A 2-phase call element: two clients share one subroutine.

    A request on either client port forwards to the subroutine; its
    acknowledge is routed back to whichever client called — the element
    must remember the caller (the classic 'call' control module).
    """
    net = PetriNet("call")
    net.add_transition({"idle"}, f"{req0}~", {"busy0"})
    net.add_transition({"idle"}, f"{req1}~", {"busy1"})
    net.add_transition({"busy0"}, f"{sub_req}~", {"wait0"})
    net.add_transition({"busy1"}, f"{sub_req}~", {"wait1"})
    net.add_transition({"wait0"}, f"{sub_ack}~", {"done0"})
    net.add_transition({"wait1"}, f"{sub_ack}~", {"done1"})
    net.add_transition({"done0"}, f"{ack0}~", {"idle"})
    net.add_transition({"done1"}, f"{ack1}~", {"idle"})
    net.set_initial(Marking({"idle": 1}))
    return Stg(
        net,
        inputs={req0, req1, sub_ack},
        outputs={sub_req, ack0, ack1},
    )


def decision_wait(
    row: str = "dr", col: str = "dc", out: str = "dw"
) -> Stg:
    """A 1x1 decision-wait: fires the output only after *both* the row
    and the column input have arrived (2-phase join)."""
    net = PetriNet("decision_wait")
    net.add_transition({"wr"}, f"{row}~", {"gr"})
    net.add_transition({"wc"}, f"{col}~", {"gc"})
    net.add_transition({"gr", "gc"}, f"{out}~", {"wr", "wc"})
    net.set_initial(Marking({"wr": 1, "wc": 1}))
    return Stg(net, inputs={row, col}, outputs={out})


def vme_bus_controller() -> Stg:
    """The VME bus controller (read cycle) — the canonical CSC example.

    Inputs ``dsr`` (data send request) and ``ldtack`` (local device
    acknowledge); outputs ``lds`` (local device select), ``d`` (data
    latch) and ``dtack``.  After ``d-`` the bus-side release
    (``dtack-``) and the device-side release (``lds- ; ldtack-``) run
    concurrently; the next ``lds+`` must wait for ``ldtack-``.  The STG
    is consistent and persistent but has one CSC conflict, classically
    resolved by a single internal state signal
    (:func:`repro.stg.csc_resolution.resolve_csc`).
    """
    net = PetriNet("vme_read")
    net.add_transition({"p0"}, "dsr+", {"p1"})
    net.add_transition({"p1", "ready"}, "lds+", {"p2"})
    net.add_transition({"p2"}, "ldtack+", {"p3"})
    net.add_transition({"p3"}, "d+", {"p4"})
    net.add_transition({"p4"}, "dtack+", {"p5"})
    net.add_transition({"p5"}, "dsr-", {"p6"})
    net.add_transition({"p6"}, "d-", {"p7", "p8"})
    net.add_transition({"p7"}, "dtack-", {"p0"})
    net.add_transition({"p8"}, "lds-", {"p9"})
    net.add_transition({"p9"}, "ldtack-", {"ready"})
    net.set_initial(Marking({"p0": 1, "ready": 1}))
    return Stg(net, inputs={"dsr", "ldtack"}, outputs={"lds", "d", "dtack"})


def pipeline(stages: int) -> list[Stg]:
    """A chain of 2-phase buffer stages, ready for n-ary composition."""
    modules = []
    for index in range(stages):
        modules.append(
            two_phase_buffer_stage(
                left_req=f"d{index}",
                left_ack=f"k{index}",
                right_req=f"d{index + 1}",
                right_ack=f"k{index + 1}",
                name=f"stage{index}",
            )
        )
    return modules
