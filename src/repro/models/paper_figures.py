"""The example nets of the paper's Figures 1-3, built programmatically.

These small nets illustrate the algebra operators; the case-study nets
of Figures 4-9 live in :mod:`repro.models.protocol_translator`.
"""

from __future__ import annotations

from repro.petri.marking import Marking
from repro.petri.net import PetriNet

#: The label of the hidden transition in the Figure 3 nets.
FIG3_HIDDEN_LABEL = "u"


def fig1_left() -> PetriNet:
    """A cyclic process ``(a.b)*`` whose initial place lies on a loop.

    Figure 1's point: in ``fig1_left() + fig1_right()`` a loop iteration
    must *not* allow crossing into the other branch, which naive
    initial-place merging would permit; root unwinding prevents it.
    """
    net = PetriNet("loop_ab")
    net.add_transition({"s0"}, "a", {"s1"})
    net.add_transition({"s1"}, "b", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return net


def fig1_right() -> PetriNet:
    """The second operand of the Figure 1 choice: ``(c.d)*``."""
    net = PetriNet("loop_cd")
    net.add_transition({"r0"}, "c", {"r1"})
    net.add_transition({"r1"}, "d", {"r0"})
    net.set_initial(Marking({"r0": 1}))
    return net


def fig1_naive_choice() -> PetriNet:
    """The *incorrect* choice construction Figure 1 warns about.

    The initial places of both loops are merged into one shared place,
    so after one iteration of ``a.b`` the token returns to the shared
    place and the ``c`` branch becomes enabled again — the trace
    ``a.b.c`` appears although it is in neither ``L(N1)`` nor ``L(N2)``.
    """
    net = PetriNet("naive_choice")
    net.add_transition({"m"}, "a", {"s1"})
    net.add_transition({"s1"}, "b", {"m"})
    net.add_transition({"m"}, "c", {"r1"})
    net.add_transition({"r1"}, "d", {"m"})
    net.set_initial(Marking({"m": 1}))
    return net


def fig2_left() -> PetriNet:
    """``((a+b).c)*`` — the left operand of Figure 2's composition."""
    net = PetriNet("ab_then_c")
    net.add_transition({"s0"}, "a", {"s1"})
    net.add_transition({"s0"}, "b", {"s1"})
    net.add_transition({"s1"}, "c", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return net


def fig2_right() -> PetriNet:
    """``(a.d.a.e)*`` — the right operand of Figure 2's composition."""
    net = PetriNet("adae")
    net.add_transition({"r0"}, "a", {"r1"})
    net.add_transition({"r1"}, "d", {"r2"})
    net.add_transition({"r2"}, "a", {"r3"})
    net.add_transition({"r3"}, "e", {"r0"})
    net.set_initial(Marking({"r0": 1}))
    return net


def fig3_general() -> PetriNet:
    """A general net exercising every role around a hidden transition.

    The hidden transition ``u`` has preset ``{p1, p2}`` and postset
    ``{q1, q2}``.  Around it (mirroring the roles discussed for
    Figure 3):

    * ``a``/``b`` produce into ``p1``/``p2`` (predecessors),
    * ``c``/``d`` consume ``p1``/``p2`` (conflicts with ``u``),
    * ``e``/``f`` produce into ``q1``/``q2`` (other producers of the
      postset),
    * ``g``/``h`` consume ``q1``/``q2`` individually and ``i`` consumes
      both (successors, which hiding must keep *and* duplicate),
    * ``j`` consumes ``q1`` together with an unrelated place.

    The net is bounded (one-shot sources), so languages are comparable
    exactly.
    """
    net = PetriNet("fig3_general")
    net.add_transition({"ra"}, "a", {"p1"})
    net.add_transition({"rb"}, "b", {"p2"})
    net.add_transition({"p1"}, "c", {"rc"})
    net.add_transition({"p2"}, "d", {"rd"})
    net.add_transition({"re"}, "e", {"q1"})
    net.add_transition({"rf"}, "f", {"q2"})
    net.add_transition({"p1", "p2"}, FIG3_HIDDEN_LABEL, {"q1", "q2"})
    net.add_transition({"q1"}, "g", {"rg"})
    net.add_transition({"q2"}, "h", {"rh"})
    net.add_transition({"q1", "q2"}, "i", {"ri"})
    net.add_transition({"q1", "rj"}, "j", {"rk"})
    net.set_initial(Marking({"ra": 1, "rb": 1, "re": 1, "rf": 1, "rj": 1}))
    return net


def fig3_marked_graph() -> PetriNet:
    """Figure 3(c)'s setting: the hidden transition inside a live-safe
    strongly connected marked graph (no conflicts, no extra producers).

    ``u`` again has preset ``{p1, p2}`` and postset ``{q1, q2}``; the
    surrounding cycle makes every place 1-bounded and every transition
    live, so the simplified contraction of Section 4.4 applies.
    """
    net = PetriNet("fig3_marked_graph")
    net.add_transition({"s1"}, "b", {"p1"})
    net.add_transition({"s2"}, "c", {"p2"})
    net.add_transition({"p1", "p2"}, FIG3_HIDDEN_LABEL, {"q1", "q2"})
    net.add_transition({"q1"}, "g", {"s1"})
    net.add_transition({"q2"}, "i", {"s2"})
    net.set_initial(Marking({"s1": 1, "s2": 1}))
    return net


def fig3_simple_chain() -> PetriNet:
    """The Section 4.4 fast-path case: one conflict-free input place and
    one output place — hiding collapses the two places."""
    net = PetriNet("fig3_chain")
    net.add_transition({"s0"}, "a", {"p"})
    net.add_transition({"p"}, FIG3_HIDDEN_LABEL, {"q"})
    net.add_transition({"q"}, "b", {"s0"})
    net.set_initial(Marking({"s0": 1}))
    return net
