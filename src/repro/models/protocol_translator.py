"""The Section 6 case study: an I2C-like protocol translation design.

The design (Figure 4) has three blocks:

* the **sender** converts transition-signaled commands (*rec*, *reset*,
  *send0*, *send1*, each a toggle on its own wire) into a 4-phase
  protocol on the command wires ``a0/a1/b0/b1`` acknowledged by ``n``
  (Table 1a, Figure 5);
* the **protocol translator** (Figure 7) acknowledges sender commands
  and forwards them as 4-phase commands on ``p0/p1/q0/q1`` acknowledged
  by ``r``; a *rec* command makes it sample the ``DATA``/``STROBE``
  lines once they stabilize and forward a command chosen by their
  levels;
* the **receiver** (Figure 6) converts the 4-phase commands back into
  toggle outputs *start*, *mute*, *zero*, *one* (Table 1b).

Modeling notes (the receptiveness discipline of Section 5.3):

* a module's choice between incoming commands is resolved by *which
  wires rise* (one watch place per wire group), never by an internal
  epsilon choice made before the wires arrive;
* the translator keeps its wire-watch places marked while it forwards a
  command; only the acknowledge ``n+`` is gated by a forwarding mutex.
  Thus a new sender command may *arrive* (wires rise) while the
  previous one is still being forwarded — the sender is only stalled at
  the acknowledge, and every output of every block finds its consumer
  ready: the composition is receptive.

Figure 8's **inconsistent sender** raises and lowers its command wires
without waiting for the ``n`` acknowledge — the receptiveness check of
Section 5.3 must flag it.  Figure 9 restricts the sender to *reset*,
*send0* and *send1*; projecting the composition back onto the
translator / receiver alphabets yields the **simplified** blocks.
"""

from __future__ import annotations

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.guards import lit
from repro.stg.signals import fall, rise, stable, toggle, unstable
from repro.stg.stg import Stg

#: Table 1(a): sender command -> raised wire pair.
SENDER_COMMANDS: dict[str, tuple[str, str]] = {
    "rec": ("a0", "b0"),
    "reset": ("a0", "b1"),
    "send0": ("a1", "b0"),
    "send1": ("a1", "b1"),
}

#: Table 1(b): raised wire pair -> receiver command.
RECEIVER_COMMANDS: dict[str, tuple[str, str]] = {
    "start": ("p0", "q0"),
    "mute": ("p0", "q1"),
    "zero": ("p1", "q0"),
    "one": ("p1", "q1"),
}

#: Which receiver command the translator forwards for each sender
#: command (Figure 7): reset -> start, send0 -> zero, send1 -> one.
FORWARDING: dict[str, str] = {
    "reset": "start",
    "send0": "zero",
    "send1": "one",
}

#: The data-dependent command sent after *rec*, keyed by the stabilized
#: (STROBE, DATA) levels (Figure 7's guarded choice).
REC_DISPATCH: dict[tuple[int, int], str] = {
    (0, 0): "start",
    (0, 1): "mute",
    (1, 0): "zero",
    (1, 1): "one",
}

SENDER_WIRES = ("a0", "a1", "b0", "b1")
RECEIVER_WIRES = ("p0", "p1", "q0", "q1")
COMMAND_INPUTS = tuple(SENDER_COMMANDS)
RECEIVER_OUTPUTS = tuple(RECEIVER_COMMANDS)


def _sender_command_cycle(
    net: PetriNet, idle: str, command: str, wires: tuple[str, str], wait_ack: bool
) -> None:
    """One Figure 5(b/c) command cycle: toggle in, 4-phase out.

    With ``wait_ack=False`` this builds the Figure 8 inconsistent
    variant: the wires fall without waiting for ``n+`` (and ``n`` is
    never read at all).
    """
    w1, w2 = wires
    c = command
    net.add_transition({idle}, toggle(c), {f"{c}_f1", f"{c}_f2"})
    net.add_transition({f"{c}_f1"}, rise(w1), {f"{c}_g1"})
    net.add_transition({f"{c}_f2"}, rise(w2), {f"{c}_g2"})
    if wait_ack:
        net.add_transition({f"{c}_g1", f"{c}_g2"}, rise("n"), {f"{c}_h1", f"{c}_h2"})
        net.add_transition({f"{c}_h1"}, fall(w1), {f"{c}_k1"})
        net.add_transition({f"{c}_h2"}, fall(w2), {f"{c}_k2"})
        net.add_transition({f"{c}_k1", f"{c}_k2"}, fall("n"), {idle})
    else:
        net.add_transition({f"{c}_g1"}, fall(w1), {f"{c}_k1"})
        net.add_transition({f"{c}_g2"}, fall(w2), {f"{c}_k2"})
        net.add_transition({f"{c}_k1", f"{c}_k2"}, "eps", {idle})


def sender(commands: tuple[str, ...] = COMMAND_INPUTS) -> Stg:
    """The Figure 5 sender (or the Figure 9(a) restricted sender when
    ``commands`` excludes ``rec``).

    Inputs: the command toggles and the acknowledge ``n``.
    Outputs: the 4-phase command wires ``a0/a1/b0/b1``.
    """
    full = set(commands) == set(COMMAND_INPUTS)
    net = PetriNet("sender" if full else "sender_restricted")
    net.add_place("idle", tokens=1)
    for command in commands:
        _sender_command_cycle(
            net, "idle", command, SENDER_COMMANDS[command], wait_ack=True
        )
    used_wires = {w for c in commands for w in SENDER_COMMANDS[c]}
    return Stg(
        net,
        inputs=set(commands) | {"n"},
        outputs=used_wires,
    )


def restricted_sender() -> Stg:
    """The Figure 9(a) sender: *rec* is never issued."""
    return sender(commands=("reset", "send0", "send1"))


def inconsistent_sender() -> Stg:
    """The Figure 8 sender: command wires rise *and fall* without
    waiting for the translator's ``n`` acknowledge — it does not
    implement the 4-phase protocol and composition with the translator
    must fail the receptiveness check."""
    net = PetriNet("sender_inconsistent")
    net.add_place("idle", tokens=1)
    for command in COMMAND_INPUTS:
        _sender_command_cycle(
            net, "idle", command, SENDER_COMMANDS[command], wait_ack=False
        )
    return Stg(
        net,
        inputs=set(COMMAND_INPUTS),
        outputs=set(SENDER_WIRES),
    )


def receiver(commands: tuple[str, ...] = RECEIVER_OUTPUTS) -> Stg:
    """The Figure 6 receiver (or a hand-restricted variant).

    Inputs: the 4-phase command wires ``p0/p1/q0/q1``.
    Outputs: the acknowledge ``r`` and the toggles *start/mute/zero/one*.

    Structure: two watch places (one for the ``p`` wire pair, one for
    ``q``); whichever wire of each pair rises resolves the command; the
    matching join emits the toggle, acknowledges with ``r+``, waits for
    the wires to fall and closes the handshake with ``r-``, re-marking
    the watch places.
    """
    full = set(commands) == set(RECEIVER_OUTPUTS)
    net = PetriNet("receiver" if full else "receiver_restricted")
    used_wires = sorted({w for c in commands for w in RECEIVER_COMMANDS[c]})
    for wire in used_wires:
        group = "wp" if wire in ("p0", "p1") else "wq"
        net.add_transition({group}, rise(wire), {f"up_{wire}"})
    net.set_initial(Marking({"wp": 1, "wq": 1}))
    for command in commands:
        w1, w2 = RECEIVER_COMMANDS[command]
        c = command
        net.add_transition({f"up_{w1}", f"up_{w2}"}, toggle(c), {f"{c}_t"})
        net.add_transition({f"{c}_t"}, rise("r"), {f"{c}_h1", f"{c}_h2"})
        net.add_transition({f"{c}_h1"}, fall(w1), {f"{c}_k1"})
        net.add_transition({f"{c}_h2"}, fall(w2), {f"{c}_k2"})
        net.add_transition({f"{c}_k1", f"{c}_k2"}, fall("r"), {"wp", "wq"})
    return Stg(
        net,
        inputs=set(used_wires),
        outputs=set(commands) | {"r"},
    )


def _translator_send(
    net: PetriNet, start_places: set[str], command: str, done: str, tag: str
) -> None:
    """Translator's 4-phase send of ``command`` to the receiver: raise
    the wire pair, wait for ``r+``, lower, wait for ``r-``."""
    w1, w2 = RECEIVER_COMMANDS[command]
    prefix = f"tx_{tag}"
    net.add_transition(start_places, "eps", {f"{prefix}_f1", f"{prefix}_f2"})
    net.add_transition({f"{prefix}_f1"}, rise(w1), {f"{prefix}_g1"})
    net.add_transition({f"{prefix}_f2"}, rise(w2), {f"{prefix}_g2"})
    net.add_transition(
        {f"{prefix}_g1", f"{prefix}_g2"}, rise("r"), {f"{prefix}_h1", f"{prefix}_h2"}
    )
    net.add_transition({f"{prefix}_h1"}, fall(w1), {f"{prefix}_k1"})
    net.add_transition({f"{prefix}_h2"}, fall(w2), {f"{prefix}_k2"})
    net.add_transition({f"{prefix}_k1", f"{prefix}_k2"}, fall("r"), {done})


def translator() -> Stg:
    """The Figure 7 protocol translator.

    Behaviour: send an initial *start* command; then repeatedly accept
    one sender command (4-phase on ``a0/a1/b0/b1``, acknowledged with
    ``n``); *reset*/*send0*/*send1* are forwarded as *start*/*zero*/*one*;
    *rec* samples the ``DATA``/``STROBE`` lines after they stabilize and
    forwards the command selected by their levels (guards), after which
    the lines may become unstable again.

    The wire-watch places ``wa``/``wb`` are re-marked at ``n-`` so the
    next command's wires can rise while the current one is still being
    forwarded; ``n+`` is gated by the forwarding mutex ``fwd_free``.
    """
    net = PetriNet("translator")
    stg = Stg(
        net,
        inputs=set(SENDER_WIRES) | {"r", "DATA", "STROBE"},
        outputs=set(RECEIVER_WIRES) | {"n"},
        initial_values={"DATA": None, "STROBE": None},
    )
    # Boot: the initial start command; completing it releases fwd_free.
    net.add_place("boot", tokens=1)
    _translator_send(net, {"boot"}, "start", "fwd_free", "boot")

    # Sender-side front end: one watch place per wire group.
    for wire in SENDER_WIRES:
        group = "wa" if wire in ("a0", "a1") else "wb"
        net.add_transition({group}, rise(wire), {f"up_{wire}"})
    counts = dict(net.initial)
    counts.update({"wa": 1, "wb": 1})
    net.set_initial(Marking(counts))

    # Acknowledge + release per command combination; the n- re-marks the
    # watch places and hands the command to the dispatcher.
    for command, (w1, w2) in SENDER_COMMANDS.items():
        c = command
        net.add_transition(
            {f"up_{w1}", f"up_{w2}", "fwd_free"},
            rise("n"),
            {f"rx_{c}_h1", f"rx_{c}_h2"},
        )
        net.add_transition({f"rx_{c}_h1"}, fall(w1), {f"rx_{c}_k1"})
        net.add_transition({f"rx_{c}_h2"}, fall(w2), {f"rx_{c}_k2"})
        net.add_transition(
            {f"rx_{c}_k1", f"rx_{c}_k2"},
            fall("n"),
            {"wa", "wb", f"dispatch_{c}"},
        )

    # Straightforward forwarding for reset/send0/send1 (Figure 7).
    for command, forwarded in FORWARDING.items():
        _translator_send(
            net, {f"dispatch_{command}"}, forwarded, "fwd_free", command
        )

    # rec: wait for DATA and STROBE to stabilize, dispatch on their
    # levels via guards, then release the lines (unstable again).
    net.add_transition({"dispatch_rec"}, stable("STROBE"), {"rec_s"})
    net.add_transition({"rec_s"}, stable("DATA"), {"rec_sd"})
    for (strobe_level, data_level), forwarded in REC_DISPATCH.items():
        strobe_guard = lit("STROBE") if strobe_level else ~lit("STROBE")
        data_guard = lit("DATA") if data_level else ~lit("DATA")
        tag = f"rec{strobe_level}{data_level}"
        choice_t = net.add_transition({"rec_sd"}, "eps", {f"{tag}_go"})
        net.set_guard("rec_sd", choice_t.tid, strobe_guard & data_guard)
        _translator_send(net, {f"{tag}_go"}, forwarded, f"{tag}_done", tag)
        net.add_transition({f"{tag}_done"}, unstable("STROBE"), {f"{tag}_u"})
        net.add_transition({f"{tag}_u"}, unstable("DATA"), {"fwd_free"})
    return stg


def simplified_translator() -> Stg:
    """The Figure 9(b) simplified translator, *derived by the algebra*:
    ``project(N_send || N_tr, A_tr)`` for the restricted sender."""
    from repro.core.synthesis import simplify_against_environment

    return simplify_against_environment(translator(), restricted_sender())


def simplified_receiver() -> Stg:
    """The Figure 9(c) simplified receiver, derived by projecting the
    full restricted composition back onto the receiver's alphabet.

    The environment of the receiver is the translator driven by the
    restricted sender; using the *original* (uncontracted) modules as
    the environment keeps the intermediate nets small."""
    from repro.core.synthesis import simplify_against_environment
    from repro.stg.stg import compose

    environment = compose(restricted_sender(), translator())
    return simplify_against_environment(receiver(), environment)


def build_cip():
    """The Figure 4 block diagram as a CIP: three modules, wired."""
    from repro.core.cip import Cip

    cip = Cip("protocol_translator")
    cip.add_module("sender", sender())
    cip.add_module("translator", translator())
    cip.add_module("receiver", receiver())
    for wire in SENDER_WIRES:
        cip.add_wire(wire, "sender", "translator")
    cip.add_wire("n", "translator", "sender")
    for wire in RECEIVER_WIRES:
        cip.add_wire(wire, "translator", "receiver")
    cip.add_wire("r", "receiver", "translator")
    return cip
