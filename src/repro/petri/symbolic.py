"""State-equation symbolic engine: semi-decision without enumeration.

Every other engine in this project (eager, onthefly, por, parallel)
enumerates markings, so the whole verification stack is bounded by what
fits in an explorer.  This module answers the same questions by linear
algebra over the incidence matrix instead:

    M  =  M0 + C·x,   x >= 0                       (the state equation)

Every reachable marking satisfies the state equation, so *infeasibility*
of a constraint system built on it is a proof of unreachability — with
no state ever constructed.  Feasibility proves nothing in general (the
equation ignores ordering), which makes this a *semi-decision*
procedure: verdicts are either CONCLUSIVE (and then sound) or
INCONCLUSIVE (and then the caller falls back to an explicit engine).

Three refinements sharpen the over-approximation:

* **Connected-component restriction** — a system constraining places
  ``S`` only needs the components of the place/transition graph that
  contain ``S``; every other component is satisfied by ``x = 0``.  This
  keeps obligation systems O(channel)-sized on banks of independent
  channels, regardless of how many channels the composite has.
* **Trap refinement** (Esparza's classical strengthening) — if the
  current rational solution empties an initially-marked trap, the trap
  constraint ``sum(M(Q)) >= 1`` is sound for every reachable marking
  and cuts the solution off; re-solve, up to a bounded number of
  rounds.
* **Marked-graph exactness** (Theorem 5.7) — for live marked graphs the
  state equation characterises reachability exactly, so a feasible
  (integral) solution is a CONCLUSIVE witness, not merely inconclusive.

Every CONCLUSIVE verdict rests on exact arithmetic
(:class:`fractions.Fraction`; a dependency-free phase-1 simplex using
Dantzig's rule with a Bland fallback for anti-cycling) — no float drift
can flip a verdict.  A floating-point *screen* runs first: a
float-feasible system is reported feasible directly (feasible only ever
means INCONCLUSIVE, so floats are sound there), while float
infeasibility is always re-proven exactly before anything is concluded.

An optional SMT-LIB backend (:func:`smt_unreachable`) strengthens the
state equation to *integers* and adds BMC + k-induction, shelling out
to an external solver (z3/cvc5/cvc4/yices) when one is on ``PATH`` and
skipping cleanly otherwise.  Nothing in the pure-Python path depends on
it.

Constraint derivation and conclusiveness semantics are documented in
``docs/SYMBOLIC.md``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from fractions import Fraction
from itertools import product as _product

from repro.obs import metrics as obs
from repro.petri.marking import Marking
from repro.petri.net import EPSILON, PetriNet
from repro.petri.structural import incidence_matrix, p_invariants_partial

#: Trap-constraint refinement rounds per system before giving up.
DEFAULT_TRAP_ROUNDS = 8

#: Systems whose restricted component exceeds these sizes are not solved
#: (exact simplex over Fractions is polynomial but not cheap); the query
#: reports INCONCLUSIVE with the size in its reason instead of hanging.
MAX_SYSTEM_VARIABLES = 400
MAX_SYSTEM_PLACES = 600

#: ``dead_actions`` solves one system per transition; past this many
#: transitions it declines (INCONCLUSIVE everywhere) rather than stall.
DEAD_ACTION_TRANSITION_BUDGET = 128

#: Exact pivots per solve before a query is reported undecided.  Exact
#: infeasibility proofs on well-conditioned systems finish in a handful
#: of pivots; runaway pivot chains (where Fraction coefficients grow
#: without bound) are cut here and fall back to the explicit engines.
DEFAULT_PIVOT_BUDGET = 64

#: Bit-length bound on any single tableau entry (numerator plus
#: denominator) under a budgeted solve.  Pivot *cost*, not count, is
#: what stalls the exact solver — entries past this size make every
#: further pivot slower, so the solve is abandoned as undecided.
PIVOT_ENTRY_BITS = 256


# -- exact linear feasibility ------------------------------------------------


class PivotBudgetExceeded(Exception):
    """The exact simplex hit its pivot budget before reaching a verdict.

    Raised only when :meth:`LinearSystem.solve` is given an explicit
    ``pivot_budget``; callers translate it into an INCONCLUSIVE
    verdict, which is always sound for a semi-decision procedure."""


@dataclass(frozen=True)
class Constraint:
    """One row ``coeffs . x  <rel>  rhs`` over non-negative variables.

    ``relation`` is ``"<="`` or ``"=="``; ``tag`` names the row for
    diagnostics and for the hand-computed encoding tests."""

    coeffs: tuple[Fraction, ...]
    relation: str
    rhs: Fraction
    tag: str = ""

    def __str__(self) -> str:
        terms = " + ".join(
            f"{c}*x[{i}]" for i, c in enumerate(self.coeffs) if c
        )
        return f"{self.tag or 'row'}: {terms or '0'} {self.relation} {self.rhs}"


@dataclass
class LinearSystem:
    """A feasibility problem ``{x >= 0, constraints}`` over named
    variables, solved exactly.

    The solver is a phase-1 simplex over :class:`fractions.Fraction`
    (Dantzig entering rule, Bland fallback past an iteration budget for
    anti-cycling): inequalities get slack variables,
    rows are normalised to non-negative right-hand sides, artificial
    variables form the starting basis, and their sum is minimised.  The
    system is feasible iff that minimum is zero; the final basis then
    yields an exact rational solution."""

    variables: tuple[str, ...]
    constraints: list[Constraint] = field(default_factory=list)

    def _add(self, coeffs, relation: str, rhs, tag: str) -> Constraint:
        row = tuple(Fraction(c) for c in coeffs)
        if len(row) != len(self.variables):
            raise ValueError(
                f"constraint {tag!r} has {len(row)} coefficients for"
                f" {len(self.variables)} variables"
            )
        constraint = Constraint(row, relation, Fraction(rhs), tag)
        self.constraints.append(constraint)
        return constraint

    def inequality(self, coeffs, rhs, tag: str = "") -> Constraint:
        """Add ``coeffs . x <= rhs``."""
        return self._add(coeffs, "<=", rhs, tag)

    def equality(self, coeffs, rhs, tag: str = "") -> Constraint:
        """Add ``coeffs . x == rhs``."""
        return self._add(coeffs, "==", rhs, tag)

    def num_constraints(self) -> int:
        return len(self.constraints)

    def solve(
        self, pivot_budget: int | None = None
    ) -> dict[str, Fraction] | None:
        """An exact feasible point, or ``None`` when infeasible.

        Only rows that cannot start from their own slack — equalities,
        and inequalities whose right-hand side is negative — receive an
        artificial variable; on state-equation systems that is a
        handful of obligation rows against hundreds of non-negativity
        rows, so phase 1 starts almost feasible.

        ``pivot_budget`` bounds the number of pivots; exceeding it
        raises :class:`PivotBudgetExceeded` (exact rational pivot cost
        grows with coefficient size, so a budget keeps worst-case
        systems from stalling the engine — the caller reports the
        query undecided, which is always sound)."""
        n = len(self.variables)
        slacks = sum(1 for c in self.constraints if c.relation == "<=")
        total = n + slacks
        rows: list[list[Fraction]] = []
        rhs: list[Fraction] = []
        basis_hint: list[int | None] = []
        slack_column = n
        for constraint in self.constraints:
            row = list(constraint.coeffs) + [Fraction(0)] * slacks
            hint: int | None = None
            if constraint.relation == "<=":
                row[slack_column] = Fraction(1)
                if constraint.rhs >= 0:
                    hint = slack_column
                slack_column += 1
            elif constraint.relation != "==":
                raise ValueError(
                    f"unknown relation {constraint.relation!r}"
                )
            b = constraint.rhs
            if b < 0:
                row = [-v for v in row]
                b = -b
            rows.append(row)
            rhs.append(b)
            basis_hint.append(hint)
        if total == 0:
            # No variables at all: only 0 == rhs rows can remain.
            return {} if all(b == 0 for b in rhs) else None
        m = len(rows)
        artificial_rows = [
            i for i, hint in enumerate(basis_hint) if hint is None
        ]
        num_artificial = len(artificial_rows)
        width = total + num_artificial + 1
        artificial_of = {
            i: total + k for k, i in enumerate(artificial_rows)
        }
        tableau: list[list[Fraction]] = []
        basis: list[int] = []
        for i in range(m):
            artificial = [Fraction(0)] * num_artificial
            hint = basis_hint[i]
            if hint is None:
                artificial[artificial_of[i] - total] = Fraction(1)
                basis.append(artificial_of[i])
            else:
                basis.append(hint)
            tableau.append(rows[i] + artificial + [rhs[i]])
        cost = [Fraction(0)] * width
        for i in artificial_rows:
            row = tableau[i]
            for j in range(width):
                cost[j] += row[j]
        iterations = 0
        bland_after = 4 * (m + total) + 64
        while True:
            # Dantzig's rule (steepest cost) is fast in practice but can
            # cycle on degenerate systems; after a generous iteration
            # budget, fall back to Bland's rule, which terminates.
            iterations += 1
            if pivot_budget is not None and iterations > pivot_budget:
                raise PivotBudgetExceeded(
                    f"no verdict after {pivot_budget} pivots"
                    f" ({m} rows, {total} columns)"
                )
            entering = None
            if iterations <= bland_after:
                best_cost = Fraction(0)
                for j in range(total):
                    if cost[j] > best_cost:
                        best_cost = cost[j]
                        entering = j
            else:
                entering = next(
                    (j for j in range(total) if cost[j] > 0), None
                )
            if entering is None:
                break
            leaving = None
            best: Fraction | None = None
            for i in range(m):
                coefficient = tableau[i][entering]
                if coefficient > 0:
                    ratio = tableau[i][-1] / coefficient
                    if (
                        best is None
                        or ratio < best
                        or (ratio == best and basis[i] < basis[leaving])
                    ):
                        best = ratio
                        leaving = i
            if leaving is None:  # pragma: no cover - phase 1 is bounded
                raise RuntimeError("phase-1 simplex objective unbounded")
            # Sparse pivot: state-equation rows carry a handful of
            # nonzeros, so touching only the pivot row's nonzero
            # columns is the difference between O(nnz) and O(width)
            # per row update.
            pivot_row = tableau[leaving]
            pivot = pivot_row[entering]
            nonzero = [j for j, v in enumerate(pivot_row) if v]
            if pivot != 1:
                for j in nonzero:
                    pivot_row[j] /= pivot
            if pivot_budget is not None and any(
                pivot_row[j].numerator.bit_length()
                + pivot_row[j].denominator.bit_length()
                > PIVOT_ENTRY_BITS
                for j in nonzero
            ):
                raise PivotBudgetExceeded(
                    f"tableau entries past {PIVOT_ENTRY_BITS} bits"
                    f" after {iterations} pivots"
                )
            for i in range(m):
                if i == leaving:
                    continue
                row = tableau[i]
                factor = row[entering]
                if factor:
                    for j in nonzero:
                        row[j] -= factor * pivot_row[j]
            factor = cost[entering]
            if factor:
                for j in nonzero:
                    cost[j] -= factor * pivot_row[j]
            basis[leaving] = entering
        if cost[-1] != 0:
            return None
        values = {name: Fraction(0) for name in self.variables}
        for i, column in enumerate(basis):
            if column < n:
                values[self.variables[column]] = tableau[i][-1]
        return values

    def _solve_float(
        self,
    ) -> tuple[str, dict[str, float] | None]:
        """A floating-point run of the same phase-1 simplex.

        Returns ``("feasible", values)`` with approximate values,
        ``("infeasible", None)``, or ``("unknown", None)`` when the
        iteration budget runs out.  This is only a *screen*: float
        feasibility may be trusted solely on paths where feasible
        means inconclusive, and float infeasibility must be re-proven
        by :meth:`solve` before concluding anything.  Exact rational
        pivoting dominates the solver's cost on feasible systems, so
        screening them out here is the difference between milliseconds
        and seconds per obligation on composite nets."""
        n = len(self.variables)
        slacks = sum(1 for c in self.constraints if c.relation == "<=")
        total = n + slacks
        if total == 0:
            return "unknown", None
        rows: list[list[float]] = []
        rhs: list[float] = []
        basis_hint: list[int | None] = []
        slack_column = n
        scale = 1.0
        for constraint in self.constraints:
            row = [float(c) for c in constraint.coeffs] + [0.0] * slacks
            hint: int | None = None
            if constraint.relation == "<=":
                row[slack_column] = 1.0
                if constraint.rhs >= 0:
                    hint = slack_column
                slack_column += 1
            b = float(constraint.rhs)
            if b < 0:
                row = [-v for v in row]
                b = -b
            scale = max(scale, b)
            rows.append(row)
            rhs.append(b)
            basis_hint.append(hint)
        m = len(rows)
        artificial_rows = [
            i for i, hint in enumerate(basis_hint) if hint is None
        ]
        num_artificial = len(artificial_rows)
        width = total + num_artificial + 1
        artificial_of = {
            i: total + k for k, i in enumerate(artificial_rows)
        }
        tableau: list[list[float]] = []
        basis: list[int] = []
        for i in range(m):
            artificial = [0.0] * num_artificial
            hint = basis_hint[i]
            if hint is None:
                artificial[artificial_of[i] - total] = 1.0
                basis.append(artificial_of[i])
            else:
                basis.append(hint)
            tableau.append(rows[i] + artificial + [rhs[i]])
        cost = [0.0] * width
        for i in artificial_rows:
            row = tableau[i]
            for j in range(width):
                cost[j] += row[j]
        eps = 1e-9 * scale
        budget = 8 * (m + total) + 256
        for _ in range(budget):
            entering = None
            best_cost = eps
            for j in range(total):
                if cost[j] > best_cost:
                    best_cost = cost[j]
                    entering = j
            if entering is None:
                break
            leaving = None
            best: float | None = None
            for i in range(m):
                coefficient = tableau[i][entering]
                if coefficient > eps:
                    ratio = tableau[i][-1] / coefficient
                    if (
                        best is None
                        or ratio < best
                        or (ratio == best and basis[i] < basis[leaving])
                    ):
                        best = ratio
                        leaving = i
            if leaving is None:
                return "unknown", None
            pivot_row = tableau[leaving]
            pivot = pivot_row[entering]
            nonzero = [j for j, v in enumerate(pivot_row) if v != 0.0]
            if pivot != 1.0:
                for j in nonzero:
                    pivot_row[j] /= pivot
            for i in range(m):
                if i == leaving:
                    continue
                row = tableau[i]
                factor = row[entering]
                if factor != 0.0:
                    for j in nonzero:
                        row[j] -= factor * pivot_row[j]
            factor = cost[entering]
            if factor != 0.0:
                for j in nonzero:
                    cost[j] -= factor * pivot_row[j]
            basis[leaving] = entering
        else:
            return "unknown", None
        if abs(cost[-1]) > 1e-7 * scale:
            return "infeasible", None
        values = {name: 0.0 for name in self.variables}
        for i, column in enumerate(basis):
            if column < n:
                values[self.variables[column]] = tableau[i][-1]
        return "feasible", values

    def screened_solve(
        self,
        need_exact: bool = False,
        pivot_budget: int | None = DEFAULT_PIVOT_BUDGET,
    ) -> tuple[str, dict | None]:
        """Feasibility with a float screen in front of the exact solver.

        Returns ``(status, solution)`` with status ``"feasible"``,
        ``"infeasible"``, or ``"unknown"``.  Infeasibility is always
        exact — a float "infeasible" (or "unknown") is re-proven by
        :meth:`solve`.  When ``need_exact`` is false, a float-feasible
        system is accepted as feasible and the returned solution is a
        float dict good only for heuristics (trap discovery); when
        true, the screen is skipped and the solution is exact.  An
        exact solve past ``pivot_budget`` yields ``"unknown"``."""
        if not need_exact:
            status, values = self._solve_float()
            if status == "feasible":
                return "feasible", values
        try:
            exact = self.solve(pivot_budget)
        except PivotBudgetExceeded:
            return "unknown", None
        if exact is None:
            return "infeasible", None
        return "feasible", exact


# -- the state equation over a component-restricted subnet -------------------


def _component_places(net: PetriNet, focus: Iterable[str]) -> set[str]:
    """All places in connected components (of the place/transition
    graph) that contain a focus place."""
    neighbours: dict[str, set[str]] = {place: set() for place in net.places}
    for transition in net.transitions.values():
        touched = sorted(transition.preset | transition.postset)
        for place in touched:
            neighbours[place].update(touched)
    seen: set[str] = set()
    frontier = [place for place in focus if place in neighbours]
    while frontier:
        place = frontier.pop()
        if place in seen:
            continue
        seen.add(place)
        frontier.extend(neighbours[place] - seen)
    return seen


class StateEquation:
    """Constraint builder for ``M = M0 + C·x`` on the components of
    ``net`` that contain ``focus`` (the whole net when ``focus`` covers
    it, or when ``restrict=False``).

    Restriction is feasibility-preserving in both directions: any
    solution of the restricted system extends to the full net with
    ``x = 0`` on the other components, and any full solution restricts.
    """

    def __init__(
        self,
        net: PetriNet,
        focus: Iterable[str] = (),
        restrict: bool = True,
    ):
        self.net = net
        focus_set = set(focus)
        unknown = focus_set - net.places
        if unknown:
            raise ValueError(
                f"focus places not in the net: {sorted(unknown)}"
            )
        all_places, all_tids, matrix = incidence_matrix(net)
        if restrict and focus_set:
            keep = _component_places(net, focus_set)
        else:
            keep = set(all_places)
        row_of = {place: i for i, place in enumerate(all_places)}
        self.places: tuple[str, ...] = tuple(
            p for p in all_places if p in keep
        )
        self.tids: tuple[int, ...] = tuple(
            tid
            for tid in all_tids
            if net.transitions[tid].places() and net.transitions[tid].places() <= keep
        )
        self.oversized = (
            len(self.tids) > MAX_SYSTEM_VARIABLES
            or len(self.places) > MAX_SYSTEM_PLACES
        )
        self.variables: tuple[str, ...] = tuple(
            f"x{tid}" for tid in self.tids
        )
        self.m0: dict[str, Fraction] = {
            place: Fraction(net.initial[place]) for place in self.places
        }
        column_of = {tid: j for j, tid in enumerate(all_tids)}
        self._rows: dict[str, tuple[Fraction, ...]] = {}
        if not self.oversized:
            for place in self.places:
                row = matrix[row_of[place]]
                self._rows[place] = tuple(
                    Fraction(int(row[column_of[tid]])) for tid in self.tids
                )

    def coefficients(self, place: str) -> tuple[Fraction, ...]:
        """The incidence row of ``place`` over the restricted tids."""
        return self._rows[place]

    def base_system(self) -> LinearSystem:
        """``x >= 0`` plus ``M(p) = M0(p) + (C x)(p) >= 0`` for every
        restricted place."""
        system = LinearSystem(self.variables)
        for place in self.places:
            coeffs = self._rows[place]
            system.inequality(
                tuple(-c for c in coeffs),
                self.m0[place],
                tag=f"nonneg[{place}]",
            )
        return system

    def require_marked(self, system: LinearSystem, place: str) -> None:
        """``M(place) >= 1``."""
        coeffs = self._rows[place]
        system.inequality(
            tuple(-c for c in coeffs),
            self.m0[place] - 1,
            tag=f"marked[{place}]",
        )

    def require_empty(self, system: LinearSystem, place: str) -> None:
        """``M(place) <= 0`` (with non-negativity: ``M(place) = 0``)."""
        system.inequality(
            self._rows[place], -self.m0[place], tag=f"empty[{place}]"
        )

    def require_exact(
        self, system: LinearSystem, place: str, tokens: int
    ) -> None:
        """``M(place) == tokens``."""
        system.equality(
            self._rows[place],
            Fraction(tokens) - self.m0[place],
            tag=f"exact[{place}]",
        )

    def require_trap(
        self, system: LinearSystem, trap: frozenset[str]
    ) -> None:
        """``sum(M(p) for p in trap) >= 1`` — sound for every reachable
        marking when ``trap`` is an initially-marked trap."""
        members = sorted(trap)
        coeffs = [Fraction(0)] * len(self.variables)
        total_m0 = Fraction(0)
        for place in members:
            row = self._rows[place]
            coeffs = [a - b for a, b in zip(coeffs, row)]
            total_m0 += self.m0[place]
        system.inequality(
            tuple(coeffs),
            total_m0 - 1,
            tag=f"trap[{','.join(members)}]",
        )

    def marking_of(self, solution: dict[str, Fraction]) -> dict[str, Fraction]:
        """``M0 + C·x`` at an exact solution, per restricted place."""
        x = [solution[name] for name in self.variables]
        return {
            place: self.m0[place]
            + sum(
                (c * v for c, v in zip(self._rows[place], x)),
                Fraction(0),
            )
            for place in self.places
        }

    def witness_marking(self, solution: dict[str, Fraction]) -> Marking:
        """The full-net marking of a restricted solution (``x = 0``
        outside the restriction, so other components keep ``M0``)."""
        values = self.marking_of(solution)
        counts: dict[str, int] = {}
        for place in sorted(self.net.places):
            value = values.get(place, Fraction(self.net.initial[place]))
            if value:
                counts[place] = int(value)
        return Marking(counts)

    def _maximal_trap(self, places: set[str]) -> frozenset[str]:
        """The maximal trap inside ``places`` (restricted transitions;
        identical to the full net by component closure): iteratively
        drop places with a consumer that is not a producer of the set."""
        current = set(places)
        transitions = [self.net.transitions[tid] for tid in self.tids]
        changed = True
        while changed and current:
            changed = False
            producers = {
                t.tid for t in transitions if t.postset & current
            }
            for place in list(current):
                consumers = {
                    t.tid for t in transitions if place in t.preset
                }
                if not consumers <= producers:
                    current.discard(place)
                    changed = True
        return frozenset(current)

    def refine(
        self,
        system: LinearSystem,
        max_rounds: int = DEFAULT_TRAP_ROUNDS,
        need_exact: bool = False,
    ) -> tuple[str, dict | None, int]:
        """Solve with trap-constraint refinement.

        While the system is feasible, look for an initially-marked trap
        inside the zero places of the current solution; its constraint
        is sound and cuts the solution off.  Returns the final solution
        (``None`` = proven infeasible) and the rounds used.

        Infeasibility is always established by the exact solver.  With
        ``need_exact`` false the feasible path runs on the float screen
        (trap discovery only needs to know which places are zero, and
        any initially-marked trap yields a sound constraint), so the
        returned solution may hold floats; pass ``need_exact=True``
        when the caller reads the solution values (exact-mode witness
        extraction).

        Returns ``(status, solution, rounds)`` with status
        ``"feasible"``, ``"infeasible"`` (proven — the only conclusive
        outcome), or ``"unknown"`` (solver budget exhausted)."""
        status, solution = system.screened_solve(need_exact)
        rounds = 0
        while status == "feasible" and rounds < max_rounds:
            marking = self.marking_of(solution)
            zeros = {
                place for place, v in marking.items() if abs(v) <= 1e-9
            }
            trap = self._maximal_trap(zeros)
            if not trap or not any(self.m0[place] for place in trap):
                break
            self.require_trap(system, trap)
            rounds += 1
            status, solution = system.screened_solve(need_exact)
        return status, solution, rounds


# -- verdicts ----------------------------------------------------------------


@dataclass(frozen=True)
class SymbolicVerdict:
    """The answer of one symbolic query.

    ``conclusive=True`` means the verdict is *proven* (and ``holds``
    states whether the queried property holds); ``conclusive=False``
    means the procedure could not decide (``holds`` is ``None``) and
    the caller must fall back to an explicit engine.  ``witness`` is a
    query-specific certificate when one exists (a :class:`Marking` for
    exact-mode reachability, a word for language separation)."""

    conclusive: bool
    holds: bool | None
    reason: str
    stats: dict = field(default_factory=dict)
    witness: object | None = None

    def __post_init__(self):
        if self.conclusive and self.holds is None:
            raise ValueError("conclusive verdicts must state holds")
        if not self.conclusive and self.holds is not None:
            raise ValueError("inconclusive verdicts must leave holds None")

    def __str__(self) -> str:
        label = (
            "INCONCLUSIVE"
            if not self.conclusive
            else ("holds" if self.holds else "fails")
        )
        return f"{label}: {self.reason}"


def _inconclusive(reason: str, stats: dict | None = None) -> SymbolicVerdict:
    return SymbolicVerdict(False, None, reason, stats or {})


def exactness_applies(net: PetriNet) -> bool:
    """``True`` iff state-equation feasibility *characterises*
    reachability on ``net`` — live marked graphs (Theorem 5.7 /
    the classical marked-graph reachability theorem)."""
    from repro.petri.classify import is_marked_graph, marked_graph_is_live

    return is_marked_graph(net) and marked_graph_is_live(net)


def _integral(marking: dict[str, Fraction]) -> bool:
    return all(value.denominator == 1 for value in marking.values())


def predicate_unreachable(
    net: PetriNet,
    marked: Iterable[str] = (),
    empty: Iterable[str] = (),
    trap_rounds: int = DEFAULT_TRAP_ROUNDS,
    exact: bool | None = None,
) -> SymbolicVerdict:
    """Is every marking with ``marked`` places marked and ``empty``
    places empty unreachable?

    CONCLUSIVE/holds when the (trap-refined) state equation is
    infeasible.  On nets where :func:`exactness_applies` (pass
    ``exact`` to override the classification), a feasible integral
    solution is a CONCLUSIVE/fails verdict with a witness marking.
    """
    marked = tuple(sorted(set(marked)))
    empty = tuple(sorted(set(empty)))
    equation = StateEquation(net, set(marked) | set(empty))
    if equation.oversized:
        return _inconclusive(
            f"restricted system too large ({len(equation.tids)}"
            f" transitions, {len(equation.places)} places)"
        )
    system = equation.base_system()
    for place in marked:
        equation.require_marked(system, place)
    for place in empty:
        equation.require_empty(system, place)
    if exact is None:
        exact = exactness_applies(net)
    status, solution, rounds = equation.refine(
        system, trap_rounds, need_exact=exact
    )
    stats = {
        "systems": 1,
        "constraints": system.num_constraints(),
        "refinement_rounds": rounds,
    }
    if status == "infeasible":
        return SymbolicVerdict(
            True,
            True,
            f"state equation infeasible ({system.num_constraints()}"
            f" constraints, {rounds} trap refinements)",
            stats,
        )
    if status == "unknown":
        return _inconclusive("exact solver pivot budget exhausted", stats)
    if exact:
        marking = equation.marking_of(solution)
        if _integral(marking):
            return SymbolicVerdict(
                True,
                False,
                "state equation feasible and exact for live marked"
                " graphs: a witness marking is reachable",
                stats,
                witness=equation.witness_marking(solution),
            )
    return _inconclusive(
        "state equation feasible (reachability not refuted)", stats
    )


def marking_unreachable(
    net: PetriNet,
    target: Marking,
    trap_rounds: int = DEFAULT_TRAP_ROUNDS,
    exact: bool | None = None,
) -> SymbolicVerdict:
    """Is the *exact* marking ``target`` (zero on unlisted places)
    unreachable?  Same semantics as :func:`predicate_unreachable`."""
    unknown = set(target) - net.places
    if unknown:
        raise ValueError(
            f"target marks places not in the net: {sorted(unknown)}"
        )
    equation = StateEquation(net, net.places, restrict=False)
    if equation.oversized:
        return _inconclusive(
            f"system too large ({len(equation.tids)} transitions,"
            f" {len(equation.places)} places)"
        )
    system = equation.base_system()
    for place in equation.places:
        equation.require_exact(system, place, target[place])
    if exact is None:
        exact = exactness_applies(net)
    status, solution, rounds = equation.refine(
        system, trap_rounds, need_exact=exact
    )
    stats = {
        "systems": 1,
        "constraints": system.num_constraints(),
        "refinement_rounds": rounds,
    }
    if status == "infeasible":
        return SymbolicVerdict(
            True,
            True,
            f"state equation infeasible ({system.num_constraints()}"
            f" constraints, {rounds} trap refinements)",
            stats,
        )
    if status == "unknown":
        return _inconclusive("exact solver pivot budget exhausted", stats)
    if exact and _integral(equation.marking_of(solution)):
        return SymbolicVerdict(
            True,
            False,
            "state equation feasible and exact for live marked graphs:"
            " the target marking is reachable",
            stats,
            witness=target,
        )
    return _inconclusive(
        "state equation feasible (reachability not refuted)", stats
    )


def bounded(net: PetriNet) -> SymbolicVerdict:
    """Is the net bounded from its initial marking?

    CONCLUSIVE/holds via invariant coverage (complete basis only — a
    truncated basis proves nothing and is reported in ``stats``) or a
    structural-boundedness certificate ``exists y >= 1: C^T y <= 0``,
    solved exactly.  Unboundedness is never concluded symbolically —
    absence of a certificate is INCONCLUSIVE.
    """
    if not net.places:
        return SymbolicVerdict(True, True, "no places", {"systems": 0})
    invariants, truncated = p_invariants_partial(net)
    covered: set[str] = set()
    for invariant in invariants:
        covered.update(invariant)
    stats: dict = {"systems": 0, "invariants": len(invariants)}
    if truncated:
        stats["invariant_basis_truncated"] = True
    if not truncated and covered >= net.places:
        return SymbolicVerdict(
            True,
            True,
            f"every place covered by one of {len(invariants)}"
            " P-invariants",
            stats,
        )
    places, tids, matrix = incidence_matrix(net)
    system = LinearSystem(tuple(places))
    for j, tid in enumerate(tids):
        system.inequality(
            tuple(Fraction(int(matrix[i][j])) for i in range(len(places))),
            Fraction(0),
            tag=f"column[{tid}]",
        )
    for i, place in enumerate(places):
        unit = [Fraction(0)] * len(places)
        unit[i] = Fraction(-1)
        system.inequality(tuple(unit), Fraction(-1), tag=f"positive[{place}]")
    stats["systems"] = 1
    stats["constraints"] = system.num_constraints()
    if system.solve() is not None:
        return SymbolicVerdict(
            True,
            True,
            "structurally bounded: a positive place weighting is"
            " non-increasing under every firing",
            stats,
        )
    return _inconclusive(
        "no structural boundedness certificate (the net may be"
        " unbounded)",
        stats,
    )


def initial_actions(net: PetriNet) -> frozenset[str]:
    """Non-silent actions enabled at the initial marking — exact
    one-letter-word membership facts."""
    return frozenset(
        t.action
        for t in net.enabled_transitions(net.initial)
        if t.action != EPSILON
    )


def dead_actions(
    net: PetriNet, trap_rounds: int = DEFAULT_TRAP_ROUNDS
) -> tuple[frozenset[str], dict]:
    """Actions that CONCLUSIVELY never fire: every transition carrying
    the label has a state-equation-infeasible enabling condition (or
    there is no such transition at all).

    Returns ``(dead, stats)``.  Absence from ``dead`` proves nothing.
    """
    stats: dict = {"systems": 0, "constraints": 0, "refinement_rounds": 0}
    if len(net.transitions) > DEAD_ACTION_TRANSITION_BUDGET:
        stats["skipped"] = True
        return frozenset(), stats
    dead: set[str] = set()
    for action in sorted(net.actions - {EPSILON}):
        transitions = net.transitions_with_action(action)
        if not transitions:
            dead.add(action)
            continue
        conclusive = True
        for transition in transitions:
            if not transition.preset:
                conclusive = False  # enabled everywhere
                break
            verdict = predicate_unreachable(
                net, marked=transition.preset, trap_rounds=trap_rounds
            )
            for key in ("systems", "constraints", "refinement_rounds"):
                stats[key] += verdict.stats.get(key, 0)
            if not (verdict.conclusive and verdict.holds):
                conclusive = False
                break
        if conclusive:
            dead.add(action)
    return frozenset(dead), stats


def language_precheck(
    net1: PetriNet,
    net2: PetriNet,
    mode: str = "equal",
    silent: Iterable[str] = (EPSILON,),
    trap_rounds: int = DEFAULT_TRAP_ROUNDS,
) -> SymbolicVerdict:
    """Symbolic pre-check for language equality / containment.

    Exact facts only: an action enabled at a net's initial marking is a
    one-letter word of its language; a conclusively-dead action occurs
    in no word.  A one-letter word of one language whose letter is
    conclusively dead in the other separates them (CONCLUSIVE/fails,
    with the word as witness); both alphabets conclusively dead means
    both languages are ``{epsilon}`` (CONCLUSIVE/holds).  Everything
    else is INCONCLUSIVE.
    """
    if mode not in ("equal", "contained"):
        raise ValueError(f"unknown mode {mode!r}")
    silent_set = set(silent)
    visible1 = net1.actions - silent_set
    visible2 = net2.actions - silent_set
    dead1, stats1 = dead_actions(net1, trap_rounds)
    dead2, stats2 = dead_actions(net2, trap_rounds)
    stats = {
        key: stats1.get(key, 0) + stats2.get(key, 0)
        for key in ("systems", "constraints", "refinement_rounds")
    }
    # Letters a net cannot ever produce: conclusively dead, or simply
    # absent from its alphabet.
    never1 = (dead1 & visible1) | (visible2 - net1.actions)
    never2 = (dead2 & visible2) | (visible1 - net2.actions)
    one_letter1 = (initial_actions(net1) - silent_set) & (visible1 | visible2)
    one_letter2 = (initial_actions(net2) - silent_set) & (visible1 | visible2)
    separating = sorted(one_letter1 & never2)
    if not separating and mode == "equal":
        separating = sorted(one_letter2 & never1)
    if separating:
        word = separating[0]
        direction = "left" if word in one_letter1 else "right"
        return SymbolicVerdict(
            True,
            False,
            f"one-letter word {word!r} is in the {direction} language"
            " but its letter is conclusively dead on the other side",
            stats,
            witness=(word,),
        )
    left_empty = visible1 <= (dead1 & visible1)
    right_empty = visible2 <= (dead2 & visible2)
    if mode == "contained" and left_empty:
        return SymbolicVerdict(
            True,
            True,
            "left language is {epsilon}: every visible action is"
            " conclusively dead",
            stats,
        )
    if mode == "equal" and left_empty and right_empty:
        return SymbolicVerdict(
            True,
            True,
            "both languages are {epsilon}: every visible action is"
            " conclusively dead on both sides",
            stats,
        )
    return _inconclusive(
        "no exact symbolic fact decides the comparison", stats
    )


# -- Proposition 5.5 obligations as linear systems ---------------------------


def failure_miss_choices(obligation) -> list[list[str]]:
    """Per consumer alternative, the places that could be unmarked
    while the producer is ready (``preset - producer_preset``).

    An empty list for some alternative means that consumer is ready
    whenever the producer is — no failure is possible for the
    obligation."""
    return [
        sorted(preset - obligation.producer_preset)
        for preset in obligation.consumer_presets
    ]


def obligation_system(
    net: PetriNet, obligation, choice: Iterable[str]
) -> tuple[StateEquation, LinearSystem]:
    """The (unrefined) Prop 5.5 failure system for one miss choice:
    producer preset fully marked, each chosen consumer place empty,
    every restricted place non-negative, all over ``M = M0 + C·x``."""
    choice = tuple(sorted(set(choice)))
    focus = set(obligation.producer_preset) | set(choice)
    equation = StateEquation(net, focus)
    system = equation.base_system()
    for place in sorted(obligation.producer_preset):
        equation.require_marked(system, place)
    for place in choice:
        equation.require_empty(system, place)
    return equation, system


@dataclass
class SymbolicReceptiveness:
    """Partition of Prop 5.5 obligations by the symbolic engine:
    ``safe`` (conclusively no failure marking), ``failed`` (conclusive
    failure witnesses — exact mode only) and ``undecided`` (the
    explicit fallback set)."""

    safe: list = field(default_factory=list)
    failed: list = field(default_factory=list)  # (obligation, Marking)
    undecided: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def conclusive(self) -> bool:
        return not self.undecided


def symbolic_receptiveness(
    net: PetriNet,
    obligations,
    trap_rounds: int = DEFAULT_TRAP_ROUNDS,
) -> SymbolicReceptiveness:
    """Decide Prop 5.5 obligations by state-equation reasoning alone.

    For each obligation, a failure marking exists iff for *some* choice
    of one missing place per consumer alternative, the corresponding
    constraint system has a reachable solution.  Infeasibility of every
    choice proves the obligation safe; on exact nets
    (:func:`exactness_applies`) a feasible integral choice proves a
    failure with a witness; otherwise the obligation is undecided and
    the caller must search explicitly.

    Emits ``engine.symbolic.*`` counters (systems, constraints,
    refinement rounds, conclusive/inconclusive obligations).
    """
    outcome = SymbolicReceptiveness(
        stats={
            "systems": 0,
            "constraints": 0,
            "refinement_rounds": 0,
            "safe": 0,
            "failed": 0,
            "undecided": 0,
        }
    )
    stats = outcome.stats
    exact = exactness_applies(net)
    stats["exact"] = exact
    for obligation in obligations:
        choices = failure_miss_choices(obligation)
        if any(not misses for misses in choices):
            # Some consumer's preset is inside the producer's: ready
            # whenever the producer is — structurally safe.
            outcome.safe.append(obligation)
            stats["safe"] += 1
            continue
        decided = False
        all_infeasible = True
        for choice in _product(*choices):
            equation, system = obligation_system(net, obligation, choice)
            if equation.oversized:
                all_infeasible = False
                break
            status, solution, rounds = equation.refine(
                system, trap_rounds, need_exact=exact
            )
            stats["systems"] += 1
            stats["constraints"] += system.num_constraints()
            stats["refinement_rounds"] += rounds
            if status == "infeasible":
                continue
            all_infeasible = False
            if (
                exact
                and status == "feasible"
                and _integral(equation.marking_of(solution))
            ):
                outcome.failed.append(
                    (obligation, equation.witness_marking(solution))
                )
                stats["failed"] += 1
                decided = True
            break
        if decided:
            continue
        if all_infeasible:
            outcome.safe.append(obligation)
            stats["safe"] += 1
        else:
            outcome.undecided.append(obligation)
            stats["undecided"] += 1
    publish_stats(stats)
    obs.count("engine.symbolic.conclusive", stats["safe"] + stats["failed"])
    obs.count("engine.symbolic.inconclusive", stats["undecided"])
    return outcome


def publish_stats(stats: dict) -> None:
    """Forward accumulated solver statistics as ``engine.symbolic.*``
    counters on the active :mod:`repro.obs` recorder."""
    obs.count("engine.symbolic.systems", stats.get("systems", 0))
    obs.count("engine.symbolic.constraints", stats.get("constraints", 0))
    obs.count(
        "engine.symbolic.refinement_rounds",
        stats.get("refinement_rounds", 0),
    )


def analyze(net: PetriNet, trap_rounds: int = DEFAULT_TRAP_ROUNDS) -> dict:
    """The bench-cell view of one net: boundedness verdict and the
    conclusively-dead action set, with accumulated solver statistics."""
    with obs.span("engine.symbolic.analyze", net=net.name) as span:
        bounded_verdict = bounded(net)
        dead, dead_stats = dead_actions(net, trap_rounds)
        stats = {
            key: bounded_verdict.stats.get(key, 0) + dead_stats.get(key, 0)
            for key in ("systems", "constraints", "refinement_rounds")
        }
        publish_stats(stats)
        obs.count(
            "engine.symbolic.conclusive", int(bounded_verdict.conclusive)
        )
        obs.count(
            "engine.symbolic.inconclusive",
            int(not bounded_verdict.conclusive),
        )
        span.set(
            bounded_conclusive=bounded_verdict.conclusive,
            dead_actions=len(dead),
        )
    return {
        "bounded": bounded_verdict,
        "dead_actions": dead,
        "stats": stats,
    }


# -- optional SMT-LIB backend ------------------------------------------------

#: Solvers probed on PATH, in preference order, with the arguments that
#: make them read SMT-LIB 2 from stdin.
SOLVERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("z3", ("-in", "-smt2")),
    ("cvc5", ("--lang", "smt2")),
    ("cvc4", ("--lang", "smt2")),
    ("yices-smt2", ()),
)

#: Seconds each solver invocation may take before it counts as unknown.
SMT_TIMEOUT = 30.0


def find_solver() -> tuple[str, tuple[str, ...]] | None:
    """The first available external SMT solver ``(path, argv)``, or
    ``None`` — callers skip cleanly in that case."""
    import shutil

    for name, argv in SOLVERS:
        path = shutil.which(name)
        if path:
            return path, argv
    return None


def smt_available() -> bool:
    """``True`` iff an external SMT solver is on ``PATH``."""
    return find_solver() is not None


def _run_solver(script: str, timeout: float = SMT_TIMEOUT) -> str:
    """Run the discovered solver on an SMT-LIB script; returns the
    verdict line (``sat`` / ``unsat``) or ``unknown`` on any failure."""
    import subprocess

    solver = find_solver()
    if solver is None:
        return "unknown"
    path, argv = solver
    try:
        completed = subprocess.run(
            [path, *argv],
            input=script,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    for line in completed.stdout.splitlines():
        line = line.strip()
        if line in ("sat", "unsat"):
            return line
    return "unknown"


def _smt_index(net: PetriNet) -> tuple[list[str], list]:
    """Deterministic place order and tid-ordered transitions; SMT
    symbols are positional (``p3``, ``x5``) so hostile names never
    reach the solver."""
    return sorted(net.places), list(net.sorted_transitions())


def _sum_term(parts: list[str]) -> str:
    if not parts:
        return "0"
    if len(parts) == 1:
        return parts[0]
    return f"(+ {' '.join(parts)})"


def _marking_term(
    net: PetriNet, places: list[str], transitions, place: str, prefix: str
) -> str:
    """``M0(p) + sum(C[p,t] * x_t)`` as an SMT term over ``prefix``
    firing-count variables."""
    parts = [str(net.initial[place])]
    for position, transition in enumerate(transitions):
        delta = (place in transition.produce) - (place in transition.consume)
        if delta == 1:
            parts.append(f"{prefix}{position}")
        elif delta == -1:
            parts.append(f"(- {prefix}{position})")
    return _sum_term(parts)


def smt_state_equation_script(
    net: PetriNet, marked: Iterable[str] = (), empty: Iterable[str] = ()
) -> str:
    """The state equation over *integers* — strictly stronger than the
    rational LP, still an over-approximation of reachability: ``unsat``
    proves unreachability.  Complete P-invariants are added as
    redundant-but-pruning equalities (each is individually sound even
    from a truncated basis)."""
    places, transitions = _smt_index(net)
    index = {place: i for i, place in enumerate(places)}
    lines = ["(set-logic QF_LIA)"]
    for position in range(len(transitions)):
        lines.append(f"(declare-const x{position} Int)")
        lines.append(f"(assert (>= x{position} 0))")
    terms = {
        place: _marking_term(net, places, transitions, place, "x")
        for place in places
    }
    for place in places:
        lines.append(f"(assert (>= {terms[place]} 0))")
    for place in sorted(set(marked)):
        lines.append(f"(assert (>= {terms[place]} 1))")
    for place in sorted(set(empty)):
        lines.append(f"(assert (<= {terms[place]} 0))")
    invariants, _ = p_invariants_partial(net)
    for invariant in invariants:
        weighted = [
            (f"(* {weight} {terms[place]})" if weight != 1 else terms[place])
            for place, weight in sorted(invariant.items())
        ]
        value = sum(
            weight * net.initial[place]
            for place, weight in invariant.items()
        )
        lines.append(f"(assert (= {_sum_term(weighted)} {value}))")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"


def _step_assertion(
    transitions, places: list[str], pre: str, post: str
) -> str:
    """One interleaving step: some transition is enabled at ``pre`` and
    ``post`` is its firing result."""
    options = []
    for transition in transitions:
        clauses = [f"(>= {pre}_{places.index(p)} 1)" for p in sorted(transition.preset)]
        for i, place in enumerate(places):
            delta = (place in transition.produce) - (place in transition.consume)
            if delta:
                clauses.append(f"(= {post}_{i} (+ {pre}_{i} {delta}))")
            else:
                clauses.append(f"(= {post}_{i} {pre}_{i})")
        options.append(f"(and {' '.join(clauses)})")
    if not options:
        return "false"
    if len(options) == 1:
        return options[0]
    return f"(or {' '.join(options)})"


def _declare_state(lines: list[str], name: str, count: int) -> None:
    for i in range(count):
        lines.append(f"(declare-const {name}_{i} Int)")
        lines.append(f"(assert (>= {name}_{i} 0))")


def _target_term(
    places: list[str], name: str, marked, empty
) -> str:
    clauses = [f"(>= {name}_{places.index(p)} 1)" for p in sorted(set(marked))]
    clauses += [f"(<= {name}_{places.index(p)} 0)" for p in sorted(set(empty))]
    if not clauses:
        return "true"
    if len(clauses) == 1:
        return clauses[0]
    return f"(and {' '.join(clauses)})"


def smt_bmc_script(
    net: PetriNet,
    marked: Iterable[str] = (),
    empty: Iterable[str] = (),
    depth: int = 8,
) -> str:
    """Bounded model checking: ``sat`` iff some marking satisfying the
    predicate is reachable within ``depth`` interleaving steps."""
    places, transitions = _smt_index(net)
    if not transitions:
        depth = 0
    lines = ["(set-logic QF_LIA)"]
    for k in range(depth + 1):
        _declare_state(lines, f"m{k}", len(places))
    for i, place in enumerate(places):
        lines.append(f"(assert (= m0_{i} {net.initial[place]}))")
    for k in range(depth):
        lines.append(
            f"(assert {_step_assertion(transitions, places, f'm{k}', f'm{k + 1}')})"
        )
    targets = [
        _target_term(places, f"m{k}", marked, empty) for k in range(depth + 1)
    ]
    lines.append(
        f"(assert {targets[0] if len(targets) == 1 else '(or ' + ' '.join(targets) + ')'})"
    )
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"


def smt_kinduction_step_script(
    net: PetriNet,
    marked: Iterable[str] = (),
    empty: Iterable[str] = (),
    k: int = 1,
) -> str:
    """The inductive step of k-induction, relative to the integer state
    equation: ``unsat`` (together with an ``unsat`` BMC base of depth
    ``k - 1``) proves the predicate unreachable.

    States ``s0..sk`` are consecutive firings; ``s0`` is anchored to
    the state-equation over-approximation (every reachable state
    satisfies it, so the strengthening is sound); ``s0..s(k-1)`` avoid
    the target and ``sk`` hits it."""
    places, transitions = _smt_index(net)
    lines = ["(set-logic QF_LIA)"]
    for step in range(k + 1):
        _declare_state(lines, f"s{step}", len(places))
    for position in range(len(transitions)):
        lines.append(f"(declare-const y{position} Int)")
        lines.append(f"(assert (>= y{position} 0))")
    for i, place in enumerate(places):
        term = _marking_term(net, places, transitions, place, "y")
        lines.append(f"(assert (= s0_{i} {term}))")
    for step in range(k):
        lines.append(
            f"(assert {_step_assertion(transitions, places, f's{step}', f's{step + 1}')})"
        )
    for step in range(k):
        lines.append(
            f"(assert (not {_target_term(places, f's{step}', marked, empty)}))"
        )
    lines.append(f"(assert {_target_term(places, f's{k}', marked, empty)})")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"


def smt_unreachable(
    net: PetriNet,
    marked: Iterable[str] = (),
    empty: Iterable[str] = (),
    max_depth: int = 8,
    timeout: float = SMT_TIMEOUT,
) -> SymbolicVerdict:
    """The solver-backed version of :func:`predicate_unreachable`:
    integer state equation, then BMC (CONCLUSIVE/fails on a witness
    within ``max_depth`` steps), then k-induction (CONCLUSIVE/holds).
    INCONCLUSIVE — with the reason — when no solver is installed, the
    solver times out, or neither direction converges."""
    if not smt_available():
        names = ", ".join(name for name, _ in SOLVERS)
        return _inconclusive(
            f"no SMT solver found on PATH (tried {names})"
        )
    stats: dict = {"solver_calls": 0}
    script = smt_state_equation_script(net, marked, empty)
    stats["solver_calls"] += 1
    if _run_solver(script, timeout) == "unsat":
        return SymbolicVerdict(
            True, True, "integer state equation infeasible", stats
        )
    stats["solver_calls"] += 1
    if _run_solver(smt_bmc_script(net, marked, empty, max_depth), timeout) == "sat":
        return SymbolicVerdict(
            True,
            False,
            f"BMC found a witness within {max_depth} steps",
            stats,
        )
    for k in range(1, max_depth + 1):
        stats["solver_calls"] += 1
        verdict = _run_solver(
            smt_kinduction_step_script(net, marked, empty, k), timeout
        )
        if verdict == "unsat":
            return SymbolicVerdict(
                True,
                True,
                f"{k}-induction relative to the state equation",
                stats,
            )
    return _inconclusive(
        f"BMC found no witness within {max_depth} steps and"
        f" k-induction did not converge by k={max_depth}",
        stats,
    )
