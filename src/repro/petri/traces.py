"""Trace semantics of labeled Petri nets (Definitions 4.1, 4.8, 4.9).

The semantics used throughout the paper is the prefix-closed language of
firing sequences, ``L(N)``.  For bounded nets this language is regular
(see :mod:`repro.verify.language` for exact automaton-based comparison);
this module provides the *bounded-depth* trace sets used for direct,
definition-level validation of the algebra theorems, together with the
language operators ``project``, ``hide``, ``rename`` and the rendez-vous
parallel composition of traces.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from functools import lru_cache

from repro.petri.net import EPSILON, PetriNet
from repro.petri.reachability import firing_sequences

Trace = tuple[str, ...]
Language = frozenset[Trace]


def bounded_language(net: PetriNet, depth: int) -> Language:
    """All firing sequences of ``net`` of length at most ``depth``.

    This is the depth-``depth`` fragment of ``L(N)`` (Definition 4.1); it
    is always prefix-closed and contains the empty trace.
    """
    return frozenset(firing_sequences(net, depth))


def language_of_net(net: PetriNet, depth: int) -> Language:
    """Alias of :func:`bounded_language` matching the paper's ``L(N)``."""
    return bounded_language(net, depth)


def observable(trace: Trace) -> Trace:
    """The trace with all epsilon (dummy) actions removed."""
    return tuple(action for action in trace if action != EPSILON)


def observable_language(language: Iterable[Trace]) -> Language:
    """Pointwise epsilon removal over a language."""
    return frozenset(observable(trace) for trace in language)


def project_trace(trace: Trace, alphabet: Iterable[str]) -> Trace:
    """``project(t, A)``: keep only the actions in ``alphabet``."""
    keep = set(alphabet)
    return tuple(action for action in trace if action in keep)


def project_language(language: Iterable[Trace], alphabet: Iterable[str]) -> Language:
    """Pointwise projection of a language onto an alphabet."""
    keep = set(alphabet)
    return frozenset(project_trace(trace, keep) for trace in language)


def hide_language(
    language: Iterable[Trace], actions: str | Iterable[str], alphabet: Iterable[str] | None = None
) -> Language:
    """``hide(L, a) = project(L, A \\ {a})`` (Section 4.4).

    ``actions`` may be a single label or an iterable of labels.  If
    ``alphabet`` is omitted it is inferred from the language.
    """
    hidden = {actions} if isinstance(actions, str) else set(actions)
    if alphabet is None:
        alphabet = {action for trace in language for action in trace}
    return project_language(language, set(alphabet) - hidden)


def rename_language(
    language: Iterable[Trace], mapping: Mapping[str, str]
) -> Language:
    """Pointwise renaming of action labels in a language."""
    return frozenset(
        tuple(mapping.get(action, action) for action in trace) for trace in language
    )


def parallel_compose_traces(
    trace1: Trace,
    trace2: Trace,
    alphabet1: Iterable[str],
    alphabet2: Iterable[str],
    max_length: int | None = None,
) -> Language:
    """Rendez-vous composition of two traces (Definition 4.8).

    Returns all traces ``t`` over ``A1 | A2`` with ``project(t, Ai) =
    ti``.  The set is empty when the traces do not synchronize (the
    paper's example: ``a.b.c || c.a.b``).  ``max_length`` truncates the
    enumeration, useful when composing bounded languages.
    """
    a1 = frozenset(alphabet1)
    a2 = frozenset(alphabet2)
    common = a1 & a2
    limit = max_length if max_length is not None else len(trace1) + len(trace2)

    @lru_cache(maxsize=None)
    def shuffles(i: int, j: int, budget: int) -> frozenset[Trace]:
        # ``budget`` is the number of output symbols still allowed; a
        # synchronized step consumes one symbol from each input trace but
        # only one output symbol.
        if i == len(trace1) and j == len(trace2):
            return frozenset({()})
        if budget == 0:
            return frozenset()
        results: set[Trace] = set()
        head1 = trace1[i] if i < len(trace1) else None
        head2 = trace2[j] if j < len(trace2) else None
        if head1 is not None and head1 in common:
            if head2 == head1:
                for rest in shuffles(i + 1, j + 1, budget - 1):
                    results.add((head1,) + rest)
        elif head1 is not None:
            for rest in shuffles(i + 1, j, budget - 1):
                results.add((head1,) + rest)
        if head2 is not None and head2 not in common:
            # A common-label head of trace2 can only be consumed by the
            # synchronizing step above.
            for rest in shuffles(i, j + 1, budget - 1):
                results.add((head2,) + rest)
        return frozenset(results)

    return frozenset(shuffles(0, 0, limit))


def synchronizable(
    trace1: Trace, trace2: Trace, alphabet1: Iterable[str], alphabet2: Iterable[str]
) -> bool:
    """``True`` iff the rendez-vous composition of the traces is non-empty."""
    return bool(parallel_compose_traces(trace1, trace2, alphabet1, alphabet2))


def parallel_compose_languages(
    language1: Iterable[Trace],
    language2: Iterable[Trace],
    alphabet1: Iterable[str],
    alphabet2: Iterable[str],
    max_length: int | None = None,
) -> Language:
    """Rendez-vous composition of two languages (Definition 4.9).

    ``L1 || L2 = { t1 || t2 : t1 in L1, t2 in L2 }``.  For prefix-closed
    inputs the result is prefix-closed.  When ``max_length`` is given, the
    result is truncated to traces of at most that length; composing the
    depth-``k`` languages of two nets with ``max_length=k`` yields exactly
    the depth-``k`` language of the composed net (Theorem 4.5 restricted
    to bounded depth), which is how the theorem is validated in the tests.
    """
    a1 = frozenset(alphabet1)
    a2 = frozenset(alphabet2)
    result: set[Trace] = set()
    for t1 in language1:
        for t2 in language2:
            result |= parallel_compose_traces(t1, t2, a1, a2, max_length)
    return frozenset(result)


def is_prefix_closed(language: Iterable[Trace]) -> bool:
    """``True`` iff every prefix of every trace is in the language."""
    traces = set(language)
    return all(trace[:cut] in traces for trace in traces for cut in range(len(trace)))


def prefix_closure(language: Iterable[Trace]) -> Language:
    """The smallest prefix-closed language containing ``language``."""
    closed: set[Trace] = set()
    for trace in language:
        for cut in range(len(trace) + 1):
            closed.add(trace[:cut])
    return frozenset(closed)
