"""Static independence analysis and stubborn-set selection.

This is the structural half of the partial-order reduction layer
(``engine="por"``).  The rendez-vous composition of Definition 4.7
produces nets whose components progress concurrently; an explicit
exploration then enumerates every interleaving of independent
transitions — the dominant blow-up on composed nets.  Partial-order
reduction expands, at each marking, only a *stubborn* subset of the
enabled transitions, chosen so that every behaviour the verification
layers observe (deadlocks, the visible-action language, the
Proposition 5.5 failure predicate) is preserved exactly.

Two classes:

* :class:`IndependenceRelation` — the static facts, computed once per
  net from preset/postset overlap: which transitions compete for an
  input place (*conflict*), which transitions strictly produce into a
  place (the only ones that can enable a transition waiting on it), and
  which transitions change the token count of a given place (the ones a
  marking predicate over that place can observe).

* :class:`StubbornSelector` — the per-marking selector.  It closes a
  candidate set under the two classical stubborn-set rules (an enabled
  member brings in its conflicting transitions; a disabled member
  brings in the strict producers of one empty *scapegoat* input place),
  keeps at least one enabled *key* transition, and refuses to reduce at
  all if any enabled member is visible.  The remaining condition for
  language preservation — that no enabled transition is postponed
  around a cycle forever — is enforced by the exploration layer: by
  the DFS-stack proviso of :mod:`repro.petri.dfs` (the default, which
  also layers sleep sets on top of this selector), or by the original
  ``proviso="fresh"`` rule in which
  :class:`repro.petri.product.LazyStateSpace` fully expands any state
  where a reduced successor has already been discovered.

Soundness sketch (the invariants the differential harness in
``tests/petri/test_por_differential.py`` checks empirically):

* an *enabled* stubborn transition stays enabled, and commutes, over
  any sequence of non-stubborn firings — no non-stubborn transition
  shares one of its input places;
* a *disabled* stubborn transition stays disabled over any sequence of
  non-stubborn firings — every transition that could mark its empty
  scapegoat place is itself stubborn;
* therefore the first stubborn transition of any firing sequence can be
  commuted to the front, and since it is invisible the visible
  projection is unchanged.  With the cycle proviso this yields exact
  preservation of deadlock markings and of the visible trace language.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.petri.marking import Marking, Place
from repro.petri.net import PetriNet


@dataclass
class SelectorStats:
    """Work counters of one :class:`StubbornSelector`.

    ``calls`` counts :meth:`StubbornSelector.reduced_enabled`
    invocations, ``seeds_tried`` the closures actually computed, and
    ``proposals`` the calls that returned a proper reduction.  Flushed
    to the metrics layer by
    :meth:`repro.petri.product.LazyStateSpace.publish_metrics`.
    """

    calls: int = 0
    seeds_tried: int = 0
    proposals: int = 0


class IndependenceRelation:
    """Static (in)dependence facts of a net's transitions.

    Built once per net (cost linear in the arc count); all queries are
    lookups.  The relation is purely structural and therefore safe for
    any marking: it may *over*-approximate dependence (two transitions
    sharing a multi-token place are treated as conflicting even when
    the place holds enough tokens for both), which only makes the
    reduction more conservative, never unsound.
    """

    def __init__(self, net: PetriNet):
        self.net = net
        consumers: dict[Place, set[int]] = {}
        strict_producers: dict[Place, list[int]] = {}
        changing: dict[Place, set[int]] = {}
        for transition in net.sorted_transitions():
            tid = transition.tid
            for place in transition.preset:
                consumers.setdefault(place, set()).add(tid)
            for place in transition.postset - transition.preset:
                strict_producers.setdefault(place, []).append(tid)
                changing.setdefault(place, set()).add(tid)
            for place in transition.preset - transition.postset:
                changing.setdefault(place, set()).add(tid)
        self._strict_producers = {
            place: tuple(tids) for place, tids in strict_producers.items()
        }
        self._changing = {
            place: frozenset(tids) for place, tids in changing.items()
        }
        conflicting: dict[int, tuple[int, ...]] = {}
        for tid, transition in net.transitions.items():
            rivals: set[int] = set()
            for place in transition.preset:
                rivals |= consumers.get(place, set())
            rivals.discard(tid)
            conflicting[tid] = tuple(sorted(rivals))
        self._conflicting = conflicting

    def conflicting(self, tid: int) -> tuple[int, ...]:
        """Transitions competing with ``tid`` for an input place
        (``•t ∩ •u ≠ ∅``), in tid order.  Firing any of them may
        disable ``tid``; nothing else can."""
        return self._conflicting[tid]

    def strict_producers(self, place: Place) -> tuple[int, ...]:
        """Transitions whose firing strictly increases ``place``'s token
        count (``place ∈ t• \\ •t``) — the only transitions that can
        mark an empty place."""
        return self._strict_producers.get(place, ())

    def transitions_changing(self, places: Iterable[Place]) -> frozenset[int]:
        """Transitions whose firing changes the token count of any of
        ``places`` — the transitions a marking predicate over those
        places can observe."""
        result: set[int] = set()
        for place in places:
            result |= self._changing.get(place, frozenset())
        return frozenset(result)

    def independent(self, tid1: int, tid2: int) -> bool:
        """Structural independence: the transitions touch disjoint place
        sets, so they can neither disable each other nor race for
        tokens, and their firings commute from any marking."""
        if tid1 == tid2:
            return False
        t1 = self.net.transitions[tid1]
        t2 = self.net.transitions[tid2]
        return not (t1.places() & t2.places())


class StubbornSelector:
    """Per-marking stubborn-set selection over a static relation.

    ``visible_tids`` are the transitions the current verification
    question observes — by label (actions not hidden, so the
    Theorem 4.5/4.7 language checks stay exact) and/or by place (the
    transitions that can change a marking predicate, e.g. the
    Proposition 5.5 obligation places).  A reduction is only proposed
    when every *enabled* member of the closed set is invisible; visible
    transitions may still appear as disabled members (they cannot fire
    before something stubborn does, so nothing observable is lost).
    """

    def __init__(
        self,
        net: PetriNet,
        visible_tids: Iterable[int],
        relation: IndependenceRelation | None = None,
    ):
        self.net = net
        self.relation = relation if relation is not None else IndependenceRelation(net)
        self.visible = frozenset(visible_tids)
        self.stats = SelectorStats()
        self._transitions = net.transitions

    def reduced_enabled(
        self,
        marking: Marking,
        enabled: tuple[int, ...],
        asleep: frozenset[int] = frozenset(),
    ) -> tuple[int, ...] | None:
        """The enabled members of the smallest stubborn set found at
        ``marking``, or ``None`` when no sound proper reduction exists
        (the caller then expands every enabled transition).

        Each enabled transition is tried as the seed; the candidate with
        the fewest enabled members wins (ties to the lowest seed tid, so
        the choice — and with it every ``engine="por"`` run — is
        deterministic).

        ``asleep`` is the caller's sleep set (:mod:`repro.petri.dfs`):
        transitions whose firings are already covered by an earlier
        branch and will be skipped.  Seeds drawn from it are not tried
        (their closures would be centred on transitions the caller
        cannot fire) and candidates are scored by their *awake* member
        count, so the proposal always carries at least one firable
        transition — the seed itself.  With the default empty ``asleep``
        the behaviour is exactly the historic one.
        """
        if len(enabled) <= 1:
            return None
        self.stats.calls += 1
        enabled_set = frozenset(enabled)
        best: set[int] | None = None
        best_awake = 0
        for seed in enabled:
            if seed in self.visible or seed in asleep:
                continue
            self.stats.seeds_tried += 1
            chosen = self._closure(seed, marking, enabled_set)
            if chosen is None:
                continue
            awake = (
                sum(1 for tid in chosen if tid not in asleep)
                if asleep
                else len(chosen)
            )
            if best is None or awake < best_awake:
                best = chosen
                best_awake = awake
                if best_awake == 1:
                    break
        if best is None or len(best) >= len(enabled):
            return None
        self.stats.proposals += 1
        return tuple(sorted(best))

    def _closure(
        self, seed: int, marking: Marking, enabled_set: frozenset[int]
    ) -> set[int] | None:
        """Close ``{seed}`` under the stubborn rules at ``marking``;
        returns the enabled members, or ``None`` as soon as an enabled
        visible transition enters the set (no reduction from this
        seed)."""
        relation = self.relation
        stubborn = {seed}
        work = [seed]
        chosen: set[int] = set()
        while work:
            tid = work.pop()
            if tid in enabled_set:
                if tid in self.visible:
                    return None
                chosen.add(tid)
                if len(chosen) == len(enabled_set):
                    return None  # the whole enabled set: no reduction
                for rival in relation.conflicting(tid):
                    if rival not in stubborn:
                        stubborn.add(rival)
                        work.append(rival)
            else:
                scapegoat = self._scapegoat(tid, marking)
                for producer in relation.strict_producers(scapegoat):
                    if producer not in stubborn:
                        stubborn.add(producer)
                        work.append(producer)
        return chosen

    def _scapegoat(self, tid: int, marking: Marking) -> Place:
        """The empty input place of a disabled transition whose strict
        producers are fewest (deterministic tie-break on place name) —
        the cheapest witness that the transition stays disabled while
        only non-stubborn transitions fire.

        Determinism matters beyond reproducibility: the DFS driver of
        :mod:`repro.petri.dfs` assumes identical selector proposals on
        identical markings across runs and backends.  The candidate
        scan is over the *sorted* preset with a strict ``<`` cost
        comparison (first minimum wins), so the choice is a pure
        function of the net and the marking — no dict/set iteration
        order is ever consulted; ``tests/petri/test_por_determinism.py``
        pins this."""
        best: tuple[int, Place] | None = None
        for place in sorted(self._transitions[tid].preset):
            if marking[place] > 0:
                continue
            cost = len(self.relation.strict_producers(place))
            if best is None or cost < best[0]:
                best = (cost, place)
        assert best is not None, "disabled transition has no empty input place"
        return best[1]
