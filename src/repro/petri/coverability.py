"""Karp-Miller coverability analysis for (possibly) unbounded nets.

The paper restricts itself to finite bounded nets, but the algebra
operators are defined on general Petri nets; coverability gives a
*terminating* boundedness decision procedure so library users get a real
answer instead of a state-budget timeout.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.petri.marking import Marking
from repro.petri.net import PetriNet

#: The Karp-Miller 'unbounded' token count.
OMEGA = math.inf

ExtendedMarking = tuple[tuple[str, float], ...]


def _freeze(counts: dict[str, float]) -> ExtendedMarking:
    return tuple(sorted((p, c) for p, c in counts.items() if c))


def _thaw(marking: ExtendedMarking) -> dict[str, float]:
    return dict(marking)


@dataclass
class CoverabilityTree:
    """The Karp-Miller coverability tree of a net.

    ``nodes`` are extended markings (token counts in ``N ∪ {ω}``);
    ``edges`` are labelled with actions.  ``omega_places`` collects every
    place that acquires an ω somewhere — exactly the unbounded places.
    """

    nodes: set[ExtendedMarking] = field(default_factory=set)
    edges: list[tuple[ExtendedMarking, str, ExtendedMarking]] = field(
        default_factory=list
    )
    omega_places: set[str] = field(default_factory=set)

    def is_bounded(self) -> bool:
        return not self.omega_places

    def place_bound(self, place: str) -> float:
        """The maximum token count of ``place`` over the coverability set
        (``OMEGA`` when unbounded)."""
        return max((dict(node).get(place, 0) for node in self.nodes), default=0)


def coverability_tree(net: PetriNet, max_nodes: int = 200_000) -> CoverabilityTree:
    """Build the Karp-Miller coverability tree.

    Acceleration: when a new marking strictly covers an ancestor, every
    strictly larger place count is replaced by ω.  Termination is
    guaranteed by Dickson's lemma; ``max_nodes`` is a safety valve.
    """
    tree = CoverabilityTree()
    root = _freeze({p: float(c) for p, c in net.initial.items()})
    tree.nodes.add(root)
    # Work items carry the ancestor chain for acceleration.
    queue: deque[tuple[ExtendedMarking, tuple[ExtendedMarking, ...]]] = deque(
        [(root, ())]
    )
    expanded: set[ExtendedMarking] = set()
    while queue:
        node, ancestors = queue.popleft()
        if node in expanded:
            continue
        expanded.add(node)
        counts = _thaw(node)
        for transition in sorted(net.transitions.values(), key=lambda t: t.tid):
            if not all(counts.get(p, 0) >= 1 for p in transition.preset):
                continue
            successor = dict(counts)
            for place in transition.preset - transition.postset:
                if successor[place] is not OMEGA and successor[place] != OMEGA:
                    successor[place] = successor.get(place, 0) - 1
            for place in transition.postset - transition.preset:
                current = successor.get(place, 0)
                successor[place] = current if current == OMEGA else current + 1
            # Acceleration against the ancestor chain.
            chain = ancestors + (node,)
            for ancestor in chain:
                older = _thaw(ancestor)
                if _covers(successor, older) and _strictly_greater(successor, older):
                    for place in set(successor) | set(older):
                        if successor.get(place, 0) > older.get(place, 0):
                            successor[place] = OMEGA
                            tree.omega_places.add(place)
            frozen = _freeze(successor)
            tree.edges.append((node, transition.action, frozen))
            if frozen not in tree.nodes:
                if len(tree.nodes) >= max_nodes:
                    raise RuntimeError(
                        f"coverability tree exceeded {max_nodes} nodes"
                    )
                tree.nodes.add(frozen)
                queue.append((frozen, chain))
    return tree


def _covers(big: dict[str, float], small: dict[str, float]) -> bool:
    return all(big.get(place, 0) >= count for place, count in small.items())


def _strictly_greater(big: dict[str, float], small: dict[str, float]) -> bool:
    return _covers(big, small) and any(
        big.get(place, 0) > small.get(place, 0) for place in set(big) | set(small)
    )


def is_bounded(net: PetriNet, max_nodes: int = 200_000) -> bool:
    """Terminating boundedness decision via Karp-Miller."""
    return coverability_tree(net, max_nodes).is_bounded()


def unbounded_places(net: PetriNet, max_nodes: int = 200_000) -> set[str]:
    """The set of places with no finite bound."""
    return set(coverability_tree(net, max_nodes).omega_places)


def place_bounds(net: PetriNet, max_nodes: int = 200_000) -> dict[str, float]:
    """Per-place bounds over the coverability set (``OMEGA`` if unbounded)."""
    tree = coverability_tree(net, max_nodes)
    return {place: tree.place_bound(place) for place in sorted(net.places)}


def can_cover(net: PetriNet, target: Marking, max_nodes: int = 200_000) -> bool:
    """``True`` iff some reachable marking covers ``target`` (coverability)."""
    tree = coverability_tree(net, max_nodes)
    goal = {place: float(count) for place, count in target.items()}
    return any(_covers(_thaw(node), goal) for node in tree.nodes)
