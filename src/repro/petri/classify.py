"""Net class detection and polynomial checks for restricted classes.

Section 5 of the paper leans on the classical net-class hierarchy:

* *state machines* (SM): every transition has exactly one input and one
  output place;
* *marked graphs* (MG): every place has exactly one producer and one
  consumer — closed under action prefix, renaming and parallel
  composition (Proposition 5.4) and admitting polynomial liveness /
  safeness checks used by Theorem 5.7;
* *free choice* (FC) and *extended free choice* (EFC): conflicts are
  'free' — if two transitions share an input place they share all of
  them;
* *asymmetric choice* (AC): shared input place sets are ordered by
  inclusion.

Arbiters require general nets (the paper's argument for defining the
algebra on general Petri nets).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.petri.net import PetriNet


@dataclass(frozen=True)
class NetClass:
    """Membership flags in the classical net-class hierarchy."""

    state_machine: bool
    marked_graph: bool
    free_choice: bool
    extended_free_choice: bool
    asymmetric_choice: bool

    def most_specific(self) -> str:
        """The most specific class name, for reporting."""
        if self.state_machine and self.marked_graph:
            return "state machine + marked graph"
        if self.state_machine:
            return "state machine"
        if self.marked_graph:
            return "marked graph"
        if self.free_choice:
            return "free choice"
        if self.extended_free_choice:
            return "extended free choice"
        if self.asymmetric_choice:
            return "asymmetric choice"
        return "general"


def is_state_machine(net: PetriNet) -> bool:
    """Every transition has exactly one input and one output place."""
    return all(
        len(t.preset) == 1 and len(t.postset) == 1 for t in net.transitions.values()
    )


def is_marked_graph(net: PetriNet) -> bool:
    """Every place has exactly one producer and one consumer transition."""
    return all(
        len(net.producers(place)) == 1 and len(net.consumers(place)) == 1
        for place in net.places
    )


def is_free_choice(net: PetriNet) -> bool:
    """If a place has several consumers, it is each consumer's sole input.

    Equivalent classical formulation: for any two transitions sharing an
    input place, both have exactly that one input place.
    """
    for place in net.places:
        consumers = net.consumers(place)
        if len(consumers) > 1 and any(len(t.preset) != 1 for t in consumers):
            return False
    return True


def is_extended_free_choice(net: PetriNet) -> bool:
    """Transitions sharing any input place share all input places."""
    ordered = [t for _, t in sorted(net.transitions.items())]
    for index, first in enumerate(ordered):
        for second in ordered[index + 1 :]:
            if first.preset & second.preset and first.preset != second.preset:
                return False
    return True


def is_asymmetric_choice(net: PetriNet) -> bool:
    """Presets of conflicting transitions are ordered by inclusion."""
    ordered = [t for _, t in sorted(net.transitions.items())]
    for index, first in enumerate(ordered):
        for second in ordered[index + 1 :]:
            if first.preset & second.preset:
                if not (
                    first.preset <= second.preset or second.preset <= first.preset
                ):
                    return False
    return True


def classify(net: PetriNet) -> NetClass:
    """Compute all class-membership flags of a net."""
    return NetClass(
        state_machine=is_state_machine(net),
        marked_graph=is_marked_graph(net),
        free_choice=is_free_choice(net),
        extended_free_choice=is_extended_free_choice(net),
        asymmetric_choice=is_asymmetric_choice(net),
    )


# -- polynomial marked-graph checks (basis of Theorem 5.7) -----------------


def marked_graph_cycles(net: PetriNet) -> list[list[str]]:
    """Enumerate the simple place-cycles of a marked graph.

    In a marked graph every place has a unique producer and consumer, so
    the place-to-place successor relation induced by transitions forms an
    ordinary digraph whose simple cycles characterise liveness/safeness.
    Only usable on marked graphs (``ValueError`` otherwise).  Cycle counts
    can be exponential in pathological nets; the nets the paper works
    with are small.
    """
    if not is_marked_graph(net):
        raise ValueError("cycle analysis requires a marked graph")
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(net.places)
    for transition in net.transitions.values():
        for source in transition.preset:
            for target in transition.postset:
                graph.add_edge(source, target)
    return [list(cycle) for cycle in nx.simple_cycles(graph)]


def marked_graph_is_live(net: PetriNet) -> bool:
    """Polynomial liveness for marked graphs: every cycle carries a token.

    Commoner/Genrich: a marked graph is live iff every simple cycle of
    places contains at least one initially marked place.  Implemented
    without cycle enumeration: delete all marked places and check the
    remaining place graph is acyclic.
    """
    if not is_marked_graph(net):
        raise ValueError("marked_graph_is_live requires a marked graph")
    marked = net.initial.marked_places()
    unmarked = [p for p in net.places if p not in marked]
    successors: dict[str, set[str]] = {p: set() for p in unmarked}
    for transition in net.transitions.values():
        for source in transition.preset:
            if source in marked:
                continue
            for target in transition.postset:
                if target not in marked:
                    successors[source].add(target)
    return _is_acyclic(unmarked, successors)


def marked_graph_is_live_safe(net: PetriNet) -> bool:
    """Polynomial live-safeness for strongly connected marked graphs.

    A live marked graph is safe iff every place lies on a simple cycle
    whose total token count is exactly one.  Checked via shortest paths
    in a token-count-weighted place graph: for place ``p`` with
    ``M0(p)=k``, the cheapest cycle through ``p`` must cost ``k`` plus
    the path cost; safeness of ``p`` requires a cycle of total weight 1
    through it (weight of entering a place = its token count).
    """
    if not marked_graph_is_live(net):
        return False
    if any(count > 1 for count in net.initial.values()):
        return False
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(net.places)
    for transition in net.transitions.values():
        for source in transition.preset:
            for target in transition.postset:
                graph.add_edge(source, target, weight=net.initial[target])
    for place in net.places:
        # Cheapest cycle through ``place``: tokens on the cycle must be 1.
        best = None
        try:
            lengths = nx.single_source_dijkstra_path_length(graph, place)
        except nx.NetworkXError:
            return False
        for predecessor in graph.predecessors(place):
            if predecessor == place:
                cycle_cost = net.initial[place]
            elif predecessor in lengths:
                cycle_cost = lengths[predecessor] + net.initial[place]
            else:
                continue
            best = cycle_cost if best is None else min(best, cycle_cost)
        if best is None or best != 1:
            return False
    return True


def _is_acyclic(nodes: list[str], successors: dict[str, set[str]]) -> bool:
    indegree = {node: 0 for node in nodes}
    for outs in successors.values():
        for target in outs:
            indegree[target] += 1
    queue = deque(node for node in nodes if indegree[node] == 0)
    visited = 0
    while queue:
        node = queue.popleft()
        visited += 1
        for target in successors[node]:
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    return visited == len(nodes)
