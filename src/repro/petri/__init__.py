"""General labeled Petri nets: structure, dynamics and analysis.

This package is the substrate of the reproduction: the paper's algebra
(:mod:`repro.algebra`), the STG interpretation (:mod:`repro.stg`) and the
CIP model (:mod:`repro.core`) are all built on the net structures defined
here.

The central classes are :class:`~repro.petri.net.PetriNet` (Definition 2.1
of the paper), :class:`~repro.petri.marking.Marking` (Definition 2.2) and
:class:`~repro.petri.reachability.ReachabilityGraph`.
"""

from repro.petri.compiled import (
    BACKENDS,
    CompiledNet,
    CompiledSpace,
    resolve_backend,
)
from repro.petri.independence import IndependenceRelation, StubbornSelector
from repro.petri.marking import Marking, MarkingInterner
from repro.petri.net import PetriNet, Transition
from repro.petri.product import (
    ENGINES,
    ExplorationStats,
    LanguageComparison,
    LazyStateSpace,
    SynchronousProduct,
    compare_languages,
    deterministic_bisimulation,
    resolve_engine,
)
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError
from repro.petri.simulation import (
    SimulationError,
    TokenGame,
    WalkResult,
    estimate_action_frequencies,
    random_walk,
)
from repro.petri.traces import (
    bounded_language,
    hide_language,
    language_of_net,
    parallel_compose_languages,
    parallel_compose_traces,
    project_trace,
    project_language,
    rename_language,
)

__all__ = [
    "BACKENDS",
    "CompiledNet",
    "CompiledSpace",
    "Marking",
    "MarkingInterner",
    "PetriNet",
    "Transition",
    "ReachabilityGraph",
    "ENGINES",
    "ExplorationStats",
    "IndependenceRelation",
    "StubbornSelector",
    "LanguageComparison",
    "LazyStateSpace",
    "SynchronousProduct",
    "compare_languages",
    "deterministic_bisimulation",
    "resolve_backend",
    "resolve_engine",
    "SimulationError",
    "TokenGame",
    "UnboundedNetError",
    "WalkResult",
    "estimate_action_frequencies",
    "random_walk",
    "bounded_language",
    "hide_language",
    "language_of_net",
    "parallel_compose_languages",
    "parallel_compose_traces",
    "project_trace",
    "project_language",
    "rename_language",
]
