"""Behavioural and structural property checks for Petri nets.

Wraps :class:`~repro.petri.reachability.ReachabilityGraph` exploration in
the property vocabulary the paper uses: bounded, safe, live,
strongly-connected, deadlock-free (Section 2.1), plus dead-transition
detection used after parallel composition (Section 5.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.petri.net import PetriNet, Transition
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError


@dataclass(frozen=True)
class NetProperties:
    """Summary of the behavioural properties of a bounded net."""

    bounded: bool
    bound: int
    safe: bool
    live: bool
    deadlock_free: bool
    reversible: bool
    states: int
    dead_transition_ids: tuple[int, ...]
    #: Provenance only: ``True`` when this summary was served from the
    #: verdict memo (:mod:`repro.cache`) rather than recomputed.
    #: Excluded from equality and repr so cached and cold results stay
    #: interchangeable values.
    cached: bool = field(default=False, compare=False, repr=False)

    def __str__(self) -> str:
        flags = [
            f"bound={self.bound}" if self.bounded else "UNBOUNDED",
            "safe" if self.safe else "unsafe",
            "live" if self.live else "non-live",
            "deadlock-free" if self.deadlock_free else "DEADLOCKS",
            "reversible" if self.reversible else "irreversible",
            f"states={self.states}",
        ]
        if self.dead_transition_ids:
            flags.append(f"dead={list(self.dead_transition_ids)}")
        return ", ".join(flags)


def analyze(
    net: PetriNet,
    max_states: int = 1_000_000,
    backend: str | None = None,
    workers: int | None = None,
    memory_budget: int | None = None,
) -> NetProperties:
    """Compute the behavioural property summary of a bounded net.

    Raises :class:`UnboundedNetError` when the net is detected to be
    unbounded (use :mod:`repro.petri.coverability` to analyse those).

    ``backend`` selects the explorer's state representation (packed
    ``"compiled"`` vectors by default, ``"dict"`` markings otherwise);
    the computed properties are identical either way.  ``workers`` > 1
    (or a ``memory_budget``) builds the graph with the sharded parallel
    explorer of :mod:`repro.petri.parallel` — again with identical
    results, minus covering-based unboundedness detection (the budget
    abort still applies).

    When an artifact store is active (:mod:`repro.cache`) and the run
    is serial, the summary is memoized by net content hash under the
    budget-monotonicity rule: a summary computed at ``S <= B`` states
    is served for any budget ``>= S``, a proven-unbounded outcome for
    any budget ``>=`` the proving one, and a budget abort only at
    exactly the recorded budget.  Parallel runs bypass the memo (their
    abort behaviour legitimately differs: no covering detection).
    """
    parallel = (workers is not None and workers > 1) or memory_budget is not None
    cache_key: str | None = None
    if not parallel:
        from repro.cache import verdicts

        if verdicts.active_store() is not None and verdicts.hashable(net):
            cache_key = verdicts.semantic_key(
                "analyze", verdicts.net_content_hash(net)
            )
            entry = verdicts.memo_lookup(
                verdicts.KIND, cache_key, max_states=max_states
            )
            if entry is not None:
                restored = _restore_analyze(entry, max_states)
                if restored is not None:
                    return restored
    if parallel:
        from repro.petri.parallel import parallel_reachability_graph

        graph = parallel_reachability_graph(
            net,
            workers=workers,
            max_states=max_states,
            memory_budget=memory_budget,
            backend=backend,
        )
    else:
        try:
            graph = ReachabilityGraph(
                net, max_states=max_states, backend=backend
            )
        except UnboundedNetError as error:
            if cache_key is not None:
                from repro.cache import verdicts

                proven = error.bound is None
                verdicts.memo_store(
                    verdicts.KIND,
                    cache_key,
                    {
                        "kind": "unbounded" if proven else "budget",
                        "message": str(error),
                        "witness": verdicts.marking_items(error.witness),
                        "frontier": verdicts.marking_items(error.frontier),
                    },
                    conclusive=proven,
                    floor=max_states,
                    proven_at=max_states,
                    provenance={"engine": "eager", "workers": 1},
                )
            raise
    properties = NetProperties(
        bounded=True,
        bound=graph.bound(),
        safe=graph.is_safe(),
        live=graph.is_live(),
        deadlock_free=graph.is_deadlock_free(),
        reversible=graph.is_reversible(),
        states=graph.num_states(),
        dead_transition_ids=tuple(t.tid for t in graph.dead_transitions()),
    )
    if cache_key is not None:
        from repro.cache import verdicts

        verdicts.memo_store(
            verdicts.KIND,
            cache_key,
            {
                "kind": "properties",
                "bound": properties.bound,
                "safe": properties.safe,
                "live": properties.live,
                "deadlock_free": properties.deadlock_free,
                "reversible": properties.reversible,
                "states": properties.states,
                "dead_transition_ids": list(properties.dead_transition_ids),
            },
            conclusive=True,
            floor=properties.states,
            proven_at=max_states,
            provenance={"engine": "eager", "workers": 1},
        )
    return properties


def _restore_analyze(entry: dict, max_states: int) -> NetProperties | None:
    """Rebuild the :func:`analyze` outcome from a memo entry.

    A ``properties`` entry becomes a :class:`NetProperties` with
    ``cached=True``; an ``unbounded``/``budget`` entry re-raises the
    original :class:`UnboundedNetError` (witness markings restored).
    Malformed entries return ``None`` (the caller recomputes).
    """
    from repro.cache import verdicts

    result = entry["result"]
    kind = result.get("kind")
    try:
        if kind == "properties":
            return NetProperties(
                bounded=True,
                bound=int(result["bound"]),
                safe=bool(result["safe"]),
                live=bool(result["live"]),
                deadlock_free=bool(result["deadlock_free"]),
                reversible=bool(result["reversible"]),
                states=int(result["states"]),
                dead_transition_ids=tuple(result["dead_transition_ids"]),
                cached=True,
            )
        if kind in ("unbounded", "budget"):
            raise UnboundedNetError(
                str(result["message"]),
                witness=verdicts.marking_from(result.get("witness")),
                bound=None if kind == "unbounded" else max_states,
                frontier=verdicts.marking_from(result.get("frontier")),
            )
    except (KeyError, TypeError, ValueError):
        return None
    return None


def is_bounded(net: PetriNet, max_states: int = 1_000_000) -> bool:
    """``True`` iff the net has a finite state space (Section 2.1)."""
    try:
        ReachabilityGraph(net, max_states=max_states)
    except UnboundedNetError:
        return False
    return True


def is_safe(net: PetriNet, max_states: int = 1_000_000) -> bool:
    """``True`` iff every reachable marking is 1-bounded."""
    return ReachabilityGraph(net, max_states=max_states).is_safe()


def is_live(net: PetriNet, max_states: int = 1_000_000) -> bool:
    """``True`` iff every transition stays fireable from every reachable state."""
    return ReachabilityGraph(net, max_states=max_states).is_live()


def is_live_safe(net: PetriNet, max_states: int = 1_000_000) -> bool:
    """Conjunction of liveness and safety (the classical STG requirement)."""
    graph = ReachabilityGraph(net, max_states=max_states)
    return graph.is_safe() and graph.is_live()


def dead_transitions(net: PetriNet, max_states: int = 1_000_000) -> list[Transition]:
    """Transitions that never fire.

    Section 5.2 of the paper: after parallel composition, synchronization
    transitions may be dead and should be removed before synthesis.
    """
    return ReachabilityGraph(net, max_states=max_states).dead_transitions()


def is_structurally_strongly_connected(net: PetriNet) -> bool:
    """``True`` iff the bipartite place/transition graph of the net is
    strongly connected (the *structural* requirement of Definition 2.3).

    Nets with no transitions count as strongly connected only when they
    have at most one place.
    """
    nodes: list[object] = sorted(net.places) + sorted(net.transitions)
    if len(nodes) <= 1:
        return True
    successors: dict[object, set[object]] = {node: set() for node in nodes}
    for tid, transition in net.transitions.items():
        for place in transition.preset:
            successors[place].add(tid)
        for place in transition.postset:
            successors[tid].add(place)

    def reachable(start: object, edges: dict[object, set[object]]) -> set[object]:
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for target in edges[node]:
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    start = nodes[0]
    if reachable(start, successors) != set(nodes):
        return False
    reverse: dict[object, set[object]] = {node: set() for node in nodes}
    for source, targets in successors.items():
        for target in targets:
            reverse[target].add(source)
    return reachable(start, reverse) == set(nodes)


def isolated_places(net: PetriNet) -> set[str]:
    """Places adjacent to no transition."""
    used: set[str] = set()
    for transition in net.transitions.values():
        used |= transition.places()
    return net.places - used


def source_transitions(net: PetriNet) -> list[Transition]:
    """Transitions with empty preset (always enabled; net is unbounded)."""
    return [t for _, t in sorted(net.transitions.items()) if not t.preset]


def conflict_pairs(net: PetriNet) -> list[tuple[Transition, Transition]]:
    """Pairs of distinct transitions sharing an input place (structural conflict)."""
    pairs: list[tuple[Transition, Transition]] = []
    ordered = [t for _, t in sorted(net.transitions.items())]
    for index, first in enumerate(ordered):
        for second in ordered[index + 1 :]:
            if first.preset & second.preset:
                pairs.append((first, second))
    return pairs
