"""Markings of Petri nets (Definition 2.2 of the paper).

A marking maps places to natural numbers.  Markings are immutable and
hashable so they can serve directly as nodes of a reachability graph.
Only places with a non-zero token count are stored; every absent place
implicitly holds zero tokens.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

Place = str


class Marking(Mapping[Place, int]):
    """An immutable multiset of tokens over places.

    ``Marking({"p": 1, "q": 2})`` holds one token in ``p`` and two in
    ``q``; every other place holds zero.  Zero entries are normalised
    away so two markings are equal iff they assign the same count to
    every place.
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, counts: Mapping[Place, int] | Iterable[tuple[Place, int]] = ()):
        items = counts.items() if isinstance(counts, Mapping) else counts
        cleaned: dict[Place, int] = {}
        for place, count in items:
            if count < 0:
                raise ValueError(f"negative token count {count} for place {place!r}")
            if count:
                cleaned[place] = count
        self._counts = cleaned
        self._hash = hash(frozenset(cleaned.items()))

    @classmethod
    def from_places(cls, places: Iterable[Place]) -> "Marking":
        """Build a safe marking with one token in each given place."""
        marking: dict[Place, int] = {}
        for place in places:
            marking[place] = marking.get(place, 0) + 1
        return cls(marking)

    def __getitem__(self, place: Place) -> int:
        return self._counts.get(place, 0)

    def __iter__(self) -> Iterator[Place]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, place: object) -> bool:
        return place in self._counts

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._counts == other._counts
        if isinstance(other, Mapping):
            return self == Marking(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{n}" for p, n in sorted(self._counts.items()))
        return f"Marking({{{inner}}})"

    # -- marking algebra -------------------------------------------------

    def marked_places(self) -> frozenset[Place]:
        """The set of places holding at least one token."""
        return frozenset(self._counts)

    def total(self) -> int:
        """Total number of tokens in the marking."""
        return sum(self._counts.values())

    def covers(self, other: "Marking") -> bool:
        """``True`` iff this marking has at least ``other``'s tokens everywhere."""
        return all(self[place] >= count for place, count in other.items())

    def is_safe(self) -> bool:
        """``True`` iff no place holds more than one token."""
        return all(count <= 1 for count in self._counts.values())

    @classmethod
    def _fresh(cls, cleaned: dict[Place, int]) -> "Marking":
        """Wrap an already-normalised count dict without re-validating.

        Internal fast path for the exploration engines; ``cleaned`` must
        contain no zero or negative entries and must not be mutated by
        the caller afterwards.
        """
        marking = object.__new__(cls)
        marking._counts = cleaned
        marking._hash = hash(frozenset(cleaned.items()))
        return marking

    def fire(self, removes: Iterable[Place], adds: Iterable[Place]) -> "Marking":
        """One-pass successor construction: remove a token from each
        place in ``removes``, then add one to each place in ``adds``.

        Equivalent to ``self.remove(removes).add(adds)`` but builds a
        single intermediate dict — the hot path of state-space
        exploration fires millions of transitions.
        """
        counts = dict(self._counts)
        for place in removes:
            current = counts.get(place, 0)
            if current == 0:
                raise ValueError(f"cannot remove token from empty place {place!r}")
            if current == 1:
                del counts[place]
            else:
                counts[place] = current - 1
        for place in adds:
            counts[place] = counts.get(place, 0) + 1
        return Marking._fresh(counts)

    def add(self, places: Iterable[Place]) -> "Marking":
        """Return a new marking with one extra token in each given place."""
        counts = dict(self._counts)
        for place in places:
            counts[place] = counts.get(place, 0) + 1
        return Marking(counts)

    def remove(self, places: Iterable[Place]) -> "Marking":
        """Return a new marking with one token removed from each given place.

        Raises ``ValueError`` if any place has no token to remove.
        """
        counts = dict(self._counts)
        for place in places:
            current = counts.get(place, 0)
            if current == 0:
                raise ValueError(f"cannot remove token from empty place {place!r}")
            counts[place] = current - 1
        return Marking(counts)

    def restrict(self, places: Iterable[Place]) -> "Marking":
        """Return the marking restricted to the given set of places."""
        keep = set(places)
        return Marking({p: n for p, n in self._counts.items() if p in keep})

    def rename(self, mapping: Mapping[Place, Place]) -> "Marking":
        """Return the marking with places renamed through ``mapping``.

        Places not in ``mapping`` keep their name.  Token counts of places
        that map to the same target are summed.
        """
        counts: dict[Place, int] = {}
        for place, count in self._counts.items():
            target = mapping.get(place, place)
            counts[target] = counts.get(target, 0) + count
        return Marking(counts)


class MarkingInterner:
    """Hash-consing table for markings.

    State-space exploration discovers the same marking along many paths;
    interning keeps a single canonical object per distinct marking so
    visited-set membership and successor caching work on identity-stable
    keys (and duplicate markings can be garbage collected immediately).
    """

    __slots__ = ("_table",)

    def __init__(self):
        self._table: dict[Marking, Marking] = {}

    def intern(self, marking: Marking) -> Marking:
        """The canonical instance equal to ``marking`` (inserting it if new)."""
        return self._table.setdefault(marking, marking)

    def get(self, marking: Marking) -> Marking | None:
        """The canonical instance, or ``None`` if never seen."""
        return self._table.get(marking)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, marking: object) -> bool:
        return marking in self._table

    def __iter__(self) -> Iterator[Marking]:
        return iter(self._table)
