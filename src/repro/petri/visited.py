"""Spill-to-disk visited sets for state-space exploration.

An explicit-state exploration is memory-bound long before it is
CPU-bound: the visited set must hold every reachable state for the
whole run, while the frontier stays comparatively small.  The packed
states of :mod:`repro.petri.compiled` (``bytes`` vectors, or fixed
tuples of counts) make membership testing cheap — but a 10^7-state
space at tens of bytes per state still wants gigabytes of RAM for the
set alone.

:class:`VisitedStore` bounds that: it behaves like a ``set`` of
``bytes`` keys, keeps everything in an ordinary in-memory set up to a
configurable byte budget, and past the budget *spills* to an SQLite
table on disk (a B-tree keyed by the state bytes), after which new
inserts stream through a small in-memory write buffer that is flushed
in batched transactions.  Membership stays exact at every moment —
the store never drops or double-counts a key, spilled or not.

Design notes:

* **Keys are opaque bytes.**  Callers pack their states (the compiled
  ``bytes`` codec is already a key; wide tuple states are packed with
  :func:`pack_wide_key`).  The store never interprets them.
* **SQLite over a hand-rolled mmap table.**  The stdlib ``sqlite3``
  module gives a crash-safe, reopenable, zero-dependency B-tree with
  batched ``INSERT``; an open-addressing mmap table would save a few
  microseconds per probe but needs its own resize/recovery story.
  The store's API hides the engine, so swapping it later is local.
* **Durability is opt-in.**  With an explicit ``path`` the on-disk
  table survives :meth:`close` and a later store can reopen it (used
  by restartable sweeps and the reopen-consistency tests);  without
  one, a temporary file is created lazily on first spill and deleted
  on close.
"""

from __future__ import annotations

import os
import sqlite3
import struct
import tempfile
from collections.abc import Iterable

#: Default in-memory budget (bytes) before spilling: generous enough
#: that ordinary verification runs never touch the disk path.
DEFAULT_MEMORY_BUDGET = 256 * 1024 * 1024

#: Estimated per-key bookkeeping overhead of a CPython set entry
#: (hash slot + object header), added to ``len(key)`` when accounting
#: against the budget.  An estimate is fine: the budget bounds order of
#: magnitude, not exact bytes.
_KEY_OVERHEAD = 64

#: Inserts buffered in memory after a spill before a batched
#: transaction writes them out.
_WRITE_BATCH = 4096


def pack_wide_key(state: "tuple[int, ...]") -> bytes:
    """A canonical bytes key for a wide (tuple) packed state.

    Little-endian signed 64-bit per place: injective, order-preserving
    per component, and cheap (one ``struct.pack`` call).
    """
    return struct.pack(f"<{len(state)}q", *state)


class VisitedStore:
    """An exact membership set of ``bytes`` keys with a byte budget.

    Parameters
    ----------
    memory_budget:
        Approximate bytes of key material (plus bookkeeping overhead)
        to hold in memory before spilling to disk.  ``0`` forces the
        very first insert to spill.  ``None`` uses
        :data:`DEFAULT_MEMORY_BUDGET`.
    path:
        Optional SQLite file backing the spilled table.  When given,
        :meth:`close` flushes *everything* (even keys that never
        exceeded the budget) into the file, so a new store opened on
        the same path sees every key ever added — the
        reopen-after-close contract.  When omitted, a temporary file is
        created on first spill and removed on close.
    """

    __slots__ = (
        "memory_budget",
        "path",
        "_own_tempfile",
        "_memory",
        "_memory_bytes",
        "_pending",
        "_connection",
        "_count",
        "spill_count",
        "spilled_keys",
    )

    def __init__(
        self,
        memory_budget: int | None = None,
        path: str | os.PathLike | None = None,
    ):
        if memory_budget is not None and memory_budget < 0:
            raise ValueError(
                f"memory budget must be >= 0, got {memory_budget}"
            )
        self.memory_budget = (
            DEFAULT_MEMORY_BUDGET if memory_budget is None else memory_budget
        )
        self.path = os.fspath(path) if path is not None else None
        self._own_tempfile = False
        self._memory: set[bytes] = set()
        self._memory_bytes = 0
        #: Post-spill write buffer: keys inserted but not yet committed.
        self._pending: set[bytes] = set()
        self._connection: sqlite3.Connection | None = None
        self._count = 0
        #: Number of spill events (batched transactions written).
        self.spill_count = 0
        #: Keys that have been moved to (or inserted straight into) disk.
        self.spilled_keys = 0
        if self.path is not None and os.path.exists(self.path):
            self._open_table()
            self._count = self._connection.execute(
                "SELECT COUNT(*) FROM visited"
            ).fetchone()[0]

    # -- membership --------------------------------------------------------

    def add(self, key: bytes) -> bool:
        """Insert ``key``; returns ``True`` iff it was not present."""
        if key in self._memory or key in self._pending:
            return False
        if self._connection is not None:
            if self._probe_disk(key):
                return False
            self._pending.add(key)
            self._count += 1
            if len(self._pending) >= _WRITE_BATCH:
                self._flush_pending()
            return True
        self._memory.add(key)
        self._memory_bytes += len(key) + _KEY_OVERHEAD
        self._count += 1
        if self._memory_bytes > self.memory_budget:
            self._spill_memory()
        return True

    def __contains__(self, key: bytes) -> bool:
        if key in self._memory or key in self._pending:
            return True
        if self._connection is not None:
            return self._probe_disk(key)
        return False

    def __len__(self) -> int:
        return self._count

    def update(self, keys: Iterable[bytes]) -> int:
        """Bulk :meth:`add`; returns how many keys were new."""
        added = 0
        for key in keys:
            if self.add(key):
                added += 1
        return added

    # -- introspection -----------------------------------------------------

    @property
    def spilled(self) -> bool:
        """``True`` once the store has written anything to disk."""
        return self._connection is not None

    @property
    def memory_keys(self) -> int:
        """Keys currently held in memory (set + write buffer)."""
        return len(self._memory) + len(self._pending)

    @property
    def memory_bytes(self) -> int:
        """Approximate bytes of in-memory key material."""
        return self._memory_bytes + sum(
            len(key) + _KEY_OVERHEAD for key in self._pending
        )

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Commit the post-spill write buffer (no-op before any spill)."""
        if self._connection is not None and self._pending:
            self._flush_pending()

    def close(self) -> None:
        """Release resources.

        With an explicit ``path`` every key (in-memory ones included)
        is persisted first, so reopening the path sees the full set;
        an implicit temporary spill file is deleted instead.
        """
        if self.path is not None and not self._own_tempfile:
            if self._memory or self._pending or self._connection is not None:
                if self._connection is None:
                    self._open_table()
                self._write_batch(self._memory | self._pending)
                self._memory.clear()
                self._pending.clear()
                self._memory_bytes = 0
        if self._connection is not None:
            self._connection.commit()
            self._connection.close()
            self._connection = None
            if self._own_tempfile:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
                self.path = None
                self._own_tempfile = False

    def __enter__(self) -> "VisitedStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _open_table(self) -> None:
        if self.path is None:
            handle, self.path = tempfile.mkstemp(
                prefix="cip-visited-", suffix=".sqlite"
            )
            os.close(handle)
            self._own_tempfile = True
        self._connection = sqlite3.connect(self.path)
        # The table is a pure membership set; every durability knob is
        # turned down — on a crash the whole exploration restarts anyway.
        self._connection.executescript(
            "PRAGMA journal_mode=OFF;"
            "PRAGMA synchronous=OFF;"
            "CREATE TABLE IF NOT EXISTS visited"
            " (key BLOB PRIMARY KEY) WITHOUT ROWID;"
        )

    def _probe_disk(self, key: bytes) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM visited WHERE key = ? LIMIT 1", (key,)
        ).fetchone()
        return row is not None

    def _write_batch(self, keys: Iterable[bytes]) -> None:
        self._connection.executemany(
            "INSERT OR IGNORE INTO visited(key) VALUES (?)",
            ((key,) for key in keys),
        )
        self._connection.commit()
        self.spill_count += 1

    def _spill_memory(self) -> None:
        if self._connection is None:
            self._open_table()
        self.spilled_keys += len(self._memory)
        self._write_batch(self._memory)
        self._memory.clear()
        self._memory_bytes = 0

    def _flush_pending(self) -> None:
        self.spilled_keys += len(self._pending)
        self._write_batch(self._pending)
        self._pending.clear()
