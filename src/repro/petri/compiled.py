"""Compiled integer-indexed net core: packed markings, precomputed firing.

Every exploration engine in this package ultimately asks the same three
questions millions of times: *which transitions are enabled here*,
*what is the successor marking*, and *have we seen it before*.  Answering
them over string-keyed :class:`~repro.petri.marking.Marking` dicts means
re-hashing a frozenset of ``(place, count)`` pairs per state and chasing
string keys per firing.  Mature net tools (cf. Khomenko et al.'s safe-net
translation machinery, PAPERS.md) instead lower the net once to a dense
integer form and explore in that domain.  This module is that lowering:

* :func:`compile_net` / :class:`CompiledNet` — places get dense indices
  ``0..P-1``, transitions dense indices ``0..T-1`` (in tid order, so the
  compiled exploration order matches the dict engines exactly).  Each
  transition carries ``(pre, consume, produce)`` index tuples and each
  place its consumer adjacency, both computed once at compile time.

* Packed states — a marking is a token-count vector: ``bytes`` (one
  byte per place, hash cached by CPython) when a static argument bounds
  every reachable count by 255, ``tuple[int, ...]`` otherwise.  Hashing
  is O(1)-amortised and equality is a memcmp, no per-state frozensets.

* Deficit counters — per state, ``deficits[t]`` is the number of empty
  preset places of transition ``t`` (enabled iff 0).  A firing updates
  only the consumers of places that became empty or became marked, so
  enabledness maintenance is allocation-free and proportional to the
  *change*, not to the net.

* :class:`CompiledSpace` — the packed demand-driven core behind
  :class:`~repro.petri.product.LazyStateSpace` (``backend="compiled"``),
  mirroring the dict engine's discovery order, budget/unboundedness
  error behaviour and stubborn-set reduction decisions exactly; states
  are decoded back to :class:`Marking` only at API boundaries.

The codec choice is sound, never heuristic: ``bytes`` is used when the
net is token-conservative (no firing increases the total count) with an
initial total of at most 255, or when a weighted place invariant found
by linear programming bounds the weighted total — and hence every place
count — by 255 (fork/join nets from the rendez-vous composition are not
conservative but almost always admit such a weighting).  Anything else
takes the ``tuple`` codec, which has no count limit.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from typing import Union

from repro.obs import metrics as obs
from repro.petri.dfs import StackProvisoDfs
from repro.petri.marking import Marking, Place
from repro.petri.net import PetriNet
from repro.petri.reachability import UnboundedNetError

#: A packed marking: a token-count vector indexed by dense place index.
PackedState = Union[bytes, "tuple[int, ...]"]

#: The recognised state backends; verification entry points accept a
#: ``backend=`` argument drawn from this set.  ``dict`` is the
#: string-keyed :class:`Marking` representation (the reference
#: implementation and A/B baseline), ``compiled`` the packed
#: integer-indexed representation of this module.
BACKENDS = ("dict", "compiled")

#: Backend used by the engines when none is requested.
DEFAULT_BACKEND = "compiled"

#: Net sizes for which the weighted-invariant LP is attempted when the
#: cheap conservative test fails.  Below the lower bound the tuple codec
#: costs nothing measurable (and property-based tests compile thousands
#: of tiny nets); above the upper bound the LP itself would dominate.
_LP_MIN_PLACES = 16
_LP_MAX_PLACES = 4096

#: Largest token count (and therefore largest provable bound) the bytes
#: codec can represent.
_BYTES_MAX = 255


def resolve_backend(backend: str | None) -> str:
    """Validate a backend name, mapping ``None`` to the default."""
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


#: Denominator grid the LP weights are snapped to before the exact
#: integer re-verification; also recorded in serialized certificates.
_WEIGHT_SCALE = 64


def _weighted_token_bound(
    net: PetriNet, place_order: tuple[Place, ...]
) -> tuple[int, tuple[int, ...]] | None:
    """A sound bound on every reachable place count via a weighted place
    invariant, or ``None`` when no certificate is found.  Returns the
    bound together with the integer weight vector (scaled by
    :data:`_WEIGHT_SCALE`) that certifies it, so the certificate can be
    persisted and re-verified without re-running the LP
    (:mod:`repro.cache.compilecache`).

    Looks for rational place weights ``w >= 1`` with ``w . postset <=
    w . preset`` for every transition: then ``w . M`` never increases,
    so every count is bounded by ``w . M0``.  The LP solution is snapped
    to the 1/64 grid and re-verified in exact integer arithmetic, so
    floating-point slack in the solver can never produce an unsound
    certificate — failure of the exact check just falls back to the
    unbounded-count tuple codec.
    """
    if not (_LP_MIN_PLACES <= len(place_order) <= _LP_MAX_PLACES):
        return None
    transitions = net.sorted_transitions()
    if not transitions or len(transitions) > 2 * _LP_MAX_PLACES:
        return None
    try:
        import numpy as np
        from scipy.optimize import linprog
    except Exception:  # pragma: no cover - scipy is a hard dependency
        return None
    index = {place: i for i, place in enumerate(place_order)}
    rows = np.zeros((len(transitions), len(place_order)))
    for row, transition in enumerate(transitions):
        for place in transition.produce:
            rows[row, index[place]] += 1.0
        for place in transition.consume:
            rows[row, index[place]] -= 1.0
    objective = np.zeros(len(place_order))
    for place, count in net.initial.items():
        objective[index[place]] = float(count)
    result = linprog(
        c=objective,
        A_ub=rows,
        b_ub=np.zeros(len(transitions)),
        bounds=[(1.0, float(_BYTES_MAX))] * len(place_order),
        method="highs",
    )
    if not result.success:
        return None
    scale = _WEIGHT_SCALE
    weights = np.maximum(np.round(result.x * scale), scale).astype(np.int64)
    deltas = np.rint(rows).astype(np.int64)
    if (deltas @ weights > 0).any():
        return None
    weighted_total = 0
    for place, count in net.initial.items():
        weighted_total += int(weights[index[place]]) * count
    bound = math.ceil(weighted_total / scale)
    return bound, tuple(int(w) for w in weights)


class CompiledNet:
    """The integer-indexed form of one :class:`PetriNet`.

    Immutable once built; obtained via :meth:`PetriNet.compiled` (which
    caches it and invalidates the cache on net mutation).  All arrays
    are indexed by dense place index ``0..P-1`` (places in sorted name
    order) or dense transition index ``0..T-1`` (transitions in tid
    order — which is what makes every compiled exploration visit states
    in exactly the dict engines' order).
    """

    __slots__ = (
        "net",
        "place_names",
        "place_index",
        "tids",
        "tid_index",
        "transitions",
        "actions",
        "pre",
        "consume",
        "produce",
        "consumers",
        "codec",
        "token_bound",
        "certificate",
        "bounded_certified",
        "num_places",
        "num_transitions",
        "initial_state",
        "initial_deficits",
        "initial_enabled",
    )

    def __init__(
        self,
        net: PetriNet,
        place_names: tuple[Place, ...],
        codec: str,
        token_bound: int | None,
        certificate: dict | None = None,
    ):
        self.net = net
        self.place_names = place_names
        self.place_index = {place: i for i, place in enumerate(place_names)}
        self.codec = codec
        self.token_bound = token_bound
        #: How ``token_bound`` was proven — ``{"kind": "conservative"}``
        #: (no firing increases the total count) or ``{"kind":
        #: "weights", "weights": [...], "scale": 64}`` (an exact-verified
        #: LP place invariant); ``None`` when no bound was found.  The
        #: compile cache persists this and re-verifies it in exact
        #: integer arithmetic on load (:mod:`repro.cache.compilecache`).
        self.certificate = certificate
        #: ``token_bound`` comes from a sound non-increasing weighted
        #: total (conservation or an exact-verified LP invariant).  Under
        #: such a certificate no reachable marking can strictly cover an
        #: ancestor (a strict cover has a strictly larger weighted
        #: total), so the Karp-Miller covering walk is provably a no-op
        #: and the explorers skip it.
        self.bounded_certified = token_bound is not None
        self.num_places = len(place_names)
        transitions = net.sorted_transitions()
        self.transitions = transitions
        self.num_transitions = len(transitions)
        self.tids = tuple(t.tid for t in transitions)
        self.tid_index = {tid: d for d, tid in enumerate(self.tids)}
        self.actions = tuple(t.action for t in transitions)
        index = self.place_index
        self.pre = tuple(
            tuple(sorted(index[p] for p in t.preset)) for t in transitions
        )
        self.consume = tuple(
            tuple(sorted(index[p] for p in t.consume)) for t in transitions
        )
        self.produce = tuple(
            tuple(sorted(index[p] for p in t.produce)) for t in transitions
        )
        consumers: list[list[int]] = [[] for _ in place_names]
        for dense, places in enumerate(self.pre):
            for i in places:
                consumers[i].append(dense)
        self.consumers = tuple(tuple(adj) for adj in consumers)
        self.initial_state = self.encode(net.initial)
        self.initial_deficits, self.initial_enabled = self.analyze_state(
            self.initial_state
        )

    # -- state codec -------------------------------------------------------

    def encode(self, marking: Marking | Mapping[Place, int]) -> PackedState:
        """Pack a marking into a token-count vector.

        Raises ``KeyError`` for places the net does not have and
        ``ValueError`` for counts the ``bytes`` codec cannot hold.
        """
        counts = [0] * self.num_places
        index = self.place_index
        for place, count in marking.items():
            counts[index[place]] = count
        if self.codec == "bytes":
            return bytes(counts)
        return tuple(counts)

    def decode(self, state: PackedState) -> Marking:
        """Unpack a token-count vector back into a :class:`Marking`."""
        names = self.place_names
        return Marking._fresh(
            {names[i]: count for i, count in enumerate(state) if count}
        )

    @staticmethod
    def covers(state: PackedState, other: PackedState) -> bool:
        """Strict covering on packed vectors (the Karp-Miller test):
        componentwise ``>=`` and not equal."""
        if state == other:
            return False
        for mine, theirs in zip(state, other):
            if mine < theirs:
                return False
        return True

    # -- enabledness -------------------------------------------------------

    def analyze_state(self, state: PackedState) -> tuple[bytes, tuple[int, ...]]:
        """Full scan of one state: ``(deficits, enabled)`` where
        ``deficits[t]`` counts the empty preset places of transition
        ``t`` and ``enabled`` lists the dense indices with deficit 0,
        ascending.  Used once per exploration (for the initial state);
        everything after is maintained incrementally by
        :meth:`successor`.
        """
        deficits = bytearray(self.num_transitions)
        enabled: list[int] = []
        for dense, places in enumerate(self.pre):
            deficit = 0
            for i in places:
                if not state[i]:
                    deficit += 1
            deficits[dense] = deficit
            if not deficit:
                enabled.append(dense)
        return bytes(deficits), tuple(enabled)

    def is_enabled(self, dense: int, state: PackedState) -> bool:
        """Direct enabledness of one transition in one packed state."""
        for i in self.pre[dense]:
            if not state[i]:
                return False
        return True

    # -- firing ------------------------------------------------------------

    def fire(self, state: PackedState, dense: int) -> PackedState:
        """The successor vector alone (no enabledness bookkeeping) — for
        probes like the ignoring-prevention proviso that discard the
        result.  The transition must be enabled in ``state``.
        """
        consume = self.consume[dense]
        produce = self.produce[dense]
        if not consume and not produce:
            return state
        if self.codec == "bytes":
            vec = bytearray(state)
            for i in consume:
                vec[i] -= 1
            for i in produce:
                vec[i] += 1
            return bytes(vec)
        vec = list(state)
        for i in consume:
            vec[i] -= 1
        for i in produce:
            vec[i] += 1
        return tuple(vec)

    def successor(
        self,
        state: PackedState,
        deficits: bytes,
        enabled: tuple[int, ...],
        dense: int,
    ) -> tuple[PackedState, bytes, tuple[int, ...], int]:
        """Fire ``dense`` (enabled in ``state``) and derive the child's
        deficit counters and enabled set incrementally.

        Returns ``(child, child_deficits, child_enabled, checked)``
        where ``checked`` counts the per-transition deficit updates
        performed — only the consumers of places that became empty or
        became marked are ever touched.
        """
        consume = self.consume[dense]
        produce = self.produce[dense]
        if not consume and not produce:
            return state, deficits, enabled, 0
        newly_empty: list[int] = []
        newly_marked: list[int] = []
        if self.codec == "bytes":
            vec = bytearray(state)
            for i in consume:
                count = vec[i] - 1
                vec[i] = count
                if not count:
                    newly_empty.append(i)
            for i in produce:
                count = vec[i] + 1
                vec[i] = count
                if count == 1:
                    newly_marked.append(i)
            child: PackedState = bytes(vec)
        else:
            wide = list(state)
            for i in consume:
                count = wide[i] - 1
                wide[i] = count
                if not count:
                    newly_empty.append(i)
            for i in produce:
                count = wide[i] + 1
                wide[i] = count
                if count == 1:
                    newly_marked.append(i)
            child = tuple(wide)
        if not newly_empty and not newly_marked:
            return child, deficits, enabled, 0
        consumers = self.consumers
        affected: set[int] = set()
        child_deficits = bytearray(deficits)
        for i in newly_empty:
            for t in consumers[i]:
                child_deficits[t] += 1
                affected.add(t)
        for i in newly_marked:
            for t in consumers[i]:
                child_deficits[t] -= 1
                affected.add(t)
        if not affected:
            return child, deficits, enabled, 0
        merged = [t for t in enabled if t not in affected]
        merged.extend(t for t in affected if not child_deficits[t])
        merged.sort()
        return child, bytes(child_deficits), tuple(merged), len(affected)

    def __repr__(self) -> str:
        return (
            f"CompiledNet({self.net.name!r}, |P|={self.num_places},"
            f" |T|={self.num_transitions}, codec={self.codec!r})"
        )


def compile_net(net: PetriNet) -> CompiledNet:
    """Lower a net to its integer-indexed form (see :class:`CompiledNet`).

    Emits ``compile.net`` span and ``compile.*`` gauges to the active
    obs recorders: compile wall time, chosen codec, the per-state encode
    width in bytes and the proven token bound (when any).
    """
    with obs.span("compile.net", net=net.name) as span:
        place_order = tuple(sorted(net.places))
        bound: int | None = None
        certificate: dict | None = None
        if all(
            len(t.produce) <= len(t.consume) for t in net.sorted_transitions()
        ):
            bound = net.initial.total()
            certificate = {"kind": "conservative"}
        else:
            invariant = _weighted_token_bound(net, place_order)
            if invariant is not None:
                bound, weights = invariant
                certificate = {
                    "kind": "weights",
                    "weights": list(weights),
                    "scale": _WEIGHT_SCALE,
                }
        max_preset = max(
            (len(t.preset) for t in net.transitions.values()), default=0
        )
        codec = (
            "bytes"
            if bound is not None and bound <= _BYTES_MAX and max_preset <= _BYTES_MAX
            else "wide"
        )
        compiled = CompiledNet(net, place_order, codec, bound, certificate)
        span.set(
            places=compiled.num_places,
            transitions=compiled.num_transitions,
            codec=codec,
            token_bound=bound if bound is not None else -1,
        )
    obs.count("compile.nets")
    width = (
        compiled.num_places
        if codec == "bytes"
        else 8 * compiled.num_places  # nominal: one machine word per place
    )
    obs.gauge("compile.encode_width_bytes", width)
    return compiled


class PackedMarkingView(Mapping[Place, int]):
    """Read-only place -> count view of one packed state.

    Just enough of the :class:`Marking` mapping surface for code written
    against markings — in particular the stubborn selector's scapegoat
    choice (``marking[place] > 0``) — to run unchanged on packed states.
    """

    __slots__ = ("_cnet", "_state")

    def __init__(self, cnet: CompiledNet, state: PackedState):
        self._cnet = cnet
        self._state = state

    def __getitem__(self, place: Place) -> int:
        index = self._cnet.place_index.get(place)
        return 0 if index is None else self._state[index]

    def __iter__(self):
        state = self._state
        return iter(
            [name for i, name in enumerate(self._cnet.place_names) if state[i]]
        )

    def __len__(self) -> int:
        return sum(1 for count in self._state if count)


class CompiledSpace:
    """Demand-driven exploration over packed states.

    The compiled counterpart of the dict paths of
    :class:`~repro.petri.product.LazyStateSpace` — that facade owns one
    of these when ``backend="compiled"`` and translates at its API
    boundary.  Discovery order, memoisation, interner-hit accounting,
    the ``max_states`` budget, the Karp-Miller covering walk (including
    error message text, with witnesses decoded) and the stubborn-set
    reduction decisions all mirror the dict engine exactly; parity is
    enforced by ``tests/petri/test_compiled.py``.
    """

    __slots__ = (
        "cnet",
        "max_states",
        "stats",
        "initial",
        "proviso",
        "_detect_unbounded",
        "_check_covering",
        "_selector",
        "_filter",
        "_parent",
        "_info",
        "_succ",
        "_dfs",
    )

    def __init__(
        self,
        cnet: CompiledNet,
        max_states: int,
        stats,
        detect_unbounded: bool = True,
        selector=None,
        transition_filter: Callable[[int, PackedState], bool] | None = None,
        proviso: str | None = None,
    ):
        self.cnet = cnet
        self.max_states = max_states
        self.stats = stats
        self.proviso = proviso
        self._detect_unbounded = detect_unbounded
        self._check_covering = detect_unbounded and not cnet.bounded_certified
        self._selector = selector
        self._filter = transition_filter
        self.initial = cnet.initial_state
        #: state -> (parent state, dense transition index) | None; doubles
        #: as the visited set (insertion order == discovery order).
        self._parent: dict[PackedState, tuple[PackedState, int] | None] = {
            self.initial: None
        }
        #: Per-state (deficits, enabled); dropped once a state is expanded
        #: — except under the stack proviso, whose DFS driver re-reads the
        #: enabled set of finished states on re-walks and wakes.
        self._info: dict[PackedState, tuple[bytes, tuple[int, ...]]] = {
            self.initial: (cnet.initial_deficits, cnet.initial_enabled)
        }
        self._succ: dict[PackedState, tuple[tuple[str, int, PackedState], ...]] = {}
        self._dfs: StackProvisoDfs | None = None
        if selector is not None and proviso == "stack":
            self._dfs = StackProvisoDfs(_PackedDfsAdapter(self), selector, stats)

    # -- expansion ---------------------------------------------------------

    def _discover(
        self,
        parent: PackedState,
        deficits: bytes,
        enabled: tuple[int, ...],
        dense: int,
    ) -> PackedState:
        cnet = self.cnet
        child, child_deficits, child_enabled, checked = cnet.successor(
            parent, deficits, enabled, dense
        )
        stats = self.stats
        stats.enabledness_checks += checked
        parents = self._parent
        if child in parents:
            stats.interner_hits += 1
            return child
        if len(parents) >= self.max_states:
            reduced = (
                " (partial-order reduction active: the bound counts"
                " states of the reduced space)"
                if self._selector is not None
                else ""
            )
            decoded = cnet.decode(child)
            raise UnboundedNetError(
                f"more than {self.max_states} reachable states in"
                f" {cnet.net.name!r}; net may be unbounded{reduced}",
                witness=decoded,
                bound=self.max_states,
                frontier=decoded,
            )
        parents[child] = (parent, dense)
        self._info[child] = (child_deficits, child_enabled)
        stats.states += 1
        if self._check_covering:
            covers = cnet.covers
            cursor: PackedState | None = parent
            while cursor is not None:
                if covers(child, cursor):
                    decoded = cnet.decode(child)
                    raise UnboundedNetError(
                        f"net {cnet.net.name!r} is unbounded:"
                        f" {decoded!r} strictly covers ancestor"
                        f" {cnet.decode(cursor)!r}",
                        witness=decoded,
                        frontier=decoded,
                    )
                link = parents[cursor]
                cursor = link[0] if link is not None else None
        return child

    def _all_targets_fresh(
        self, state: PackedState, dense_set: tuple[int, ...]
    ) -> bool:
        """Ignoring-prevention proviso on packed states (see the dict
        engine's docstring): accept a reduced expansion only if every
        reduced successor is new."""
        fire = self.cnet.fire
        parents = self._parent
        for dense in dense_set:
            if fire(state, dense) in parents:
                return False
        return True

    def successors(
        self, state: PackedState
    ) -> tuple[tuple[str, int, PackedState], ...]:
        """Outgoing edges as ``(action, tid, target)`` triples, computed
        on first request and memoised — the packed twin of the dict
        engine's expansion, including the stubborn-set reduction."""
        cached = self._succ.get(state)
        if cached is not None:
            return cached
        if self._dfs is not None:
            self.ensure_explored()
            result = self._dfs.successor_edges(state)
            self._succ[state] = result
            return result
        cnet = self.cnet
        deficits, enabled = self._info[state]
        expand = enabled
        selector = self._selector
        if selector is not None and len(enabled) > 1:
            tids = cnet.tids
            reduced = selector.reduced_enabled(
                PackedMarkingView(cnet, state),
                tuple(tids[dense] for dense in enabled),
            )
            if reduced is not None:
                tid_index = cnet.tid_index
                dense_set = tuple(tid_index[tid] for tid in reduced)
                if self._all_targets_fresh(state, dense_set):
                    expand = dense_set
                    self.stats.reduced_states += 1
        edges: list[tuple[str, int, PackedState]] = []
        actions = cnet.actions
        tids = cnet.tids
        fltr = self._filter
        for dense in expand:
            if fltr is not None and not fltr(dense, state):
                continue
            target = self._discover(state, deficits, enabled, dense)
            edges.append((actions[dense], tids[dense], target))
        result = tuple(edges)
        self._succ[state] = result
        self._info.pop(state, None)
        self.stats.edges += len(result)
        return result

    # -- traversal ---------------------------------------------------------

    def ensure_explored(self) -> None:
        """Force the stack-proviso DFS to completion (no-op when the
        exploration is not stack-driven)."""
        if self._dfs is not None:
            self._dfs.run_to_completion()

    def iter_dfs(self):
        """Packed states in depth-first discovery order: the streaming
        walk of the stack-proviso driver when one is active, otherwise a
        plain depth-first traversal over :meth:`successors`."""
        if self._dfs is not None:
            yield from self._dfs.iterate()
            return
        yield self.initial
        seen = {self.initial}
        stack = [iter(self.successors(self.initial))]
        while stack:
            for _, _, target in stack[-1]:
                if target not in seen:
                    seen.add(target)
                    yield target
                    stack.append(iter(self.successors(target)))
                    break
            else:
                stack.pop()

    # -- queries -----------------------------------------------------------

    def num_states(self) -> int:
        return len(self._parent)

    def discovered(self, state: PackedState) -> bool:
        return state in self._parent

    def trace_to(self, state: PackedState) -> tuple[tuple[int, str], ...]:
        """A firable ``(tid, action)`` path from the initial state to a
        discovered state, via the discovery-parent pointers."""
        cnet = self.cnet
        steps: list[tuple[int, str]] = []
        cursor = state
        while True:
            link = self._parent[cursor]
            if link is None:
                break
            parent, dense = link
            steps.append((cnet.tids[dense], cnet.actions[dense]))
            cursor = parent
        return tuple(reversed(steps))


class _PackedDfsAdapter:
    """Packed-backend plug for :class:`~repro.petri.dfs.StackProvisoDfs`.

    Transitions cross the boundary as tids (the driver, the stubborn
    selector and the sleep sets all work in tid space) and are mapped
    to dense indices here; dense order equals tid order by compilation,
    so the enabled tuples this hands out are tid-sorted exactly like the
    dict adapter's — the property that keeps the two backends' reduction
    decisions byte-identical.  ``probe`` fires without any accounting so
    proviso checks never perturb the interner-hit counters."""

    __slots__ = ("_core",)

    def __init__(self, core: CompiledSpace):
        self._core = core

    def root(self) -> PackedState:
        return self._core.initial

    def discovered(self):
        return iter(self._core._parent)

    def enabled(self, state: PackedState) -> tuple[int, ...]:
        tids = self._core.cnet.tids
        return tuple(tids[dense] for dense in self._core._info[state][1])

    def view(self, state: PackedState) -> PackedMarkingView:
        return PackedMarkingView(self._core.cnet, state)

    def probe(self, state: PackedState, tid: int) -> PackedState:
        cnet = self._core.cnet
        return cnet.fire(state, cnet.tid_index[tid])

    def discover(self, state: PackedState, tid: int) -> PackedState:
        core = self._core
        deficits, enabled = core._info[state]
        return core._discover(state, deficits, enabled, core.cnet.tid_index[tid])

    def action(self, tid: int) -> str:
        return self._core.cnet.actions[self._core.cnet.tid_index[tid]]
