"""On-the-fly product exploration for compositional verification.

The eager :class:`~repro.petri.reachability.ReachabilityGraph` always
materialises the *entire* state space before any question can be asked
of it — the exact blowup the paper's compositional discipline
(Theorems 4.5/4.7, Theorem 5.1) is meant to sidestep.  This module is
the demand-driven counterpart:

* :class:`LazyStateSpace` — a reachability graph whose successor
  relation is computed (and memoised) only when asked.  Markings are
  interned, enabled sets are maintained *incrementally*: after firing a
  transition, only the consumers of the places whose token count
  changed are re-checked (via :meth:`PetriNet.consumer_index`), instead
  of scanning the whole transition relation per state.  Every state
  keeps a parent pointer, so a firable counterexample trace from the
  initial marking can be reconstructed for free.

* :class:`SynchronousProduct` — the lazy synchronous product of two
  state spaces (rendez-vous on a synchronisation alphabet, free
  interleaving elsewhere): the state-space-level reading of
  Definition 4.7 used to cross-check Theorem 4.5.

* :func:`compare_languages` — on-the-fly determinised comparison of two
  nets' visible trace languages (equality or containment) with early
  termination on the first difference and a shortest distinguishing
  trace as counterexample.  Only the parts of either state space that
  the comparison actually reaches are ever constructed.

* :func:`deterministic_bisimulation` — an exact strong-bisimulation
  decision for deterministic systems by synchronous walk (with early
  exit), returning ``None`` when nondeterminism is encountered so the
  caller can fall back to the eager partition-refinement oracle.

A third engine, ``engine="por"``, layers stubborn-set partial-order
reduction (:mod:`repro.petri.independence`) on top of the lazy
exploration: at each marking only a sound subset of the enabled
transitions is expanded, preserving deadlock markings, marking
predicates over declared places, and the visible-action language
exactly — so every verification verdict matches the other two engines
while independent interleavings collapse.

The eager paths stay available everywhere behind ``engine="eager"`` and
serve as the test oracle for this module.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

from repro.obs import metrics as obs
from repro.petri.compiled import (
    BACKENDS,
    DEFAULT_BACKEND,
    CompiledSpace,
    resolve_backend,
)
from repro.petri.dfs import StackProvisoDfs
from repro.petri.independence import IndependenceRelation, StubbornSelector
from repro.petri.marking import Marking, MarkingInterner, Place
from repro.petri.net import EPSILON, PetriNet, Transition
from repro.petri.reachability import UnboundedNetError

#: The recognised exploration engines; verification entry points accept
#: an ``engine=`` argument drawn from this set.  ``por`` is the
#: on-the-fly engine with stubborn-set partial-order reduction layered
#: on top (see :mod:`repro.petri.independence`).
ENGINES = ("eager", "onthefly", "por")

#: Engines available only to entry points that explicitly opt in (see
#: :func:`resolve_engine`'s ``extra``).  ``symbolic`` is the
#: state-equation semi-decision engine (:mod:`repro.petri.symbolic`):
#: it answers without enumeration when conclusive and falls back to an
#: explicit engine otherwise, so only the verify layers that implement
#: that fallback accept it.
EXTRA_ENGINES = ("symbolic",)

#: Engine used by the verification layers when none is requested.
DEFAULT_ENGINE = "onthefly"

#: The recognised ignoring-prevention provisos for the reduced engine.
#: ``stack`` (the default) is the DFS-stack cycle condition with sleep
#: sets (:mod:`repro.petri.dfs`); ``fresh`` is the original, strictly
#: more conservative all-targets-new condition, kept for A/B runs and
#: as the on-demand fallback (it needs no exploration-order control).
PROVISOS = ("fresh", "stack")

#: Proviso used when reduction is requested without naming one.
DEFAULT_PROVISO = "stack"


def resolve_engine(engine: str, extra: tuple[str, ...] = ()) -> str:
    """Validate an engine name (raises ``ValueError`` on unknown names).

    ``extra`` names additional engines the calling entry point supports
    beyond the enumerating three — e.g. ``("symbolic",)`` for the
    verify layers that implement the explicit fallback the symbolic
    semi-decision engine requires."""
    if engine not in ENGINES and engine not in extra:
        accepted = ENGINES + tuple(e for e in extra if e not in ENGINES)
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {accepted}"
        )
    return engine


def resolve_proviso(proviso: str | None) -> str:
    """Validate a proviso name, mapping ``None`` to the default."""
    if proviso is None:
        return DEFAULT_PROVISO
    if proviso not in PROVISOS:
        raise ValueError(
            f"unknown proviso {proviso!r}; expected one of {PROVISOS}"
        )
    return proviso


@dataclass
class ExplorationStats:
    """Counters of work actually performed by a lazy exploration.

    ``reduced_states`` counts the states at which partial-order
    reduction actually expanded a proper subset of the enabled
    transitions (always ``0`` for the plain on-the-fly engine);
    ``sleep_skips`` the enabled transitions pruned by sleep sets and
    ``cycle_expansions`` the full expansions forced by the DFS-stack
    proviso (both ``0`` outside ``proviso="stack"``).
    ``interner_hits`` counts discoveries that landed on an
    already-interned marking (re-convergent paths); ``frontier_peak``
    is the high-water mark of the BFS queue in :meth:`iter_bfs` (the
    DFS stack depth under the stack proviso).
    """

    states: int = 0
    edges: int = 0
    enabledness_checks: int = 0
    reduced_states: int = 0
    interner_hits: int = 0
    frontier_peak: int = 0
    sleep_skips: int = 0
    cycle_expansions: int = 0

    def interner_hit_rate(self) -> float:
        """Fraction of interner lookups that found an existing marking.

        Per-space: every :meth:`LazyStateSpace._discover` call performs
        exactly one lookup, a miss creates a state, and the initial
        marking is interned without a lookup — so the lookup count is
        ``interner_hits + states - 1``.
        """
        lookups = self.interner_hits + max(self.states - 1, 0)
        return self.interner_hits / lookups if lookups else 0.0

    def __add__(self, other: "ExplorationStats") -> "ExplorationStats":
        return ExplorationStats(
            self.states + other.states,
            self.edges + other.edges,
            self.enabledness_checks + other.enabledness_checks,
            self.reduced_states + other.reduced_states,
            self.interner_hits + other.interner_hits,
            max(self.frontier_peak, other.frontier_peak),
            self.sleep_skips + other.sleep_skips,
            self.cycle_expansions + other.cycle_expansions,
        )


class LazyStateSpace:
    """Demand-driven reachability over one net.

    Nothing is explored at construction time beyond interning the
    initial marking; :meth:`successors` expands one state at a time and
    memoises the result.  Exhausting :meth:`iter_bfs` yields exactly the
    states (in exactly the discovery order) of the eager
    :class:`~repro.petri.reachability.ReachabilityGraph`, including the
    same :class:`UnboundedNetError` behaviour — which is what makes the
    eager graph a drop-in oracle for this class.

    Parameters mirror ``ReachabilityGraph``: ``max_states`` aborts with
    :class:`UnboundedNetError` (with ``bound`` and ``frontier`` set),
    ``transition_filter`` restricts which firings are followed, and
    ``detect_unbounded`` enables the Karp-Miller strict-covering
    heuristic along the discovery-parent chain.

    ``backend`` selects the state representation: ``"compiled"`` (the
    default) runs the exploration over the packed integer-indexed core
    of :mod:`repro.petri.compiled` — same discovery order, same
    reduction decisions, same errors — while this class keeps its
    Marking-domain API by translating at the boundary (packed states
    are decoded at most once each).  ``"dict"`` is the string-keyed
    reference path.  Callers that can work on token-count vectors
    directly should use :meth:`iter_raw`/:meth:`decode` to skip the
    translation entirely.

    Partial-order reduction (``engine="por"``) is switched on with
    ``reduction=True`` (or an explicit
    :class:`~repro.petri.independence.StubbornSelector`): at each
    marking only a stubborn subset of the enabled transitions is
    expanded.  ``visible_actions`` are the labels the caller observes
    (default: every non-epsilon action — sound for any language
    comparison whose silent set is at most ``{eps}``); transitions
    changing the token count of a place in ``visible_places`` are
    additionally kept visible, which makes any marking predicate over
    those places (e.g. the Proposition 5.5 obligation check) invariant
    under the reduction.  Two guarantees are exact, not approximate:
    the set of reachable *deadlock* markings, and the *visible-action
    trace language* (the ignoring-prevention proviso guarantees every
    cycle of the reduced graph contains a fully expanded state, so no
    enabled transition is postponed forever).

    ``proviso`` names how ignoring is prevented (see
    :mod:`repro.petri.dfs`): the default ``"stack"`` explores the
    reduced space depth-first, fully expanding a state only when one of
    its chosen successors closes a cycle onto the current search stack,
    with sleep sets pruning already-covered commutations on top.
    Because that argument is a property of the whole search, a
    ``"stack"``-reduced space is explored to completion on the first
    demand (``successors``/``iter_bfs`` force it); :meth:`iter_dfs` is
    the streaming traversal for early-exit consumers, and failure
    traces are firable but no longer shortest.  ``"fresh"`` is the
    original on-demand proviso — accept a reduced expansion only when
    every reduced successor is new — which keeps per-state laziness
    (and BFS-shortest traces) but re-expands every pure cycle.
    """

    def __init__(
        self,
        net: PetriNet,
        max_states: int = 1_000_000,
        transition_filter: Callable[[Transition, Marking], bool] | None = None,
        detect_unbounded: bool = True,
        reduction: "StubbornSelector | bool" = False,
        visible_actions: Iterable[str] | None = None,
        visible_places: Iterable[Place] = (),
        backend: str | None = None,
        proviso: str | None = None,
    ):
        self.net = net
        self.backend = resolve_backend(backend)
        self.max_states = max_states
        self.stats = ExplorationStats()
        self._filter = transition_filter
        self._detect_unbounded = detect_unbounded
        self._transitions = net.transitions
        self.visible_actions: frozenset[str] | None = None
        self._selector: StubbornSelector | None = None
        if proviso is not None and not reduction:
            raise ValueError(
                "proviso is a reduction knob; it requires reduction=True"
            )
        self.proviso: str | None = resolve_proviso(proviso) if reduction else None
        if reduction:
            if transition_filter is not None:
                raise ValueError(
                    "partial-order reduction cannot be combined with a"
                    " transition_filter (the independence relation is"
                    " computed on the unfiltered net)"
                )
            if isinstance(reduction, StubbornSelector):
                self._selector = reduction
            else:
                self.visible_actions = (
                    frozenset(visible_actions)
                    if visible_actions is not None
                    else frozenset(net.actions) - {EPSILON}
                )
                relation = IndependenceRelation(net)
                visible_tids = {
                    tid
                    for tid, t in net.transitions.items()
                    if t.action in self.visible_actions
                }
                visible_tids |= relation.transitions_changing(visible_places)
                self._selector = StubbornSelector(net, visible_tids, relation)
        self.stats.states = 1
        self._succ: dict[Marking, tuple[tuple[str, int, Marking], ...]] = {}
        if self.backend == "compiled":
            self._init_compiled(net, transition_filter)
        else:
            self._init_dict(net)

    def _init_dict(self, net: PetriNet) -> None:
        self._core: CompiledSpace | None = None
        self._consumers = net.consumer_index()
        #: Transitions with an empty preset are enabled in every marking.
        self._always_enabled = tuple(
            t.tid for t in net.sorted_transitions() if not t.preset
        )
        self._interner = MarkingInterner()
        self.initial = self._interner.intern(net.initial)
        self._parent: dict[Marking, tuple[Marking, int] | None] = {
            self.initial: None
        }
        self._enabled: dict[Marking, tuple[int, ...]] = {
            self.initial: self._scan_enabled(self.initial)
        }
        self._dfs: StackProvisoDfs | None = None
        if self._selector is not None and self.proviso == "stack":
            self._dfs = StackProvisoDfs(
                _MarkingDfsAdapter(self), self._selector, self.stats
            )

    def _init_compiled(
        self,
        net: PetriNet,
        transition_filter: Callable[[Transition, Marking], bool] | None,
    ) -> None:
        cnet = net.compiled()
        self._cnet = cnet
        wrapped: Callable[[int, object], bool] | None = None
        if transition_filter is not None:
            transitions = cnet.transitions

            def wrapped(dense: int, state) -> bool:
                return transition_filter(transitions[dense], self._decode(state))

        self._dfs = None
        self._core = CompiledSpace(
            cnet,
            max_states=self.max_states,
            stats=self.stats,
            detect_unbounded=self._detect_unbounded,
            selector=self._selector,
            transition_filter=wrapped,
            proviso=self.proviso,
        )
        self.initial = net.initial
        #: Bidirectional packed <-> Marking maps, filled on demand; each
        #: packed state gets one canonical decoded Marking.
        self._mark_of = {self._core.initial: self.initial}
        self._pack_of = {self.initial: self._core.initial}

    # -- compiled-backend plumbing -----------------------------------------

    @property
    def compiled_net(self):
        """The :class:`~repro.petri.compiled.CompiledNet` behind a
        compiled-backend space (``None`` for the dict backend)."""
        return self._cnet if self.backend == "compiled" else None

    def _decode(self, state) -> Marking:
        marking = self._mark_of.get(state)
        if marking is None:
            marking = self._cnet.decode(state)
            self._mark_of[state] = marking
            self._pack_of[marking] = state
        return marking

    def decode(self, state) -> Marking:
        """The canonical :class:`Marking` of a packed state yielded by
        :meth:`iter_raw` (identity transform on the dict backend)."""
        if self.backend == "compiled":
            return self._decode(state)
        return state

    def _lookup_packed(self, marking: Marking):
        """The packed form of an already-discovered marking; raises
        ``KeyError`` when the marking was never discovered (or cannot
        even be encoded over this net's places)."""
        packed = self._pack_of.get(marking)
        if packed is not None:
            return packed
        try:
            packed = self._cnet.encode(marking)
        except (KeyError, ValueError):
            raise KeyError(f"{marking!r} has not been discovered") from None
        if not self._core.discovered(packed):
            raise KeyError(f"{marking!r} has not been discovered")
        self._pack_of[marking] = packed
        return packed

    # -- enabledness (incremental) ----------------------------------------

    def _is_enabled(self, tid: int, marking: Marking) -> bool:
        self.stats.enabledness_checks += 1
        transition = self._transitions[tid]
        return all(marking[place] > 0 for place in transition.preset)

    def _scan_enabled(self, marking: Marking) -> tuple[int, ...]:
        """Full enabledness scan — used only for the initial marking."""
        candidates: set[int] = set(self._always_enabled)
        for place in marking:
            candidates.update(self._consumers.get(place, ()))
        return tuple(
            tid for tid in sorted(candidates) if self._is_enabled(tid, marking)
        )

    def _enabled_after(
        self, parent_enabled: tuple[int, ...], fired: Transition, child: Marking
    ) -> tuple[int, ...]:
        """Enabled set of ``child`` from its parent's, re-checking only the
        consumers of the places whose token count the firing changed."""
        changed = (fired.preset - fired.postset) | (fired.postset - fired.preset)
        affected: set[int] = set()
        for place in changed:
            affected.update(self._consumers.get(place, ()))
        if not affected:
            return parent_enabled
        merged = [tid for tid in parent_enabled if tid not in affected]
        merged.extend(
            tid for tid in affected if self._is_enabled(tid, child)
        )
        merged.sort()
        return tuple(merged)

    # -- expansion ---------------------------------------------------------

    def _discover(self, parent: Marking, transition: Transition) -> Marking:
        child = parent.fire(
            transition.preset - transition.postset,
            transition.postset - transition.preset,
        )
        canonical = self._interner.get(child)
        if canonical is not None:
            self.stats.interner_hits += 1
            return canonical
        if len(self._interner) >= self.max_states:
            reduced = (
                " (partial-order reduction active: the bound counts"
                " states of the reduced space)"
                if self._selector is not None
                else ""
            )
            raise UnboundedNetError(
                f"more than {self.max_states} reachable states in"
                f" {self.net.name!r}; net may be unbounded{reduced}",
                witness=child,
                bound=self.max_states,
                frontier=child,
            )
        self._interner.intern(child)
        self.stats.states += 1
        self._parent[child] = (parent, transition.tid)
        self._enabled[child] = self._enabled_after(
            self._enabled[parent], transition, child
        )
        if self._detect_unbounded:
            cursor: Marking | None = parent
            while cursor is not None:
                if child.covers(cursor) and child != cursor:
                    raise UnboundedNetError(
                        f"net {self.net.name!r} is unbounded:"
                        f" {child!r} strictly covers ancestor {cursor!r}",
                        witness=child,
                        frontier=child,
                    )
                link = self._parent[cursor]
                cursor = link[0] if link is not None else None
        return child

    @property
    def is_reduced(self) -> bool:
        """``True`` when stubborn-set partial-order reduction is active."""
        return self._selector is not None

    @property
    def _stack_driven(self) -> bool:
        """``True`` when the DFS-stack proviso drives the exploration."""
        return self._selector is not None and self.proviso == "stack"

    def _ensure_explored(self) -> None:
        """Force the stack-proviso DFS to completion (no-op otherwise).

        The stack proviso is an invariant of the finished search, so
        any API that serves reduced successors must run it first."""
        if self._core is not None:
            self._core.ensure_explored()
        elif self._dfs is not None:
            self._dfs.run_to_completion()

    def _all_targets_fresh(self, marking: Marking, tids: tuple[int, ...]) -> bool:
        """Ignoring-prevention proviso: a reduced expansion is accepted
        only if every reduced successor is a *new* marking.  Any cycle
        of the reduced graph therefore contains a fully expanded state
        (its last-expanded state sees an already-discovered successor),
        so no enabled transition can be postponed forever."""
        for tid in tids:
            transition = self._transitions[tid]
            child = marking.fire(
                transition.preset - transition.postset,
                transition.postset - transition.preset,
            )
            if self._interner.get(child) is not None:
                return False
        return True

    def successors(self, marking: Marking) -> tuple[tuple[str, int, Marking], ...]:
        """Outgoing edges of a state as ``(action, tid, target)`` triples,
        computed on first request and memoised.

        Under partial-order reduction this expands only the enabled
        members of a stubborn set whenever the selector proposes one
        and the ignoring-prevention proviso accepts it; otherwise every
        enabled transition is followed.  With ``proviso="stack"`` the
        first call forces the full reduced DFS (see the class
        docstring) and every call serves the memoised reduced graph.
        """
        cached = self._succ.get(marking)
        if cached is not None:
            return cached
        if self._dfs is not None:
            self._ensure_explored()
            result = self._dfs.successor_edges(marking)
            self._succ[marking] = result
            return result
        if self._core is not None:
            packed = self._lookup_packed(marking)
            decode = self._decode
            result = tuple(
                (action, tid, decode(target))
                for action, tid, target in self._core.successors(packed)
            )
            self._succ[marking] = result
            return result
        expand = self._enabled[marking]
        if self._selector is not None and len(expand) > 1:
            reduced = self._selector.reduced_enabled(marking, expand)
            if reduced is not None and self._all_targets_fresh(marking, reduced):
                expand = reduced
                self.stats.reduced_states += 1
        edges: list[tuple[str, int, Marking]] = []
        for tid in expand:
            transition = self._transitions[tid]
            if self._filter is not None and not self._filter(transition, marking):
                continue
            target = self._discover(marking, transition)
            edges.append((transition.action, tid, target))
        result = tuple(edges)
        self._succ[marking] = result
        self.stats.edges += len(result)
        return result

    # -- traversal ---------------------------------------------------------

    def iter_bfs(self) -> Iterator[Marking]:
        """Yield reachable markings in breadth-first discovery order.

        States are yielded as soon as they are *discovered* (before they
        are expanded), so a consumer checking a predicate per state can
        stop strictly earlier than any eager construction.  Under the
        stack proviso the reduced graph is explored (depth-first) in
        full first and this is a breadth-first replay — use
        :meth:`iter_discovery` for the traversal that streams states as
        the active exploration finds them.
        """
        self._ensure_explored()
        yield self.initial
        seen = {self.initial}
        queue: deque[Marking] = deque([self.initial])
        while queue:
            marking = queue.popleft()
            for _, _, target in self.successors(marking):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
                    if len(queue) > self.stats.frontier_peak:
                        self.stats.frontier_peak = len(queue)
                    yield target

    def iter_raw(self) -> Iterator:
        """BFS over *packed* states (compiled backend only) — the
        allocation-light twin of :meth:`iter_bfs` for callers that only
        probe token counts per state (e.g. the Prop 5.5 predicate) and
        can decode the rare interesting state via :meth:`decode`.
        Discovery order is identical to :meth:`iter_bfs`."""
        if self._core is None:
            raise ValueError("iter_raw requires the compiled backend")
        self._ensure_explored()
        core = self._core
        stats = self.stats
        yield core.initial
        seen = {core.initial}
        queue: deque = deque([core.initial])
        while queue:
            state = queue.popleft()
            for _, _, target in core.successors(state):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
                    if len(queue) > stats.frontier_peak:
                        stats.frontier_peak = len(queue)
                    yield target

    def iter_dfs(self) -> Iterator[Marking]:
        """Yield reachable markings in depth-first discovery order.

        Under the stack proviso this is the *native* traversal: states
        stream out as the reduced DFS discovers them, so an
        early-exiting consumer (the receptiveness search) can stop
        before the full reduced space is built.  On every other
        configuration it is a plain depth-first walk over
        :meth:`successors`.
        """
        if self._dfs is not None:
            yield from self._dfs.iterate()
            return
        if self._core is not None:
            decode = self._decode
            for state in self._core.iter_dfs():
                yield decode(state)
            return
        yield self.initial
        seen = {self.initial}
        stack = [iter(self.successors(self.initial))]
        while stack:
            for _, _, target in stack[-1]:
                if target not in seen:
                    seen.add(target)
                    yield target
                    stack.append(iter(self.successors(target)))
                    break
            else:
                stack.pop()

    def iter_raw_dfs(self) -> Iterator:
        """DFS over *packed* states (compiled backend only) — the
        allocation-light twin of :meth:`iter_dfs`."""
        if self._core is None:
            raise ValueError("iter_raw_dfs requires the compiled backend")
        return self._core.iter_dfs()

    def iter_discovery(self) -> Iterator[Marking]:
        """States in the order the active exploration discovers them.

        This is the traversal early-exit consumers should use: it
        streams from the reduced DFS walk when the stack proviso drives
        exploration, and is plain :meth:`iter_bfs` otherwise — in both
        cases a failure found after *k* yields means only *k* (plus the
        current expansion) states were materialised.
        """
        if self._stack_driven:
            return self.iter_dfs()
        return self.iter_bfs()

    def iter_raw_discovery(self) -> Iterator:
        """Packed twin of :meth:`iter_discovery` (compiled backend
        only)."""
        if self._core is None:
            raise ValueError("iter_raw_discovery requires the compiled backend")
        if self._stack_driven:
            return self._core.iter_dfs()
        return self.iter_raw()

    def explore_all(self) -> int:
        """Force full exploration; returns the number of reachable states."""
        if self._core is not None:
            for _ in self.iter_raw():
                pass
            return self._core.num_states()
        for _ in self.iter_bfs():
            pass
        return len(self._interner)

    def num_explored(self) -> int:
        """States discovered so far (== total states after ``explore_all``)."""
        if self._core is not None:
            return self._core.num_states()
        return len(self._interner)

    # -- observability -----------------------------------------------------

    def publish_metrics(self, prefix: str = "engine.lazy") -> None:
        """Flush the exploration counters to the active obs recorders.

        Counters are additive across spaces (a language comparison
        publishes both sides under the same prefix); the frontier peak
        and hit rate are per-space level measurements, reported as a
        high-water gauge and a last-write gauge respectively.  A no-op
        when no recorder is installed.
        """
        if not obs.active():
            return
        stats = self.stats
        obs.count(f"{prefix}.states", stats.states)
        obs.count(f"{prefix}.edges", stats.edges)
        obs.count(f"{prefix}.enabledness_checks", stats.enabledness_checks)
        obs.count(f"{prefix}.interner_hits", stats.interner_hits)
        obs.gauge_max(f"{prefix}.frontier_peak", stats.frontier_peak)
        obs.gauge(
            f"{prefix}.interner_hit_rate", round(stats.interner_hit_rate(), 6)
        )
        if self._selector is not None:
            obs.count(f"{prefix}.reduced_states", stats.reduced_states)
            obs.count(f"{prefix}.sleep_skips", stats.sleep_skips)
            obs.count(f"{prefix}.cycle_expansions", stats.cycle_expansions)
            if stats.states:
                obs.gauge(
                    f"{prefix}.reduction_ratio",
                    round(stats.reduced_states / stats.states, 6),
                )
            selector = self._selector.stats
            obs.count(f"{prefix}.selector.calls", selector.calls)
            obs.count(f"{prefix}.selector.seeds_tried", selector.seeds_tried)
            obs.count(f"{prefix}.selector.proposals", selector.proposals)

    # -- counterexample reconstruction -------------------------------------

    def trace_to(self, marking) -> tuple[tuple[int, str], ...]:
        """A firable ``(tid, action)`` path from the initial marking to a
        discovered state, via the discovery-parent pointers.

        On the compiled backend the argument may be either a
        :class:`Marking` or a packed state from :meth:`iter_raw`.
        """
        if self._core is not None:
            packed = (
                self._lookup_packed(marking)
                if isinstance(marking, Marking)
                else marking
            )
            return self._core.trace_to(packed)
        steps: list[tuple[int, str]] = []
        cursor = self._interner.get(marking)
        if cursor is None:
            raise KeyError(f"{marking!r} has not been discovered")
        while True:
            link = self._parent[cursor]
            if link is None:
                break
            parent, tid = link
            steps.append((tid, self._transitions[tid].action))
            cursor = parent
        return tuple(reversed(steps))

    def action_trace(self, marking: Marking) -> tuple[str, ...]:
        """The action labels of :meth:`trace_to`."""
        return tuple(action for _, action in self.trace_to(marking))


class _MarkingDfsAdapter:
    """Dict-backend plug for :class:`~repro.petri.dfs.StackProvisoDfs`.

    States are interned :class:`Marking` objects; ``probe`` fires
    without any bookkeeping so proviso checks never perturb the interner
    accounting, while ``discover`` routes through the space's full
    discovery path (interning, budget, Karp-Miller covering)."""

    __slots__ = ("_space",)

    def __init__(self, space: LazyStateSpace):
        self._space = space

    def root(self) -> Marking:
        return self._space.initial

    def discovered(self) -> Iterator[Marking]:
        return iter(self._space._parent)

    def enabled(self, state: Marking) -> tuple[int, ...]:
        return self._space._enabled[state]

    def view(self, state: Marking) -> Marking:
        return state

    def probe(self, state: Marking, tid: int) -> Marking:
        transition = self._space._transitions[tid]
        child = state.fire(
            transition.preset - transition.postset,
            transition.postset - transition.preset,
        )
        canonical = self._space._interner.get(child)
        return child if canonical is None else canonical

    def discover(self, state: Marking, tid: int) -> Marking:
        return self._space._discover(state, self._space._transitions[tid])

    def action(self, tid: int) -> str:
        return self._space._transitions[tid].action


# -- synchronous product ------------------------------------------------------


class SynchronousProduct:
    """Lazy synchronous product of two state spaces.

    A product state is a pair of component markings.  An action in
    ``sync`` fires as a rendez-vous (both components step together, all
    pairings of same-label moves); any other action interleaves.  This
    is the LTS-level reading of Definition 4.7: exhausting the product
    of ``L(N1)`` and ``L(N2)`` without ever composing the nets.

    Component spaces may be partial-order reduced: because the product
    trace language is determined by the component trace languages
    (Theorem 4.5), reduction inside a component carries over to the
    product — *provided* the synchronisation actions stay visible in
    every reduced component, which is validated here.  (Product
    deadlocks are not preserved by component-wise reduction; use an
    unreduced product, or reduce the composed net itself, for deadlock
    questions.)
    """

    def __init__(
        self,
        space1: LazyStateSpace,
        space2: LazyStateSpace,
        sync: Iterable[str],
    ):
        self.space1 = space1
        self.space2 = space2
        self.sync = frozenset(sync)
        #: Product-level work: ``states`` discovered by :meth:`iter_bfs`,
        #: ``edges`` returned by :meth:`successors` (component work is
        #: tracked by the component spaces' own stats).
        self.stats = ExplorationStats()
        for space in (space1, space2):
            visible = space.visible_actions
            if space.is_reduced and visible is not None and not self.sync <= visible:
                raise ValueError(
                    "partial-order reduced component spaces must keep every"
                    f" synchronisation action visible; hidden:"
                    f" {sorted(self.sync - visible)}"
                )
        self.initial = (space1.initial, space2.initial)

    def successors(
        self, state: tuple[Marking, Marking]
    ) -> list[tuple[str, tuple[Marking, Marking]]]:
        m1, m2 = state
        edges: list[tuple[str, tuple[Marking, Marking]]] = []
        moves2: dict[str, list[Marking]] = {}
        for action, _, target in self.space2.successors(m2):
            moves2.setdefault(action, []).append(target)
        for action, _, target in self.space1.successors(m1):
            if action in self.sync:
                for partner in moves2.get(action, ()):
                    edges.append((action, (target, partner)))
            else:
                edges.append((action, (target, m2)))
        for action, targets in moves2.items():
            if action in self.sync:
                continue
            for target in targets:
                edges.append((action, (m1, target)))
        self.stats.edges += len(edges)
        return edges

    def iter_bfs(self) -> Iterator[tuple[Marking, Marking]]:
        yield self.initial
        self.stats.states += 1
        seen = {self.initial}
        queue: deque[tuple[Marking, Marking]] = deque([self.initial])
        while queue:
            state = queue.popleft()
            for _, target in self.successors(state):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
                    if len(queue) > self.stats.frontier_peak:
                        self.stats.frontier_peak = len(queue)
                    self.stats.states += 1
                    yield target

    def publish_metrics(self, prefix: str = "engine.product") -> None:
        """Flush product-level counters (and both components' counters,
        under ``<prefix>.component``) to the active obs recorders."""
        if not obs.active():
            return
        obs.count(f"{prefix}.states", self.stats.states)
        obs.count(f"{prefix}.edges", self.stats.edges)
        obs.gauge_max(f"{prefix}.frontier_peak", self.stats.frontier_peak)
        self.space1.publish_metrics(f"{prefix}.component")
        self.space2.publish_metrics(f"{prefix}.component")

    def to_net(self, name: str = "product-lts") -> PetriNet:
        """Materialise the product LTS as a one-token state-machine net
        (each product state a place, each edge a transition).

        Intended for oracle cross-checks — e.g. Theorem 4.5 is the claim
        that this net and the composed net have the same language.
        """
        index: dict[tuple[Marking, Marking], str] = {}

        def place_of(state: tuple[Marking, Marking]) -> str:
            if state not in index:
                index[state] = f"s{len(index)}"
            return index[state]

        net = PetriNet(name)
        net.add_place(place_of(self.initial), tokens=1)
        for state in self.iter_bfs():
            for action, target in self.successors(state):
                net.add_transition({place_of(state)}, action, {place_of(target)})
        return net


# -- on-the-fly determinised language comparison ------------------------------


class _LazyDfa:
    """Subset construction over a :class:`LazyStateSpace`, one move at a
    time, with epsilon-closure over the silent labels."""

    def __init__(self, space: LazyStateSpace, silent: frozenset[str]):
        self.space = space
        self.silent = silent
        self._moves: dict[frozenset[Marking], dict[str, frozenset[Marking]]] = {}

    def closure(self, states: frozenset[Marking]) -> frozenset[Marking]:
        seen = set(states)
        queue = deque(states)
        while queue:
            marking = queue.popleft()
            for action, _, target in self.space.successors(marking):
                if action in self.silent and target not in seen:
                    seen.add(target)
                    queue.append(target)
        return frozenset(seen)

    def start(self) -> frozenset[Marking]:
        return self.closure(frozenset({self.space.initial}))

    def moves(
        self, subset: frozenset[Marking]
    ) -> dict[str, frozenset[Marking]]:
        cached = self._moves.get(subset)
        if cached is not None:
            return cached
        buckets: dict[str, set[Marking]] = {}
        for marking in subset:
            for action, _, target in self.space.successors(marking):
                if action not in self.silent:
                    buckets.setdefault(action, set()).add(target)
        result = {
            action: self.closure(frozenset(targets))
            for action, targets in buckets.items()
        }
        self._moves[subset] = result
        return result


@dataclass
class LanguageComparison:
    """Outcome of an on-the-fly language comparison.

    ``verdict`` answers the requested question (equality or
    containment); on a negative verdict ``counterexample`` is a
    shortest visible trace in exactly one language ("contained" mode:
    in the left language but not the right).  ``stats`` records the
    exploration work of both sides combined.
    """

    mode: str
    verdict: bool
    counterexample: tuple[str, ...] | None = None
    stats: ExplorationStats = field(default_factory=ExplorationStats)


def compare_languages(
    net1: PetriNet,
    net2: PetriNet,
    mode: str = "equal",
    silent: Iterable[str] = (EPSILON,),
    silent2: Iterable[str] | None = None,
    alphabet: Iterable[str] | None = None,
    max_states: int = 1_000_000,
    reduction: bool = False,
    backend: str | None = None,
) -> LanguageComparison:
    """Compare visible trace languages without materialising either
    state space: determinise both nets on the fly and walk the pair
    graph breadth-first, stopping at the first difference.

    ``mode`` is ``"equal"`` (language equality) or ``"contained"``
    (``L(net1) <= L(net2)``).  ``silent2`` lets the right-hand net use a
    different silent set (e.g. for Theorem 4.7, where the contracted
    label is silent on the un-contracted side only); it defaults to
    ``silent``.  ``alphabet`` restricts/widens the compared symbol set
    exactly as in :func:`repro.verify.language.dfa_of_net`.

    ``reduction=True`` (the ``engine="por"`` path) explores both sides
    under stubborn-set partial-order reduction with exactly the
    non-silent actions visible — the reduced spaces have the same
    visible languages as the full ones, so the verdict and the
    counterexample stay exact while silent interleavings collapse.
    """
    if mode not in ("equal", "contained"):
        raise ValueError(f"unknown mode {mode!r}")
    silent1_set = frozenset(silent)
    silent2_set = frozenset(silent2) if silent2 is not None else silent1_set
    if alphabet is None:
        universe = frozenset(
            (net1.actions - silent1_set) | (net2.actions - silent2_set)
        )
    else:
        universe = frozenset(alphabet) - (silent1_set | silent2_set)
    space1 = LazyStateSpace(
        net1,
        max_states=max_states,
        reduction=reduction,
        visible_actions=frozenset(net1.actions) - silent1_set,
        backend=backend,
    )
    space2 = LazyStateSpace(
        net2,
        max_states=max_states,
        reduction=reduction,
        visible_actions=frozenset(net2.actions) - silent2_set,
        backend=backend,
    )
    dfa1 = _LazyDfa(space1, silent1_set)
    dfa2 = _LazyDfa(space2, silent2_set)

    Sub = frozenset  # a DFA state is a subset of markings; None is the sink
    start = (dfa1.start(), dfa2.start())
    parents: dict[
        tuple[Sub | None, Sub | None],
        tuple[tuple[Sub | None, Sub | None], str] | None,
    ] = {start: None}
    queue: deque[tuple[Sub | None, Sub | None]] = deque([start])

    def mismatch(s1: Sub | None, s2: Sub | None) -> bool:
        if mode == "equal":
            return (s1 is None) != (s2 is None)
        return s1 is not None and s2 is None

    def trace_of(pair: tuple[Sub | None, Sub | None]) -> tuple[str, ...]:
        symbols: list[str] = []
        cursor = pair
        while parents[cursor] is not None:
            cursor, symbol = parents[cursor]  # type: ignore[misc]
            symbols.append(symbol)
        return tuple(reversed(symbols))

    def stats() -> ExplorationStats:
        return space1.stats + space2.stats

    def finish(
        verdict: bool, counterexample: tuple[str, ...] | None
    ) -> LanguageComparison:
        space1.publish_metrics()
        space2.publish_metrics()
        obs.count("engine.product.pairs", len(parents))
        return LanguageComparison(mode, verdict, counterexample, stats())

    with obs.span(
        "engine.product.compare_languages", mode=mode, reduction=reduction
    ) as span:
        while queue:
            s1, s2 = queue.popleft()
            moves1 = dfa1.moves(s1) if s1 is not None else {}
            moves2 = dfa2.moves(s2) if s2 is not None else {}
            for symbol in sorted(set(moves1) | set(moves2)):
                if symbol not in universe:
                    # Labels outside the compared alphabet fall outside the
                    # language on either side (same convention as the eager
                    # DFA construction).
                    continue
                successor = (moves1.get(symbol), moves2.get(symbol))
                if successor in parents:
                    continue
                parents[successor] = ((s1, s2), symbol)
                if mismatch(*successor):
                    span.set(verdict=False, pairs=len(parents))
                    return finish(False, trace_of(successor))
                if successor[0] is not None and successor[1] is not None:
                    # A pair with a sink component is terminal: in "equal"
                    # mode it was a mismatch above, in "contained" mode a
                    # dead left side can never violate containment later.
                    queue.append(successor)
        span.set(verdict=True, pairs=len(parents))
        return finish(True, None)


# -- on-the-fly bisimulation (deterministic fragment) -------------------------


def deterministic_bisimulation(
    net1: PetriNet,
    net2: PetriNet,
    max_states: int = 100_000,
    backend: str | None = None,
) -> tuple[bool | None, ExplorationStats]:
    """Strong-bisimulation check by synchronous walk, exact on
    deterministic systems.

    Returns ``(True, stats)`` / ``(False, stats)`` when the verdict is
    definite: while every visited state offers at most one successor per
    label on both sides, the synchronised path is forced, so a label-set
    mismatch proves non-bisimilarity and full agreement proves (strong)
    bisimilarity.  Returns ``(None, stats)`` as soon as nondeterminism
    is encountered — the caller must fall back to the eager
    partition-refinement oracle.
    """
    space1 = LazyStateSpace(net1, max_states=max_states, backend=backend)
    space2 = LazyStateSpace(net2, max_states=max_states, backend=backend)

    def combined() -> ExplorationStats:
        space1.publish_metrics()
        space2.publish_metrics()
        return space1.stats + space2.stats

    def rows(
        space: LazyStateSpace, marking: Marking
    ) -> dict[str, set[Marking]] | None:
        by_label: dict[str, set[Marking]] = {}
        for action, _, target in space.successors(marking):
            by_label.setdefault(action, set()).add(target)
            if len(by_label[action]) > 1:
                return None
        return by_label

    start = (space1.initial, space2.initial)
    seen = {start}
    queue = deque([start])
    with obs.span("engine.product.deterministic_bisimulation") as span:
        while queue:
            m1, m2 = queue.popleft()
            rows1 = rows(space1, m1)
            rows2 = rows(space2, m2)
            if rows1 is None or rows2 is None:
                span.set(verdict=None)
                return None, combined()
            if set(rows1) != set(rows2):
                span.set(verdict=False)
                return False, combined()
            for label, targets1 in rows1.items():
                pair = (next(iter(targets1)), next(iter(rows2[label])))
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)
        span.set(verdict=True)
        return True, combined()
