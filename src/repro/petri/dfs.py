"""Depth-first reduced exploration: DFS-stack proviso plus sleep sets.

This module is the dynamic half of the partial-order reduction layer
(the static half — independence facts and stubborn-set closure — lives
in :mod:`repro.petri.independence`).  It replaces the original
ignoring-prevention proviso, which accepted a reduced expansion only
when *every* reduced successor was a brand-new marking.  That condition
is sound but collapses on pure cycles: the last state of any cycle sees
an already-discovered successor and is fully expanded, so cyclic
workloads (the paper's four-phase channel banks) got zero reduction —
256 → 256 states on channel-bank(4) in ``BENCH_por.json``.

Two classical techniques fix this:

* **The DFS-stack proviso** (Valmari's proviso S, the condition SPIN
  implements): explore depth-first and expand a state fully only when
  one of its *chosen* successors closes a cycle onto the current search
  stack.  Every cycle of the reduced graph then still contains a fully
  expanded state — the ignoring-prevention guarantee — but a reduced
  successor that merely re-converges onto an already *finished* state
  no longer forces a full expansion.  On a pure cycle this means one
  full expansion per cycle closure instead of one per state.

* **Sleep sets** (Godefroid's algorithm 3, state-matching variant): a
  transition that was already fired from an ancestor state and is
  independent of everything fired since does not need to be fired
  again — its interleaving was covered by the earlier branch.  Each
  state carries a *sleep set* of such transitions; firing ``t`` from
  ``s`` gives the child the sleep set ``{u in sleep(s) | fired-at-s :
  u invisible and independent(u, t)}``.  When a state is reached again
  with a *smaller* sleep set, the difference is woken up and fired
  (the stored set shrinks to the intersection), which restores the
  executions the earlier, larger sleep set was allowed to skip.

Deliberate deviations from the textbook algorithms, all on the side of
exploring *more*:

* only **invisible** transitions ever enter a sleep set.  Textbook
  sleep sets preserve deadlocks but only stutter-equivalent languages;
  restricting sleep membership to invisible transitions means a pruned
  execution differs from an explored one only by commuting an invisible
  transition earlier, so the *exact* visible word language is preserved
  — the guarantee every verify wrapper in this repo assumes.
* a state whose every candidate transition is asleep fires the whole
  enabled set instead of nothing, so a reduced-graph sink is always a
  genuine deadlock (the differential harness compares deadlock *sets*,
  not just reachability of some deadlock).
* waking fires ``(stored - incoming) ∩ enabled`` minus the transitions
  already fired from that state — the subtraction makes re-wakes of
  fallback-expanded states no-ops instead of duplicate edges.

The driver below implements one iterative DFS shared by both state
backends; :class:`repro.petri.product.LazyStateSpace` (dict markings)
and :class:`repro.petri.compiled.CompiledSpace` (packed vectors) plug
in through a small adapter, which is what keeps the two backends'
reduction decisions byte-identical (``docs/PERFORMANCE.md`` §3).

Because the proviso is a property of the *whole* depth-first search,
a reduced space driven by this module is explored in full on the first
demand (``successors`` / ``iter_bfs`` force the walk to completion);
:meth:`StackProvisoDfs.walk` is the streaming entry point for
early-exit consumers such as the receptiveness search.  A walk
abandoned mid-way leaves a sound-but-unfinished graph; the next walk
re-traverses the recorded expansions, re-checks the proviso against
its own stack, and finishes the job.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Protocol


class DfsAdapter(Protocol):
    """What a state backend must provide to drive the reduced DFS.

    States are opaque (dict :class:`~repro.petri.marking.Marking` or a
    packed vector); transitions are always identified by *tid* so the
    stubborn selector and the sleep sets work in one domain across
    backends.
    """

    def root(self):
        """The initial state."""

    def discovered(self) -> Iterator:
        """All discovered states, in discovery order."""

    def enabled(self, state) -> tuple[int, ...]:
        """Enabled transitions of a discovered state, sorted by tid."""

    def view(self, state):
        """A place -> count mapping view for the stubborn selector."""

    def probe(self, state, tid):
        """The successor state alone — no discovery bookkeeping."""

    def discover(self, state, tid):
        """Fire ``tid`` with full discovery bookkeeping (interning,
        budget, parent pointers, Karp-Miller covering) and return the
        canonical successor state."""

    def action(self, tid: int) -> str:
        """The action label of a transition."""


class SleepSets:
    """Sleep-set propagation over the static independence relation.

    Only invisible transitions are admitted (see the module docstring);
    independence queries are memoised because the same (sleeper, fired)
    pairs recur at every state of a cycle.
    """

    __slots__ = ("_relation", "_visible", "_indep")

    def __init__(self, relation, visible: frozenset[int]):
        self._relation = relation
        self._visible = visible
        self._indep: dict[tuple[int, int], bool] = {}

    def _independent(self, u: int, t: int) -> bool:
        key = (u, t)
        cached = self._indep.get(key)
        if cached is None:
            cached = self._relation.independent(u, t)
            self._indep[key] = cached
        return cached

    def child(
        self, sleep: frozenset[int], fired, tid: int
    ) -> frozenset[int]:
        """The sleep set inherited over one firing: every invisible
        member of ``sleep`` or of the transitions already fired from the
        parent that is independent of ``tid``.  (``tid`` itself never
        qualifies: a transition is not independent of itself.)"""
        visible = self._visible
        out = [u for u in sleep if self._independent(u, tid)]
        out.extend(
            u
            for u in fired
            if u not in visible
            and u not in sleep
            and self._independent(u, tid)
        )
        return frozenset(out)


class StackProvisoDfs:
    """One reduced depth-first search, resumable and backend-agnostic.

    Persistent per-space bookkeeping (survives across walks):

    * ``sleep_of`` — the sleep set each state was explored with
      (shrunk on every wake);
    * ``fired`` / ``edges`` — the transitions actually fired per state
      and the resulting edge lists, in firing order (these become the
      memoised ``successors`` of the owning space);
    * ``full`` — states expanded with their complete enabled set;
    * ``complete`` — whether the last walk ran to exhaustion.
    """

    __slots__ = (
        "_adapter",
        "_selector",
        "_stats",
        "_sleep",
        "sleep_of",
        "fired",
        "edges",
        "full",
        "_reduced",
        "complete",
    )

    def __init__(self, adapter: DfsAdapter, selector, stats):
        self._adapter = adapter
        self._selector = selector
        self._stats = stats
        self._sleep = SleepSets(selector.relation, selector.visible)
        self.sleep_of: dict = {}
        self.fired: dict = {}
        self.edges: dict = {}
        self.full: set = set()
        self._reduced: set = set()
        self.complete = False

    # -- walking -----------------------------------------------------------

    def run_to_completion(self) -> None:
        """Drain a walk (no-op when already complete)."""
        if not self.complete:
            for _ in self.walk():
                pass

    def iterate(self) -> Iterator:
        """States in discovery order: a live walk when exploration is
        unfinished, a replay of the recorded order afterwards."""
        if self.complete:
            return iter(tuple(self._adapter.discovered()))
        return self.walk()

    def walk(self) -> Iterator:
        """Run (or resume) the depth-first exploration, yielding each
        state the first time this walk visits it — new states exactly
        at discovery.  Completing the generator establishes the proviso
        invariant for the whole reduced graph and sets ``complete``."""
        a = self._adapter
        stats = self._stats
        sleep_of = self.sleep_of
        fired_of = self.fired
        edges_of = self.edges
        full = self.full
        sleeper = self._sleep

        on_walk: set = set()
        on_stack: set = set()
        frames: list[list] = []  # [state, work list of tids, cursor]
        frame_of: dict = {}

        def upgrade(frame: list, enabled: tuple[int, ...]) -> None:
            """Extend a frame to the full proviso expansion — every
            enabled transition that is not asleep (cycle onto the DFS
            stack detected; slept transitions stay covered by the sleep
            invariant, which is SPIN's expansion rule)."""
            state = frame[0]
            present = set(frame[1]) | fired_of[state]
            sleep = sleep_of[state]
            frame[1].extend(
                t for t in enabled if t not in present and t not in sleep
            )
            stats.cycle_expansions += 1
            if all(t in present or t not in sleep for t in enabled):
                full.add(state)
                if state in self._reduced:
                    self._reduced.discard(state)
                    stats.reduced_states -= 1

        def open_frame(state, extra=()) -> list:
            enabled = a.enabled(state)
            fired = fired_of.setdefault(state, set())
            recorded = edges_of.setdefault(state, [])
            sleep = sleep_of[state]
            if state in full:
                work = [tid for _, tid, _ in recorded]
            elif fired:
                # Re-entry after an abandoned walk: replay the recorded
                # expansion, re-checking the proviso on *this* stack.
                work = [tid for _, tid, _ in recorded]
                for tid in work:
                    if a.probe(state, tid) in on_stack:
                        present = set(work)
                        work.extend(
                            t
                            for t in enabled
                            if t not in present and t not in sleep
                        )
                        stats.cycle_expansions += 1
                        if all(t in present or t not in sleep for t in enabled):
                            full.add(state)
                            if state in self._reduced:
                                self._reduced.discard(state)
                                stats.reduced_states -= 1
                        break
            else:
                base: tuple[int, ...] | list[int] = enabled
                if self._selector is not None and len(enabled) > 1:
                    proposal = self._selector.reduced_enabled(
                        a.view(state), enabled, asleep=sleep
                    )
                    if proposal is not None:
                        base = proposal
                chosen = [t for t in base if t not in sleep]
                if not chosen:
                    # The whole persistent set is asleep (possible only
                    # when no awake-seeded closure existed): fall back to
                    # the trivially persistent full enabled set, and if
                    # even that is all asleep fire it anyway so a
                    # reduced-graph sink is always a real deadlock.
                    base = enabled
                    chosen = [t for t in enabled if t not in sleep]
                if not chosen:
                    base = None
                    chosen = list(enabled)
                if base is not None:
                    stats.sleep_skips += len(base) - len(chosen)
                if len(chosen) < len(enabled):
                    for tid in chosen:
                        if a.probe(state, tid) in on_stack:
                            present = set(chosen)
                            chosen.extend(
                                t
                                for t in enabled
                                if t not in present and t not in sleep
                            )
                            stats.cycle_expansions += 1
                            break
                work = chosen
                if len(work) < len(enabled):
                    self._reduced.add(state)
                    stats.reduced_states += 1
                else:
                    full.add(state)
            if extra:
                present = set(work) | fired
                enabled_set = set(enabled)
                work.extend(
                    u
                    for u in sorted(extra)
                    if u in enabled_set and u not in present
                )
            return [state, work, 0]

        def enter(state, extra=()):
            on_walk.add(state)
            on_stack.add(state)
            frame = open_frame(state, extra)
            frames.append(frame)
            frame_of[state] = frame
            if len(frames) > stats.frontier_peak:
                stats.frontier_peak = len(frames)
            return frame

        root = a.root()
        sleep_of.setdefault(root, frozenset())
        enter(root)
        yield root
        while frames:
            frame = frames[-1]
            state = frame[0]
            if frame[2] >= len(frame[1]):
                frames.pop()
                on_stack.discard(state)
                frame_of.pop(state, None)
                continue
            tid = frame[1][frame[2]]
            frame[2] += 1
            fired = fired_of[state]
            if tid in fired:
                target = a.probe(state, tid)
            else:
                target = a.discover(state, tid)
                fired.add(tid)
                edges_of[state].append((a.action(tid), tid, target))
                stats.edges += 1
            incoming = sleeper.child(sleep_of[state], fired, tid)
            stored = sleep_of.get(target)
            if target not in on_walk:
                wake: frozenset[int] = frozenset()
                if stored is None:
                    sleep_of[target] = incoming
                else:
                    # Known from an earlier walk: merge sleeps, wake the
                    # difference alongside the recorded re-walk.
                    wake = stored - incoming
                    sleep_of[target] = stored & incoming
                    if target in full:
                        wake = frozenset()
                enter(target, wake)
                yield target
                continue
            # Revisited within this walk.
            wake = stored - incoming  # type: ignore[operator]
            if not wake:
                continue
            sleep_of[target] = stored & incoming  # type: ignore[operator]
            if target in full:
                continue
            enabled = a.enabled(target)
            enabled_set = set(enabled)
            already = fired_of.get(target, set())
            todo = [
                u
                for u in sorted(wake)
                if u in enabled_set and u not in already
            ]
            if not todo:
                continue
            live = frame_of.get(target)
            if live is None:
                # Finished earlier in this walk: push a wake frame that
                # fires only the difference (Godefroid's re-exploration).
                live = enter(target, ())
                live[1].extend(todo)
            else:
                present = set(live[1])
                todo = [u for u in todo if u not in present]
                live[1].extend(todo)
            # Woken firings are expansion extensions: re-check the
            # proviso for them (conservatively, against today's stack).
            if target not in full:
                for u in todo:
                    if a.probe(target, u) in on_stack:
                        upgrade(live, enabled)
                        break
        self.complete = True

    # -- memoised graph ----------------------------------------------------

    def successor_edges(self, state) -> tuple:
        """The recorded ``(action, tid, target)`` edges of a state (the
        walk must be complete); raises ``KeyError`` for states never
        discovered."""
        edges = self.edges.get(state)
        if edges is None:
            raise KeyError(f"{state!r} has not been discovered")
        return tuple(edges)
