"""Labeled Petri nets (Definition 2.1 of the paper).

A labeled Petri net is a tuple ``(A, P, ->, M0)`` with ``A`` a set of
action labels, ``P`` a set of places, ``->``  a transition relation of
triples ``(preset, action, postset)`` and ``M0`` an initial marking.

The paper's transition relation is a subset of ``2^P x A x 2^P``; since
the algebra needs to manipulate individual transitions (and nothing in
the paper forbids two transitions with identical presets, labels and
postsets after composition), every transition here carries a stable
integer identity ``tid``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.petri.marking import Marking, Place

if TYPE_CHECKING:
    from repro.petri.compiled import CompiledNet

Action = str

#: The distinguished silent / dummy action label (the paper's epsilon).
EPSILON: Action = "eps"


@dataclass(frozen=True)
class Transition:
    """One element of the transition relation: ``(preset, action, postset)``."""

    tid: int
    preset: frozenset[Place]
    action: Action
    postset: frozenset[Place]
    #: Places a firing strictly drains / fills (``preset \ postset`` and
    #: ``postset \ preset``).  Derived once at construction — firing is
    #: the hot path of every exploration engine and must not recompute
    #: these set differences per step.
    consume: frozenset[Place] = field(init=False, repr=False, compare=False)
    produce: frozenset[Place] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "consume", self.preset - self.postset)
        object.__setattr__(self, "produce", self.postset - self.preset)

    def is_self_looping(self) -> bool:
        """``True`` iff some place is both consumed and produced."""
        return bool(self.preset & self.postset)

    def places(self) -> frozenset[Place]:
        """All places adjacent to this transition."""
        return self.preset | self.postset

    def __repr__(self) -> str:
        pre = ",".join(sorted(self.preset)) or "-"
        post = ",".join(sorted(self.postset)) or "-"
        return f"t{self.tid}:{{{pre}}}-{self.action}->{{{post}}}"


class PetriNet:
    """A general labeled Petri net.

    The class is a mutable builder (``add_place`` / ``add_transition``),
    but all algebra operations in :mod:`repro.algebra` are functional and
    return new nets.

    Parameters
    ----------
    name:
        Human-readable net name, carried through algebra operations.
    actions:
        The alphabet ``A``.  Adding a transition automatically extends
        the alphabet with its label, but an alphabet may also contain
        labels with no transitions (relevant for parallel composition,
        which synchronizes on the *alphabet* intersection).
    """

    def __init__(
        self,
        name: str = "net",
        actions: Iterable[Action] = (),
        places: Iterable[Place] = (),
        initial: Marking | Mapping[Place, int] | None = None,
    ):
        self.name = name
        self.actions: set[Action] = set(actions)
        self.places: set[Place] = set(places)
        self.transitions: dict[int, Transition] = {}
        self.initial: Marking = Marking(initial or {})
        #: Optional boolean guards on input arcs, keyed by ``(place, tid)``.
        #: Guards are opaque to the base net; they are interpreted by the
        #: STG layer (:mod:`repro.stg.guards`).
        self.input_guards: dict[tuple[Place, int], object] = {}
        self._next_tid = 0
        #: Lazily built place -> consumer-tids index (see
        #: :meth:`consumer_index`); invalidated on transition mutation.
        self._consumer_index: dict[Place, tuple[int, ...]] | None = None
        #: Lazily built tid-sorted transition tuple (see
        #: :meth:`sorted_transitions`); same invalidation discipline.
        self._sorted_transitions: tuple[Transition, ...] | None = None
        #: Lazily built integer-indexed form (see :meth:`compiled`);
        #: additionally invalidated when places or the initial marking
        #: change, since the compiled form bakes both in.
        self._compiled: "CompiledNet | None" = None
        for place in self.initial:
            self.places.add(place)

    # -- construction ----------------------------------------------------

    def add_place(self, place: Place, tokens: int = 0) -> Place:
        """Add a place, optionally with initial tokens.  Idempotent on name."""
        self.places.add(place)
        self._compiled = None
        if tokens:
            counts = dict(self.initial)
            counts[place] = counts.get(place, 0) + tokens
            self.initial = Marking(counts)
        return place

    def add_transition(
        self,
        preset: Iterable[Place],
        action: Action,
        postset: Iterable[Place],
        tid: int | None = None,
    ) -> Transition:
        """Add a transition ``(preset, action, postset)`` and return it.

        Referenced places are created implicitly.  If ``tid`` is given it
        must be unused; otherwise a fresh id is allocated.
        """
        if tid is None:
            while self._next_tid in self.transitions:
                self._next_tid += 1
            tid = self._next_tid
            self._next_tid += 1
        elif tid in self.transitions:
            raise ValueError(f"transition id {tid} already used")
        transition = Transition(tid, frozenset(preset), action, frozenset(postset))
        self.places.update(transition.preset)
        self.places.update(transition.postset)
        self.actions.add(action)
        self.transitions[tid] = transition
        self._consumer_index = None
        self._sorted_transitions = None
        self._compiled = None
        return transition

    def remove_transition(self, tid: int) -> None:
        """Remove a transition (its adjacent places remain)."""
        transition = self.transitions.pop(tid)
        self._consumer_index = None
        self._sorted_transitions = None
        self._compiled = None
        for place in transition.preset:
            self.input_guards.pop((place, tid), None)

    def remove_place(self, place: Place) -> None:
        """Remove an isolated place.  Raises if any transition uses it."""
        for transition in self.transitions.values():
            if place in transition.preset or place in transition.postset:
                raise ValueError(f"place {place!r} still used by {transition!r}")
        self.places.discard(place)
        self._compiled = None
        if place in self.initial:
            self.initial = Marking({p: n for p, n in self.initial.items() if p != place})

    def set_initial(self, marking: Marking | Mapping[Place, int]) -> None:
        """Replace the initial marking (places are created implicitly)."""
        self.initial = Marking(marking)
        self.places.update(self.initial)
        self._compiled = None

    def set_guard(self, place: Place, tid: int, guard: object) -> None:
        """Attach a boolean guard to the input arc ``place -> tid``."""
        transition = self.transitions[tid]
        if place not in transition.preset:
            raise ValueError(f"{place!r} is not an input place of transition {tid}")
        self.input_guards[(place, tid)] = guard

    def guard_of(self, place: Place, tid: int) -> object | None:
        """The guard on input arc ``place -> tid`` or ``None``."""
        return self.input_guards.get((place, tid))

    # -- structural queries ----------------------------------------------

    def initial_places(self) -> frozenset[Place]:
        """Places marked in the initial marking (the paper's initial places)."""
        return self.initial.marked_places()

    def sorted_transitions(self) -> tuple[Transition, ...]:
        """All transitions in tid order.

        Cached — the structural queries below and the exploration
        engines iterate this constantly, and re-sorting
        ``transitions.items()`` per call dominated their set-up cost.
        Invalidated together with :meth:`consumer_index` on transition
        mutation.
        """
        if self._sorted_transitions is None:
            self._sorted_transitions = tuple(
                t for _, t in sorted(self.transitions.items())
            )
        return self._sorted_transitions

    def transitions_with_action(self, action: Action) -> list[Transition]:
        """All transitions labeled ``action``, in tid order."""
        return [t for t in self.sorted_transitions() if t.action == action]

    def consumers(self, place: Place) -> list[Transition]:
        """Transitions with ``place`` in their preset (the place's postset)."""
        return [t for t in self.sorted_transitions() if place in t.preset]

    def producers(self, place: Place) -> list[Transition]:
        """Transitions with ``place`` in their postset (the place's preset)."""
        return [t for t in self.sorted_transitions() if place in t.postset]

    def consumer_index(self) -> dict[Place, tuple[int, ...]]:
        """Place -> tids of its consuming transitions, in tid order.

        Built once on first use and invalidated by transition mutation.
        This is the index the on-the-fly exploration engine
        (:mod:`repro.petri.product`) uses to re-check enabledness only
        for transitions adjacent to the places the last firing changed,
        instead of scanning the whole transition relation per state.
        """
        if self._consumer_index is None:
            index: dict[Place, list[int]] = {}
            for transition in self.sorted_transitions():
                for place in transition.preset:
                    index.setdefault(place, []).append(transition.tid)
            self._consumer_index = {
                place: tuple(tids) for place, tids in index.items()
            }
        return self._consumer_index

    def compiled(self) -> "CompiledNet":
        """The integer-indexed compiled form of this net.

        Built once on first use (see :mod:`repro.petri.compiled`) and
        invalidated by any mutation the compiled form bakes in: place
        or transition changes and :meth:`set_initial` /
        :meth:`add_place` with tokens.

        When an artifact store is active (:mod:`repro.cache`), the
        lowering decisions are restored from it instead of re-derived —
        the bound certificate is re-verified exactly on every restore,
        so a stale or corrupt artifact degrades to a cold compile, never
        to a wrong bound.
        """
        if self._compiled is None:
            from repro.cache.compilecache import compile_net_cached

            self._compiled = compile_net_cached(self)
        return self._compiled

    def content_hash(self) -> str:
        """The canonical SHA-256 content hash of this net.

        Deterministic over name, alphabet, places, the tid-keyed
        transition relation, the initial marking and the guards — and
        stable across the lossless load formats: astg/TINA/PNML/JSON
        round-trips of the same net hash equal (the
        :meth:`structurally_equal` contract, pinned on the corpus by
        ``tests/cache/test_content_hash.py``).  Computed fresh per call;
        see :func:`repro.cache.content.net_content_hash`.
        """
        from repro.cache.content import net_content_hash

        return net_content_hash(self)

    def used_actions(self) -> set[Action]:
        """Labels that actually occur on transitions."""
        return {t.action for t in self.transitions.values()}

    def arcs(self) -> int:
        """Total number of arcs (place->transition plus transition->place)."""
        return sum(len(t.preset) + len(t.postset) for t in self.transitions.values())

    # -- dynamics (Definition 2.2) -----------------------------------------

    def is_enabled(self, transition: Transition, marking: Marking) -> bool:
        """A transition can fire iff every preset place holds a token."""
        return all(marking[place] > 0 for place in transition.preset)

    def enabled_transitions(self, marking: Marking) -> list[Transition]:
        """All transitions enabled in ``marking``, in tid order."""
        return [
            t for t in self.sorted_transitions() if self.is_enabled(t, marking)
        ]

    def fire(
        self, transition: Transition, marking: Marking, check: bool = True
    ) -> Marking:
        """Fire an enabled transition and return the successor marking.

        Implements Definition 2.2: tokens are removed from ``preset \\
        postset``, added to ``postset \\ preset`` and left untouched on
        self-loop places (which must still be marked for enabling).

        ``check=False`` skips the enabledness re-check for callers that
        have already filtered on :meth:`is_enabled` (the exploration
        engines fire only transitions from an enabled set).
        """
        if check and not self.is_enabled(transition, marking):
            raise ValueError(f"{transition!r} is not enabled in {marking!r}")
        return marking.fire(transition.consume, transition.produce)

    # -- copying / renaming ----------------------------------------------

    def copy(self, name: str | None = None) -> "PetriNet":
        """A structural deep copy (transitions keep their tids)."""
        net = PetriNet(name or self.name, self.actions, self.places, self.initial)
        net.transitions = dict(self.transitions)
        net.input_guards = dict(self.input_guards)
        net._next_tid = self._next_tid
        return net

    def renamed_places(
        self, mapping: Mapping[Place, Place], name: str | None = None
    ) -> "PetriNet":
        """A copy with places renamed through ``mapping``.

        Unlisted places keep their name.  The mapping must not merge two
        distinct places.
        """
        targets: dict[Place, Place] = {}
        for place in self.places:
            target = mapping.get(place, place)
            if target in targets.values() and place not in mapping:
                pass  # collision check below catches real merges
            targets[place] = target
        if len(set(targets.values())) != len(targets):
            raise ValueError("place renaming merges distinct places")
        net = PetriNet(
            name or self.name,
            self.actions,
            targets.values(),
            self.initial.rename(targets),
        )
        for tid, t in self.transitions.items():
            net.transitions[tid] = Transition(
                tid,
                frozenset(targets[p] for p in t.preset),
                t.action,
                frozenset(targets[p] for p in t.postset),
            )
        net.input_guards = {
            (targets[place], tid): guard
            for (place, tid), guard in self.input_guards.items()
        }
        net._next_tid = self._next_tid
        return net

    def prefixed_places(self, prefix: str, name: str | None = None) -> "PetriNet":
        """A copy with every place name prefixed (for disjoint unions)."""
        return self.renamed_places({p: f"{prefix}{p}" for p in self.places}, name)

    def with_fresh_tids(self, start: int) -> "PetriNet":
        """A copy whose transition ids are renumbered from ``start``."""
        net = PetriNet(self.name, self.actions, self.places, self.initial)
        old_to_new: dict[int, int] = {}
        tid = start
        for old_tid, t in sorted(self.transitions.items()):
            net.transitions[tid] = replace(t, tid=tid)
            old_to_new[old_tid] = tid
            tid += 1
        net.input_guards = {
            (place, old_to_new[old_tid]): guard
            for (place, old_tid), guard in self.input_guards.items()
        }
        net._next_tid = tid
        return net

    # -- validation / reporting ------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on violation."""
        for place in self.initial:
            if place not in self.places:
                raise ValueError(f"initially marked place {place!r} not in P")
        for tid, t in self.transitions.items():
            if tid != t.tid:
                raise ValueError(f"transition {t!r} keyed under wrong id {tid}")
            if t.action not in self.actions:
                raise ValueError(f"label {t.action!r} of {t!r} not in alphabet")
            for place in t.places():
                if place not in self.places:
                    raise ValueError(f"place {place!r} of {t!r} not in P")
        for (place, tid), _ in self.input_guards.items():
            if tid not in self.transitions:
                raise ValueError(f"guard on arc to unknown transition {tid}")
            if place not in self.transitions[tid].preset:
                raise ValueError(f"guard on non-existent arc {place!r}->{tid}")

    def structurally_equal(self, other: "PetriNet") -> bool:
        """Exact structural identity: same name, alphabet, places,
        initial marking, transition relation (keyed by tid) and guards
        (compared by their textual form).

        This is the round-trip contract of the lossless formats
        (``.json``, ``.pnml``, ``.net``) — stricter than language
        equivalence, weaker than object identity.
        """
        if not isinstance(other, PetriNet):
            return NotImplemented
        return (
            self.name == other.name
            and self.actions == other.actions
            and self.places == other.places
            and self.initial == other.initial
            and {
                tid: (t.preset, t.action, t.postset)
                for tid, t in self.transitions.items()
            }
            == {
                tid: (t.preset, t.action, t.postset)
                for tid, t in other.transitions.items()
            }
            and {key: str(guard) for key, guard in self.input_guards.items()}
            == {key: str(guard) for key, guard in other.input_guards.items()}
        )

    def stats(self) -> dict[str, int]:
        """Size statistics: places, transitions, arcs, tokens."""
        return {
            "places": len(self.places),
            "transitions": len(self.transitions),
            "arcs": self.arcs(),
            "tokens": self.initial.total(),
        }

    def __repr__(self) -> str:
        return (
            f"PetriNet({self.name!r}, |P|={len(self.places)},"
            f" |T|={len(self.transitions)}, |A|={len(self.actions)})"
        )


def disjoint_pair(
    n1: PetriNet, n2: PetriNet, sep: str = "."
) -> tuple[PetriNet, PetriNet]:
    """Return copies of ``n1``/``n2`` with disjoint places and transition ids.

    The paper's binary operators all require ``P1 /\\ P2 = {}``; this helper
    establishes that precondition by prefixing colliding place names with
    the net names (or positional prefixes when the names collide too).
    """
    common = n1.places & n2.places
    if common:
        prefix1 = f"{n1.name}{sep}" if n1.name != n2.name else f"L{sep}"
        prefix2 = f"{n2.name}{sep}" if n1.name != n2.name else f"R{sep}"
        n1 = n1.prefixed_places(prefix1)
        n2 = n2.prefixed_places(prefix2)
    else:
        n1 = n1.copy()
        n2 = n2.copy()
    n2 = n2.with_fresh_tids(start=(max(n1.transitions, default=-1) + 1))
    return n1, n2
