"""Structural Petri net theory: incidence matrices, invariants, siphons, traps.

The paper argues (Sections 1, 4, 5) that working at the net level avoids
state-space explosion; structural techniques are the toolbox that makes
net-level reasoning effective.  This module provides:

* the incidence matrix and token-conservation equation,
* minimal-support place and transition invariants (semiflows) via the
  Farkas/Fourier-Motzkin algorithm, exact over the integers,
* structural boundedness (a positive place weighting non-increased by
  any firing),
* siphons and traps, used for structural liveness reasoning.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

import numpy as np

from repro.petri.net import PetriNet


def incidence_matrix(net: PetriNet) -> tuple[list[str], list[int], np.ndarray]:
    """The incidence matrix ``C`` with ``C[i, j] = post(t_j, p_i) - pre(t_j, p_i)``.

    Returns ``(places, tids, C)`` with rows ordered by sorted place name
    and columns by sorted transition id.  Self-loop places contribute 0
    (consume one, produce one), matching the firing rule of Definition 2.2.
    """
    places = sorted(net.places)
    tids = sorted(net.transitions)
    index = {place: i for i, place in enumerate(places)}
    matrix = np.zeros((len(places), len(tids)), dtype=np.int64)
    for column, tid in enumerate(tids):
        transition = net.transitions[tid]
        for place in transition.preset - transition.postset:
            matrix[index[place], column] -= 1
        for place in transition.postset - transition.preset:
            matrix[index[place], column] += 1
    return places, tids, matrix


class SemiflowBudgetError(RuntimeError):
    """Semiflow enumeration exceeded its vector budget.

    Raised instead of silently dropping candidate vectors: a truncated
    basis treated as complete would be unsound for any conclusion that
    relies on completeness (e.g. "no invariant covers this place").
    ``vectors`` is the number of candidates alive when the budget
    ``max_vectors`` was exceeded, ``column`` the incidence column under
    elimination at that point.
    """

    def __init__(self, vectors: int, max_vectors: int, column: int):
        self.vectors = vectors
        self.max_vectors = max_vectors
        self.column = column
        super().__init__(
            f"semiflow enumeration exceeded the vector budget:"
            f" {vectors} candidate vectors > max_vectors={max_vectors}"
            f" while eliminating column {column}; raise max_vectors, or"
            f" use the *_partial API to accept an explicitly-truncated"
            f" basis"
        )


def _minimal_semiflows(
    matrix: np.ndarray,
    max_vectors: int = 4096,
    on_budget: str = "raise",
) -> tuple[list[np.ndarray], bool]:
    """Minimal-support non-negative integer solutions of ``x^T . matrix = 0``.

    Classical Farkas algorithm: start from the identity alongside the
    matrix, eliminate one column at a time by combining rows of opposite
    sign, keep minimal-support rows.  Exact integer arithmetic throughout.

    Returns ``(vectors, truncated)``.  When the intermediate table
    exceeds ``max_vectors``, ``on_budget`` selects the behavior:
    ``"raise"`` (default) raises :class:`SemiflowBudgetError`;
    ``"truncate"`` drops the excess candidates, continues, and reports
    ``truncated=True``.  Every vector returned by the truncating mode is
    still a genuine semiflow (truncation only loses completeness, never
    validity: surviving rows are fully eliminated like any other).
    """
    if on_budget not in ("raise", "truncate"):
        raise ValueError(
            f"unknown on_budget mode {on_budget!r};"
            " expected 'raise' or 'truncate'"
        )
    rows, cols = matrix.shape
    truncated = False
    # Each entry: (coefficients over original rows, residual matrix row).
    table: list[tuple[np.ndarray, np.ndarray]] = [
        (np.eye(rows, dtype=object)[i], matrix[i].astype(object)) for i in range(rows)
    ]
    for column in range(cols):
        positive = [entry for entry in table if entry[1][column] > 0]
        negative = [entry for entry in table if entry[1][column] < 0]
        zero = [entry for entry in table if entry[1][column] == 0]
        combined: list[tuple[np.ndarray, np.ndarray]] = list(zero)
        for coeff_p, row_p in positive:
            if truncated and len(combined) >= max_vectors:
                break
            for coeff_n, row_n in negative:
                weight_p = -row_n[column]
                weight_n = row_p[column]
                coeff = coeff_p * weight_p + coeff_n * weight_n
                gcd = np.gcd.reduce([int(v) for v in coeff if v] or [1])
                if gcd > 1:
                    coeff = coeff // gcd
                residual = (row_p * weight_p + row_n * weight_n) // gcd
                combined.append((coeff, residual))
                if len(combined) > max_vectors:
                    if on_budget == "raise":
                        raise SemiflowBudgetError(
                            len(combined), max_vectors, column
                        )
                    truncated = True
                    combined = combined[:max_vectors]
                    break
        table = combined
    # Keep minimal-support, non-zero solutions.
    solutions = [coeff for coeff, _ in table if any(coeff)]
    supports = [frozenset(np.nonzero(vector)[0].tolist()) for vector in solutions]
    minimal: list[np.ndarray] = []
    seen: set[frozenset[int]] = set()
    for i, vector in enumerate(solutions):
        if supports[i] in seen:
            continue
        if any(
            supports[j] < supports[i] for j in range(len(solutions)) if j != i
        ):
            continue
        seen.add(supports[i])
        minimal.append(vector.astype(np.int64))
    return minimal, truncated


def p_invariants(
    net: PetriNet, max_vectors: int = 4096
) -> list[dict[str, int]]:
    """Minimal-support place invariants (P-semiflows).

    A P-invariant ``x >= 0`` satisfies ``x^T C = 0``: the weighted token
    count ``x . M`` is constant over all reachable markings.

    Raises :class:`SemiflowBudgetError` when enumeration exceeds the
    vector budget; use :func:`p_invariants_partial` to accept an
    explicitly-truncated basis instead.
    """
    vectors, _ = p_invariants_partial(
        net, max_vectors=max_vectors, on_budget="raise"
    )
    return vectors


def p_invariants_partial(
    net: PetriNet, max_vectors: int = 4096, on_budget: str = "truncate"
) -> tuple[list[dict[str, int]], bool]:
    """Like :func:`p_invariants` but budget-tolerant.

    Returns ``(invariants, truncated)``.  When ``truncated`` is true the
    basis is incomplete — every returned invariant is still valid (each
    is a genuine semiflow), but absence from the list proves nothing.
    Callers that rely on completeness (e.g. invariant *coverage*) must
    check the flag.
    """
    places, _, matrix = incidence_matrix(net)
    if not places or matrix.shape[1] == 0:
        return [], False
    vectors, truncated = _minimal_semiflows(
        matrix, max_vectors=max_vectors, on_budget=on_budget
    )
    return [
        {places[i]: int(v) for i, v in enumerate(vector) if v}
        for vector in vectors
    ], truncated


def t_invariants(
    net: PetriNet, max_vectors: int = 4096
) -> list[dict[int, int]]:
    """Minimal-support transition invariants (T-semiflows).

    A T-invariant ``y >= 0`` satisfies ``C y = 0``: firing each transition
    ``y[t]`` times reproduces the marking (cyclic behaviour).

    Raises :class:`SemiflowBudgetError` when enumeration exceeds the
    vector budget; use :func:`t_invariants_partial` to accept an
    explicitly-truncated basis instead.
    """
    vectors, _ = t_invariants_partial(
        net, max_vectors=max_vectors, on_budget="raise"
    )
    return vectors


def t_invariants_partial(
    net: PetriNet, max_vectors: int = 4096, on_budget: str = "truncate"
) -> tuple[list[dict[int, int]], bool]:
    """Like :func:`t_invariants` but budget-tolerant; see
    :func:`p_invariants_partial` for the soundness contract."""
    _, tids, matrix = incidence_matrix(net)
    if not tids or matrix.shape[0] == 0:
        return [], False
    vectors, truncated = _minimal_semiflows(
        matrix.T, max_vectors=max_vectors, on_budget=on_budget
    )
    return [
        {tids[i]: int(v) for i, v in enumerate(vector) if v} for vector in vectors
    ], truncated


def invariant_value(invariant: dict[str, int], marking) -> int:
    """The conserved quantity ``x . M`` of a P-invariant in a marking."""
    return sum(weight * marking[place] for place, weight in invariant.items())


def is_covered_by_p_invariants(net: PetriNet) -> bool:
    """``True`` iff every place has positive weight in some P-invariant.

    Coverage by P-invariants implies structural boundedness.
    """
    covered: set[str] = set()
    for invariant in p_invariants(net):
        covered.update(invariant)
    return covered >= net.places


def is_structurally_bounded(net: PetriNet) -> bool:
    """``True`` iff a strictly positive place weighting exists that no
    firing can increase (``exists x > 0 with x^T C <= 0``).

    Structural boundedness implies boundedness for *every* initial
    marking.  Solved exactly with Fourier-Motzkin over rationals for the
    small nets of this domain.
    """
    places, _, matrix = incidence_matrix(net)
    if not places:
        return True
    # x^T C <= 0, x >= 1 feasibility via scipy linprog (exact enough at
    # this scale; certificates are integral for integral C).
    from scipy.optimize import linprog

    count = len(places)
    result = linprog(
        c=np.ones(count),
        A_ub=matrix.T.astype(float),
        b_ub=np.zeros(matrix.shape[1]),
        bounds=[(1, None)] * count,
        method="highs",
    )
    return bool(result.success)


def fraction_rank(matrix: np.ndarray) -> int:
    """Exact rank of an integer matrix over the rationals."""
    working = [[Fraction(int(v)) for v in row] for row in matrix]
    rows = len(working)
    cols = len(working[0]) if rows else 0
    rank = 0
    for column in range(cols):
        pivot_row = next(
            (r for r in range(rank, rows) if working[r][column] != 0), None
        )
        if pivot_row is None:
            continue
        working[rank], working[pivot_row] = working[pivot_row], working[rank]
        pivot = working[rank][column]
        working[rank] = [v / pivot for v in working[rank]]
        for r in range(rows):
            if r != rank and working[r][column] != 0:
                factor = working[r][column]
                working[r] = [
                    v - factor * w for v, w in zip(working[r], working[rank])
                ]
        rank += 1
        if rank == rows:
            break
    return rank


# -- siphons and traps -------------------------------------------------------


def preset_transitions(net: PetriNet, places: frozenset[str]) -> set[int]:
    """Transitions producing into any of the given places."""
    return {
        tid
        for tid, transition in net.transitions.items()
        if transition.postset & places
    }


def postset_transitions(net: PetriNet, places: frozenset[str]) -> set[int]:
    """Transitions consuming from any of the given places."""
    return {
        tid
        for tid, transition in net.transitions.items()
        if transition.preset & places
    }


def is_siphon(net: PetriNet, places: frozenset[str]) -> bool:
    """A siphon's producers are a subset of its consumers.

    Once a siphon is empty it stays empty — empty siphons witness
    (partial) deadlock.
    """
    if not places:
        return False
    return preset_transitions(net, places) <= postset_transitions(net, places)


def is_trap(net: PetriNet, places: frozenset[str]) -> bool:
    """A trap's consumers are a subset of its producers.

    Once a trap is marked it stays marked.
    """
    if not places:
        return False
    return postset_transitions(net, places) <= preset_transitions(net, places)


def minimal_siphons(net: PetriNet, max_size: int | None = None) -> list[frozenset[str]]:
    """All minimal siphons up to ``max_size`` places (exhaustive search).

    Exponential in general — the paper's nets are small; a budget guard
    raises ``RuntimeError`` on pathological inputs.
    """
    return _minimal_place_sets(net, is_siphon, max_size)


def minimal_traps(net: PetriNet, max_size: int | None = None) -> list[frozenset[str]]:
    """All minimal traps up to ``max_size`` places (exhaustive search)."""
    return _minimal_place_sets(net, is_trap, max_size)


def _minimal_place_sets(
    net: PetriNet, predicate, max_size: int | None, budget: int = 2_000_000
) -> list[frozenset[str]]:
    places = sorted(net.places)
    limit = max_size if max_size is not None else len(places)
    found: list[frozenset[str]] = []
    examined = 0
    for size in range(1, limit + 1):
        for subset in combinations(places, size):
            examined += 1
            if examined > budget:
                raise RuntimeError("siphon/trap enumeration exceeded budget")
            candidate = frozenset(subset)
            if any(existing <= candidate for existing in found):
                continue
            if predicate(net, candidate):
                found.append(candidate)
    return found


def siphon_trap_property(net: PetriNet) -> bool:
    """Commoner's condition: every minimal siphon contains an initially
    marked trap.  For free-choice nets this is equivalent to liveness.
    """
    marked = net.initial.marked_places()
    for siphon in minimal_siphons(net):
        if not _contains_marked_trap(net, siphon, marked):
            return False
    return True


def _contains_marked_trap(
    net: PetriNet, siphon: frozenset[str], marked: frozenset[str]
) -> bool:
    # The maximal trap inside a set is computed by iteratively removing
    # places whose consumers are not all producers of the set.
    current = set(siphon)
    changed = True
    while changed and current:
        changed = False
        producers = preset_transitions(net, frozenset(current))
        for place in list(current):
            consumers = {
                tid
                for tid, t in net.transitions.items()
                if place in t.preset
            }
            if not consumers <= producers:
                current.discard(place)
                changed = True
    return bool(current & marked)
