"""Interactive and random token-game simulation.

A light-weight execution engine for nets and STGs: step through
enabled transitions, replay recorded traces, and run seeded random
walks with invariant monitors.  Useful for debugging derived nets and
for quick statistical exploration where exhaustive reachability is
unnecessary.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.petri.marking import Marking
from repro.petri.net import PetriNet, Transition


class SimulationError(Exception):
    """Replaying an impossible step or violating a monitor."""


@dataclass
class TokenGame:
    """A mutable simulation session over an immutable net."""

    net: PetriNet
    marking: Marking = field(default=None)  # type: ignore[assignment]
    history: list[tuple[int, str]] = field(default_factory=list)

    def __post_init__(self):
        if self.marking is None:
            self.marking = self.net.initial

    # -- stepping ---------------------------------------------------------

    def enabled(self) -> list[Transition]:
        """Transitions currently enabled, in tid order."""
        return self.net.enabled_transitions(self.marking)

    def can_fire(self, action: str) -> bool:
        return any(t.action == action for t in self.enabled())

    def fire_tid(self, tid: int) -> Marking:
        """Fire a specific transition by id."""
        transition = self.net.transitions[tid]
        if not self.net.is_enabled(transition, self.marking):
            raise SimulationError(f"{transition!r} not enabled in {self.marking!r}")
        self.marking = self.net.fire(transition, self.marking, check=False)
        self.history.append((tid, transition.action))
        return self.marking

    def fire(self, action: str) -> Marking:
        """Fire some enabled transition with the given label (the one
        with the smallest tid when several qualify)."""
        for transition in self.enabled():
            if transition.action == action:
                return self.fire_tid(transition.tid)
        raise SimulationError(
            f"no enabled transition labeled {action!r} in {self.marking!r}"
        )

    def replay(self, trace: Iterable[str]) -> Marking:
        """Fire a whole action sequence (raises on the first impossible
        step)."""
        for action in trace:
            self.fire(action)
        return self.marking

    def undo(self) -> Marking:
        """Rewind one step (replays the history from the initial
        marking; simple, correct, O(history))."""
        if not self.history:
            raise SimulationError("nothing to undo")
        target = self.history[:-1]
        self.marking = self.net.initial
        self.history = []
        for tid, _ in target:
            self.fire_tid(tid)
        return self.marking

    def reset(self) -> Marking:
        self.marking = self.net.initial
        self.history = []
        return self.marking

    def trace(self) -> tuple[str, ...]:
        """The action sequence fired so far."""
        return tuple(action for _, action in self.history)


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a random walk."""

    steps: int
    trace: tuple[str, ...]
    final: Marking
    deadlocked: bool
    monitor_failures: tuple[str, ...]


def random_walk(
    net: PetriNet,
    steps: int = 1000,
    seed: int = 0,
    monitors: Sequence[tuple[str, Callable[[Marking], bool]]] = (),
    weights: dict[str, float] | None = None,
) -> WalkResult:
    """A seeded random execution with per-marking invariant monitors.

    ``monitors`` are ``(name, predicate)`` pairs evaluated after every
    step; a failing predicate stops the walk.  ``weights`` bias the
    choice among enabled transitions by action label (default uniform).
    """
    rng = random.Random(seed)
    game = TokenGame(net)
    failures: list[str] = []
    deadlocked = False
    taken = 0
    for _ in range(steps):
        enabled = game.enabled()
        if not enabled:
            deadlocked = True
            break
        if weights:
            population = enabled
            chosen = rng.choices(
                population,
                weights=[weights.get(t.action, 1.0) for t in population],
            )[0]
        else:
            chosen = rng.choice(enabled)
        game.fire_tid(chosen.tid)
        taken += 1
        for name, predicate in monitors:
            if not predicate(game.marking):
                failures.append(name)
        if failures:
            break
    return WalkResult(
        steps=taken,
        trace=game.trace(),
        final=game.marking,
        deadlocked=deadlocked,
        monitor_failures=tuple(failures),
    )


def estimate_action_frequencies(
    net: PetriNet, steps: int = 10_000, seed: int = 0
) -> dict[str, float]:
    """Relative firing frequency per action over a long random walk —
    a cheap throughput/bias profile of a module."""
    result = random_walk(net, steps=steps, seed=seed)
    if not result.trace:
        return {}
    counts: dict[str, int] = {}
    for action in result.trace:
        counts[action] = counts.get(action, 0) + 1
    total = len(result.trace)
    return {action: count / total for action, count in sorted(counts.items())}
