"""Sharded parallel state-space exploration with spill-to-disk visited sets.

The compiled core (:mod:`repro.petri.compiled`) made states cheap to
hash, compare and *ship across process boundaries*: a packed marking is
a ``bytes`` (or small tuple) value with no interpreter state attached.
This module cashes that in.  The reachable state space is partitioned
by a stable hash of the packed state: worker ``i`` of ``N`` *owns*
every state with ``crc32(key) % N == i``, keeps that shard's visited
set (a :class:`~repro.petri.visited.VisitedStore`, so shards spill to
disk past a byte budget), and expands only states it owns.  Successors
that hash to another shard are buffered per destination and exchanged
in batches over ``multiprocessing`` queues.

Determinism guarantees (see ``docs/PERFORMANCE.md`` §6):

* **Counts and verdicts are schedule-independent.**  Every reachable
  state is owned by exactly one worker and expanded exactly once, so
  the state count, edge count, deadlock set, fired-transition set and
  any per-state predicate verdict (e.g. the Prop 5.5 obligations) are
  identical across worker counts and identical to the serial engines —
  the property the cross-engine parity suite
  (``tests/petri/test_parallel_differential.py``) enforces.
* **Witnesses are canonicalised.**  Discovery *order* does depend on
  the schedule, so per-obligation failure witnesses are chosen as the
  minimum packed state over all matches — again schedule-independent.
* **``workers=1`` degrades to serial.**  A single worker runs the
  sharded loop in-process (no subprocesses, no queues) in exactly the
  serial engines' BFS discovery order, still through the spillable
  visited store — this is the ``--memory-budget``-only path.

Termination uses the two-wave counting protocol (Mattern's
double-counting): the coordinator repeatedly probes all workers; each
replies with its cumulative ``(batches sent, batches received)``
counters plus an idle flag (frontier empty *and* all outgoing buffers
flushed).  Termination is declared only after two consecutive waves in
which every worker is idle and the global totals are identical and
balanced (``received == sent + the coordinator's seed``).  A single
balanced wave is *not* enough — counters are read at different moments
per worker, so a newer receiver snapshot can offset a missing sender
snapshot while a message is still in flight; equality across two
waves rules that out (no sends happened between the waves, so every
counted message was also consumed).

On ``backend="compiled"`` the explorer picks a **1-safe bitmask
kernel** whenever the compiled net is eligible (byte codec, <=1-token
initial marking): states become single ints, enabledness one mask
compare, firing two bitwise ops — the lean inner loop that lets the
sharded explorer beat the serial graph builder in wall-clock even
per-core.  Eligibility is optimistic: every firing checks that no
produced place is already marked (arcs are structurally unit-weight,
so that test is exactly "a second token"), and on the first violation
the whole exploration restarts transparently on the general packed
kernel.  Counts, deadlock sets and verdicts are identical either way;
only the per-obligation witness *tie-break* key is kernel-specific
(still deterministic for a given net across runs and worker counts).

Deliberate non-goals, documented rather than approximated:

* no Karp-Miller covering detection (the serial engines' ancestor
  chains do not exist across shards) — genuinely unbounded nets abort
  via the ``max_states`` budget instead of being *proven* unbounded;
* no counterexample traces (discovery-parent pointers would dangle
  across shards); receptiveness failures carry witness markings only,
  exactly like the eager engine.
"""

from __future__ import annotations

import queue as queue_mod
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.obs import metrics as obs
from repro.petri.compiled import CompiledNet, resolve_backend
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph, UnboundedNetError
from repro.petri.visited import VisitedStore, pack_wide_key

#: Hard cap on worker processes; above this the exchange fan-out
#: dominates any machine we target.
MAX_WORKERS = 64

#: Cross-shard successors buffered per destination before a batch is
#: shipped (larger batches amortise pickling; smaller bound latency).
BATCH_SIZE = 512

#: Frontier states expanded between inbox drains, so cross-shard
#: batches and termination probes keep flowing while a worker has
#: local work (this bounds probe-reply latency).
CHUNK = 512

#: Seconds an idle worker blocks on its inbox per poll.
_IDLE_POLL = 0.02

#: Coordinator pause between probe waves while workers are busy.
_WAVE_PAUSE = 0.005

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def resolve_workers(workers: int | None) -> int:
    """Validate a worker count, mapping ``None`` to 1 (serial)."""
    if workers is None:
        return 1
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ValueError(f"worker count must be an integer, got {workers!r}")
    if not 1 <= workers <= MAX_WORKERS:
        raise ValueError(
            f"worker count must be between 1 and {MAX_WORKERS},"
            f" got {workers}"
        )
    return workers


def parse_memory_budget(text: str) -> int:
    """Parse a byte budget: a non-negative integer with an optional
    ``K``/``M``/``G`` binary suffix (``64M`` == 64 MiB).  Raises
    ``ValueError`` on anything else."""
    raw = text.strip()
    multiplier = 1
    if raw and raw[-1].lower() in _SUFFIXES:
        multiplier = _SUFFIXES[raw[-1].lower()]
        raw = raw[:-1]
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid memory budget {text!r}; expected BYTES with an"
            " optional K/M/G suffix (e.g. 64M)"
        ) from None
    if value < 0:
        raise ValueError(f"memory budget must be >= 0, got {text!r}")
    return value * multiplier


def _shard_of(key: bytes, nworkers: int) -> int:
    """Stable shard assignment: hash-randomisation-free, identical in
    every process regardless of start method or ``PYTHONHASHSEED``."""
    return zlib.crc32(key) % nworkers


# -- kernels -----------------------------------------------------------------
#
# A kernel is the per-worker exploration core: it rebuilds from a plain
# picklable spec, expands one node at a time, and maps nodes to stable
# bytes keys (for sharding and the visited store) and wire forms (for
# cross-shard batches).  Two kernels mirror the two state backends; a
# third (the bitmask kernel) is a 1-safe fast path over the compiled
# arrays that the explorer selects automatically and abandons — by
# restarting on the general packed kernel — the moment a firing would
# put a second token anywhere.


class _BitmaskOverflow(Exception):
    """A bitmask-kernel firing produced a second token in some place:
    the net is not 1-safe, the bit-vector representation is invalid
    from here on, and the exploration must restart on the general
    packed kernel.  Raised per worker, handled by the coordinator."""


#: byte -> 8 token-count bytes (bit ``i`` of the byte is place
#: ``8 * position + i``), for expanding bitmask states back into the
#: ``bytes``-codec count vectors the rest of the pipeline speaks.
_EXPAND = tuple(
    bytes((value >> bit) & 1 for bit in range(8)) for value in range(256)
)


def _bitmask_eligible(cnet: CompiledNet) -> bool:
    """Static half of the 1-safe check: the byte codec and a <=1-token
    initial marking.  (Arc weights are structurally 1: transitions are
    preset/postset *sets*.)  The dynamic half is the per-firing overflow
    test in :meth:`_BitmaskKernel.expand`."""
    return cnet.codec == "bytes" and (
        not cnet.initial_state or max(cnet.initial_state) <= 1
    )


class _BitmaskKernel:
    """1-safe fast path (``backend="compiled"`` on eligible nets).

    A node is a single int — bit ``i`` set iff place ``i`` is marked —
    so enabledness is one mask compare, firing is two bitwise ops, and
    the wire form is the int itself.  Soundness rests on the running
    1-safety invariant: states start <=1-token and every firing checks
    that no produced place is already marked (``produce`` is disjoint
    from ``preset`` by construction, so ``state & produce_mask != 0``
    is exactly a second token), raising :class:`_BitmaskOverflow`
    otherwise.
    """

    __slots__ = ("trans", "init_mask", "key_width", "num_places", "obligations")

    def __init__(self, spec):
        self.trans, self.init_mask, self.key_width, self.num_places = spec
        self.obligations: list[tuple[int, int, tuple[int, ...]]] = []

    @staticmethod
    def spec_of(cnet: CompiledNet):
        trans = tuple(
            (
                dense,
                sum(1 << i for i in cnet.pre[dense]),
                sum(1 << i for i in cnet.consume[dense]),
                sum(1 << i for i in cnet.produce[dense]),
            )
            for dense in range(cnet.num_transitions)
        )
        init_mask = 0
        for i, count in enumerate(cnet.initial_state):
            if count:
                init_mask |= 1 << i
        key_width = max(1, (cnet.num_places + 7) // 8)
        return (trans, init_mask, key_width, cnet.num_places)

    def load_obligations(self, lowered) -> None:
        self.obligations = [
            (
                index,
                sum(1 << i for i in producer),
                tuple(
                    sum(1 << i for i in preset) for preset in consumers
                ),
            )
            for index, producer, consumers in lowered
        ]

    def seed_wire(self):
        return self.init_mask

    def node_of_wire(self, wire):
        return wire

    def wire_of_node(self, node):
        return node

    def key_of_node(self, node) -> bytes:
        return node.to_bytes(self.key_width, "little")

    def state_of_node(self, node):
        expand = _EXPAND
        raw = b"".join(
            expand[byte] for byte in node.to_bytes(self.key_width, "little")
        )
        return raw[: self.num_places]

    def expand(self, node):
        children = []
        count = 0
        for dense, pre_mask, consume_mask, produce_mask in self.trans:
            if node & pre_mask == pre_mask:
                count += 1
                if node & produce_mask:
                    raise _BitmaskOverflow(dense)
                children.append((dense, (node ^ consume_mask) | produce_mask))
        return count, children

    def failing_obligations(self, node):
        if not self.obligations:
            return ()
        hits = []
        for index, producer, consumers in self.obligations:
            if node & producer == producer and not any(
                node & preset == preset for preset in consumers
            ):
                hits.append(index)
        return hits


class _PackedKernel:
    """Packed-state kernel over the compiled arrays (``backend="compiled"``).

    A node is ``(state, deficits, enabled)`` exactly as in
    :class:`~repro.petri.compiled.CompiledSpace`; the wire form drops
    ``enabled`` (recomputed from the deficits by the receiving shard, a
    linear scan that is far cheaper than shipping it).
    """

    __slots__ = ("cnet", "is_bytes", "obligations")

    def __init__(self, spec):
        cnet = CompiledNet.__new__(CompiledNet)
        (
            cnet.codec,
            cnet.num_places,
            cnet.num_transitions,
            cnet.pre,
            cnet.consume,
            cnet.produce,
            cnet.consumers,
            cnet.initial_state,
        ) = spec
        self.cnet = cnet
        self.is_bytes = cnet.codec == "bytes"
        self.obligations: list[tuple[int, tuple, tuple]] = []

    @staticmethod
    def spec_of(cnet: CompiledNet):
        return (
            cnet.codec,
            cnet.num_places,
            cnet.num_transitions,
            cnet.pre,
            cnet.consume,
            cnet.produce,
            cnet.consumers,
            cnet.initial_state,
        )

    def load_obligations(self, lowered) -> None:
        self.obligations = list(lowered)

    def seed_wire(self):
        return (self.cnet.initial_state, None)

    def node_of_wire(self, wire):
        state, deficits = wire
        if deficits is None:
            deficits, enabled = self.cnet.analyze_state(state)
        else:
            enabled = tuple(
                dense for dense, deficit in enumerate(deficits) if not deficit
            )
        return (state, deficits, enabled)

    def wire_of_node(self, node):
        return (node[0], node[1])

    def key_of_node(self, node) -> bytes:
        state = node[0]
        return state if self.is_bytes else pack_wide_key(state)

    def state_of_node(self, node):
        return node[0]

    def expand(self, node):
        """``(edge_count, [(label_index, child_node), ...])`` — one edge
        per enabled transition, children in dense-index order."""
        state, deficits, enabled = node
        successor = self.cnet.successor
        children = []
        for dense in enabled:
            child, child_deficits, child_enabled, _ = successor(
                state, deficits, enabled, dense
            )
            children.append((dense, (child, child_deficits, child_enabled)))
        return len(enabled), children

    def failing_obligations(self, node):
        state = node[0]
        hits = []
        for index, producer, consumers in self.obligations:
            if all(state[i] for i in producer) and not any(
                all(state[i] for i in preset) for preset in consumers
            ):
                hits.append(index)
        return hits


class _DictKernel:
    """Marking-domain kernel (``backend="dict"``): the reference path.

    Nodes are :class:`Marking` objects; the wire/key form is the sorted
    ``(place, count)`` item tuple (canonical and hash-seed-free).  The
    net travels as its JSON dict, so the kernel never depends on
    ``PetriNet`` pickling details.
    """

    __slots__ = ("net", "obligations")

    def __init__(self, spec):
        from repro.io.json_io import net_from_dict

        self.net = net_from_dict(spec)
        self.obligations: list[tuple[int, tuple, tuple]] = []

    @staticmethod
    def spec_of(net: PetriNet):
        from repro.io.json_io import net_to_dict

        return net_to_dict(net)

    def load_obligations(self, lowered) -> None:
        self.obligations = list(lowered)

    def seed_wire(self):
        return tuple(sorted(self.net.initial.items()))

    def node_of_wire(self, wire):
        return Marking._fresh(dict(wire))

    def wire_of_node(self, node):
        return tuple(sorted(node.items()))

    def key_of_node(self, node) -> bytes:
        return repr(tuple(sorted(node.items()))).encode("utf-8")

    def state_of_node(self, node):
        return tuple(sorted(node.items()))

    def expand(self, node):
        children = []
        count = 0
        for transition in self.net.enabled_transitions(node):
            count += 1
            child = self.net.fire(transition, node, check=False)
            children.append((transition.tid, child))
        return count, children

    def failing_obligations(self, node):
        hits = []
        for index, producer, consumers in self.obligations:
            if all(node[p] > 0 for p in producer) and not any(
                all(node[p] > 0 for p in preset) for preset in consumers
            ):
                hits.append(index)
        return hits


#: Kernel *kind*: the two backend kernels plus the 1-safe fast path.
_KERNELS = {
    "compiled": _PackedKernel,
    "dict": _DictKernel,
    "bitmask": _BitmaskKernel,
}


def _build_kernel(kind: str, spec):
    return _KERNELS[kind](spec)


def _spec_of(kind: str, net: PetriNet, cnet: CompiledNet | None):
    if kind == "bitmask":
        return _BitmaskKernel.spec_of(cnet)
    if kind == "compiled":
        return _PackedKernel.spec_of(cnet)
    return _DictKernel.spec_of(net)


# -- the per-shard exploration loop ------------------------------------------


class _Shard:
    """One shard's state: visited store, frontier, counters, results.

    Used identically by subprocess workers and the in-process
    ``workers=1`` path, so both report the same numbers the same way.
    """

    __slots__ = (
        "kernel",
        "worker_id",
        "nworkers",
        "visited",
        "frontier",
        "collect_edges",
        "states",
        "edges",
        "frontier_peak",
        "deadlocks",
        "failing",
        "edge_log",
        "cross_sent_states",
    )

    def __init__(
        self,
        kernel,
        worker_id: int,
        nworkers: int,
        memory_budget: int | None,
        collect_edges: bool,
    ):
        self.kernel = kernel
        self.worker_id = worker_id
        self.nworkers = nworkers
        self.visited = VisitedStore(memory_budget)
        self.frontier: deque = deque()
        self.collect_edges = collect_edges
        self.states = 0
        self.edges = 0
        self.frontier_peak = 0
        self.deadlocks: list = []
        #: obligation index -> (min key, state) over this shard.
        self.failing: dict[int, tuple[bytes, Any]] = {}
        self.edge_log: list = []
        self.cross_sent_states = 0

    def accept(self, node, key: bytes | None = None) -> bool:
        """Own a node (first sight from any path): visit, count, run
        the per-state predicates, enqueue for expansion."""
        kernel = self.kernel
        if key is None:
            key = kernel.key_of_node(node)
        if not self.visited.add(key):
            return False
        self.states += 1
        for index in kernel.failing_obligations(node):
            witness = (key, kernel.state_of_node(node))
            best = self.failing.get(index)
            if best is None or witness[0] < best[0]:
                self.failing[index] = witness
        self.frontier.append(node)
        if len(self.frontier) > self.frontier_peak:
            self.frontier_peak = len(self.frontier)
        return True

    def expand(self, node, out_buffers) -> None:
        """Expand one owned node; route children to their shards."""
        kernel = self.kernel
        count, children = kernel.expand(node)
        self.edges += count
        if not count:
            self.deadlocks.append(kernel.state_of_node(node))
            return
        log = self.edge_log if self.collect_edges else None
        if log is not None:
            source = kernel.state_of_node(node)
        nworkers = self.nworkers
        me = self.worker_id
        for label, child in children:
            if log is not None:
                log.append((source, label, kernel.state_of_node(child)))
            if nworkers == 1:
                self.accept(child)
                continue
            key = kernel.key_of_node(child)
            dest = _shard_of(key, nworkers)
            if dest == me:
                self.accept(child, key)
            else:
                out_buffers[dest].append(kernel.wire_of_node(child))
                self.cross_sent_states += 1

    def report(self) -> dict[str, Any]:
        visited = self.visited
        payload = {
            "worker": self.worker_id,
            "states": self.states,
            "edges": self.edges,
            "frontier_peak": self.frontier_peak,
            "deadlocks": self.deadlocks,
            "failing": self.failing,
            "cross_sent_states": self.cross_sent_states,
            "visited_keys": len(visited),
            "visited_memory_keys": visited.memory_keys,
            "spill_count": visited.spill_count,
            "spilled_keys": visited.spilled_keys,
            "edge_log": self.edge_log if self.collect_edges else None,
        }
        return payload


def _worker_main(
    worker_id: int,
    nworkers: int,
    kind: str,
    spec,
    obligations,
    inboxes,
    report_queue,
    memory_budget: int | None,
    collect_edges: bool,
) -> None:
    """Subprocess body: drain inbox, expand owned frontier in chunks,
    exchange batches, answer the coordinator's termination probes."""
    try:
        kernel = _build_kernel(kind, spec)
        kernel.load_obligations(obligations)
        shard = _Shard(kernel, worker_id, nworkers, memory_budget, collect_edges)
        inbox = inboxes[worker_id]
        out_buffers: list[list] = [[] for _ in range(nworkers)]
        sent_batches = 0
        recv_batches = 0
        batches_flush_seconds = 0.0
        batch_flush_max = 0.0

        def flush(dest: int) -> None:
            nonlocal sent_batches, batches_flush_seconds, batch_flush_max
            buffer = out_buffers[dest]
            if not buffer:
                return
            started = time.perf_counter()
            inboxes[dest].put(("batch", buffer))
            elapsed = time.perf_counter() - started
            batches_flush_seconds += elapsed
            if elapsed > batch_flush_max:
                batch_flush_max = elapsed
            sent_batches += 1
            out_buffers[dest] = []

        def handle(message) -> bool:
            """Apply one inbox message; ``True`` means stop."""
            nonlocal recv_batches
            kind = message[0]
            if kind == "batch":
                recv_batches += 1
                node_of_wire = kernel.node_of_wire
                for wire in message[1]:
                    shard.accept(node_of_wire(wire))
                return False
            if kind == "probe":
                # Idle means: nothing to expand AND nothing buffered —
                # an unflushed buffer is an uncounted in-flight message,
                # so claiming idle with one would fake termination.
                idle = not shard.frontier and not any(out_buffers)
                report_queue.put(
                    (
                        "ack",
                        worker_id,
                        message[1],
                        sent_batches,
                        recv_batches,
                        idle,
                        shard.states,
                    )
                )
                return False
            return True  # ("stop",)

        while True:
            stopping = False
            while True:
                try:
                    message = inbox.get_nowait()
                except queue_mod.Empty:
                    break
                if handle(message):
                    stopping = True
                    break
            if stopping:
                break
            if shard.frontier:
                for _ in range(CHUNK):
                    if not shard.frontier:
                        break
                    shard.expand(shard.frontier.popleft(), out_buffers)
                for dest in range(nworkers):
                    if len(out_buffers[dest]) >= BATCH_SIZE:
                        flush(dest)
            else:
                for dest in range(nworkers):
                    flush(dest)
                try:
                    message = inbox.get(timeout=_IDLE_POLL)
                except queue_mod.Empty:
                    continue
                if handle(message):
                    break
        payload = shard.report()
        payload["batches_sent"] = sent_batches
        payload["batches_received"] = recv_batches
        payload["batch_flush_seconds"] = batches_flush_seconds
        payload["batch_flush_max_seconds"] = batch_flush_max
        shard.visited.close()
        report_queue.put(("done", worker_id, payload))
    except _BitmaskOverflow:
        # Not 1-safe after all: tell the coordinator to restart the
        # whole exploration on the general packed kernel.
        report_queue.put(("unsafe", worker_id))
    except Exception:  # pragma: no cover - surfaced by the coordinator
        import traceback

        report_queue.put(("error", worker_id, traceback.format_exc()))


# -- results -----------------------------------------------------------------


@dataclass
class ParallelExploration:
    """Outcome of one sharded exploration.

    ``deadlocks`` and ``failing`` are decoded to the Marking domain and
    canonically ordered (deadlocks by packed key; failure witnesses are
    per-obligation minima), so equal spaces compare equal regardless of
    worker count or schedule.
    """

    backend: str
    workers: int
    states: int
    edges: int
    deadlocks: list[Marking]
    failing: dict[int, Marking] = field(default_factory=dict)
    frontier_peak: int = 0
    worker_reports: list[dict] = field(default_factory=list)
    edge_log: list | None = None

    def deadlock_set(self) -> frozenset[Marking]:
        return frozenset(self.deadlocks)


def _budget_error(net: PetriNet, max_states: int) -> UnboundedNetError:
    return UnboundedNetError(
        f"more than {max_states} reachable states in"
        f" {net.name!r}; net may be unbounded",
        bound=max_states,
    )


def _lower_obligations(obligations, backend: str, cnet: CompiledNet | None):
    """Ship obligations as ``(index, producer, consumer_alternatives)``;
    presets become dense indices on the packed kernel."""
    lowered = []
    for index, (producer_preset, consumer_presets) in enumerate(obligations):
        if backend == "compiled":
            place_index = cnet.place_index
            lowered.append(
                (
                    index,
                    tuple(place_index[p] for p in sorted(producer_preset)),
                    tuple(
                        tuple(place_index[p] for p in sorted(preset))
                        for preset in consumer_presets
                    ),
                )
            )
        else:
            lowered.append(
                (
                    index,
                    tuple(sorted(producer_preset)),
                    tuple(tuple(sorted(preset)) for preset in consumer_presets),
                )
            )
    return lowered


def _decode_state(state, backend: str, cnet: CompiledNet | None) -> Marking:
    if backend == "compiled":
        return cnet.decode(state)
    return Marking._fresh(dict(state))


def _state_key(state, backend: str, cnet: CompiledNet | None) -> bytes:
    if backend == "compiled":
        return state if cnet.codec == "bytes" else pack_wide_key(state)
    return repr(state).encode("utf-8")


def _run_single(
    kernel, memory_budget, collect_edges, max_states, net
) -> dict[str, Any]:
    """The ``workers=1`` degenerate case: the same shard loop run
    in-process, in exactly the serial engines' BFS discovery order."""
    shard = _Shard(kernel, 0, 1, memory_budget, collect_edges)
    shard.accept(kernel.node_of_wire(kernel.seed_wire()))
    try:
        while shard.frontier:
            if shard.states > max_states:
                shard.visited.close()
                raise _budget_error(net, max_states)
            shard.expand(shard.frontier.popleft(), None)
    except _BitmaskOverflow:
        shard.visited.close()
        raise
    if shard.states > max_states:
        shard.visited.close()
        raise _budget_error(net, max_states)
    payload = shard.report()
    payload["batches_sent"] = 0
    payload["batches_received"] = 0
    payload["batch_flush_seconds"] = 0.0
    payload["batch_flush_max_seconds"] = 0.0
    shard.visited.close()
    return payload


def _multiprocessing_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    # fork is both the cheapest and the only method that needs no
    # picklable module state; fall back to the platform default.
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_sharded(
    kind: str,
    spec,
    obligations,
    nworkers: int,
    memory_budget: int | None,
    collect_edges: bool,
    max_states: int,
    net: PetriNet,
    seed_wire,
    seed_key: bytes,
) -> list[dict]:
    """Coordinator: spawn workers, seed the initial state, run the
    two-wave counting termination protocol, enforce the global state
    budget, collect final per-worker reports."""
    ctx = _multiprocessing_context()
    per_worker_budget = (
        None if memory_budget is None else memory_budget // nworkers
    )
    inboxes = [ctx.Queue() for _ in range(nworkers)]
    report_queue = ctx.Queue()
    processes = [
        ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                nworkers,
                kind,
                spec,
                obligations,
                inboxes,
                report_queue,
                per_worker_budget,
                collect_edges,
            ),
            daemon=True,
        )
        for worker_id in range(nworkers)
    ]
    for process in processes:
        process.start()
    # Seed: the initial state goes to its owner; the coordinator counts
    # as one sent batch in the termination ledger.
    inboxes[_shard_of(seed_key, nworkers)].put(("batch", [seed_wire]))
    coordinator_sent = 1

    reports: dict[int, dict] = {}
    stop_sent = False
    aborted = False
    unsafe = False
    error_text: str | None = None
    wave = 0
    #: ``(sent, received)`` totals of the last all-idle balanced wave.
    balanced: tuple[int, int] | None = None

    def broadcast_stop() -> None:
        nonlocal stop_sent
        if not stop_sent:
            for inbox in inboxes:
                inbox.put(("stop",))
            stop_sent = True

    def check_liveness() -> None:
        dead = [p.pid for p in processes if not p.is_alive() and p.exitcode]
        if dead and not stop_sent:
            raise RuntimeError(
                f"parallel exploration worker(s) died: pids {dead}"
            )

    def pump(acks: dict[int, tuple] | None) -> None:
        """Take one message off the report queue (blocking with a
        liveness check); file it under acks/reports/error."""
        nonlocal error_text, unsafe
        try:
            message = report_queue.get(timeout=1.0)
        except queue_mod.Empty:
            check_liveness()
            return
        tag = message[0]
        if tag == "ack":
            if acks is not None and message[2] == wave:
                acks[message[1]] = message
        elif tag == "done":
            reports[message[1]] = message[2]
        elif tag == "unsafe":
            unsafe = True
        elif tag == "error":
            error_text = message[2]

    try:
        while not stop_sent and error_text is None and not unsafe:
            wave += 1
            for inbox in inboxes:
                inbox.put(("probe", wave))
            acks: dict[int, tuple] = {}
            while len(acks) < nworkers and error_text is None and not unsafe:
                pump(acks)
            if error_text is not None or unsafe:
                break
            total_sent = sum(ack[3] for ack in acks.values())
            total_received = sum(ack[4] for ack in acks.values())
            all_idle = all(ack[5] for ack in acks.values())
            total_states = sum(ack[6] for ack in acks.values())
            if total_states > max_states:
                aborted = True
                broadcast_stop()
            elif (
                all_idle
                and total_received == total_sent + coordinator_sent
            ):
                if balanced == (total_sent, total_received):
                    # Second consecutive identical balanced wave: no
                    # sends happened in between, every counted message
                    # was consumed — the system is terminated.
                    broadcast_stop()
                else:
                    balanced = (total_sent, total_received)
            else:
                balanced = None
                time.sleep(_WAVE_PAUSE)
        while len(reports) < nworkers and error_text is None and not unsafe:
            pump(None)
        if error_text is not None:
            raise RuntimeError(
                f"parallel exploration worker failed:\n{error_text}"
            )
    finally:
        broadcast_stop()
        for process in processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        for channel in [*inboxes, report_queue]:
            channel.close()
            channel.cancel_join_thread()
    if unsafe:
        raise _BitmaskOverflow()
    ordered = [reports[worker_id] for worker_id in sorted(reports)]
    total_states = sum(report["states"] for report in ordered)
    if aborted or total_states > max_states:
        raise _budget_error(net, max_states)
    return ordered


def _publish_metrics(result: ParallelExploration) -> None:
    """Merge the per-worker shard metrics into the active recorders
    (``repro.obs/v1`` payload): shard sizes, exchange volume, batch
    flush latencies and spill counts — see ``docs/OBSERVABILITY.md``."""
    if not obs.active():
        return
    obs.gauge("parallel.workers", result.workers)
    obs.count("parallel.states", result.states)
    obs.count("parallel.edges", result.edges)
    total_batches = 0
    flush_max = 0.0
    for report in result.worker_reports:
        worker = report["worker"]
        prefix = f"parallel.worker{worker}"
        obs.gauge(f"{prefix}.shard_states", report["states"])
        obs.gauge(f"{prefix}.edges", report["edges"])
        obs.gauge(f"{prefix}.frontier_peak", report["frontier_peak"])
        obs.gauge(f"{prefix}.batches_sent", report["batches_sent"])
        obs.gauge(f"{prefix}.batches_received", report["batches_received"])
        obs.gauge(
            f"{prefix}.batch_flush_ms",
            round(report["batch_flush_seconds"] * 1e3, 3),
        )
        obs.gauge(f"{prefix}.spill_count", report["spill_count"])
        obs.gauge(f"{prefix}.spilled_keys", report["spilled_keys"])
        total_batches += report["batches_sent"]
        flush_max = max(flush_max, report["batch_flush_max_seconds"])
        obs.count("parallel.cross_shard_states", report["cross_sent_states"])
        obs.count("parallel.spilled_keys", report["spilled_keys"])
        obs.count("parallel.spill_count", report["spill_count"])
    obs.count("parallel.batches", total_batches)
    obs.gauge_max("parallel.batch_flush_ms_max", round(flush_max * 1e3, 3))


# -- public API --------------------------------------------------------------


def parallel_explore(
    net: PetriNet,
    workers: int | None = 1,
    max_states: int = 1_000_000,
    memory_budget: int | None = None,
    backend: str | None = None,
    obligations=None,
    collect_edges: bool = False,
) -> ParallelExploration:
    """Explore the full reachable state space of ``net``, sharded over
    ``workers`` processes, visited sets bounded by ``memory_budget``
    bytes (total, split evenly across shards) before spilling to disk.

    ``obligations`` is an optional list of
    ``(producer_preset, consumer_presets)`` place-set pairs; each
    discovered state is tested against every obligation (the Prop 5.5
    predicate) and the canonical (minimum-key) witness per failing
    obligation is returned.  With ``collect_edges`` the full edge
    relation is gathered back — required by
    :func:`parallel_reachability_graph`, deliberately not by the
    verdict paths (which stay memory-bound only by the visited sets).

    Raises :class:`UnboundedNetError` (with ``bound`` set) when the
    space exceeds ``max_states``.  No covering-based unboundedness
    *proof* is attempted — see the module docstring.
    """
    workers = resolve_workers(workers)
    backend = resolve_backend(backend)
    cnet = net.compiled() if backend == "compiled" else None
    lowered = _lower_obligations(obligations or [], backend, cnet)
    kind = (
        "bitmask"
        if backend == "compiled" and _bitmask_eligible(cnet)
        else backend
    )

    def attempt(kind: str) -> list[dict]:
        spec = _spec_of(kind, net, cnet)
        kernel = _build_kernel(kind, spec)
        kernel.load_obligations(lowered)
        seed_wire = kernel.seed_wire()
        seed_key = kernel.key_of_node(kernel.node_of_wire(seed_wire))
        if workers == 1:
            return [
                _run_single(kernel, memory_budget, collect_edges, max_states, net)
            ]
        return _run_sharded(
            kind,
            spec,
            lowered,
            workers,
            memory_budget,
            collect_edges,
            max_states,
            net,
            seed_wire,
            seed_key,
        )

    with obs.span(
        "engine.parallel.explore",
        net=net.name,
        backend=backend,
        workers=workers,
    ) as span:
        try:
            reports = attempt(kind)
        except _BitmaskOverflow:
            # The net turned out not to be 1-safe: restart on the
            # general packed kernel (correct for any bounded counts).
            kind = backend
            reports = attempt(kind)
        span.set(kernel=kind)
        deadlocks = sorted(
            (state for report in reports for state in report["deadlocks"]),
            key=lambda state: _state_key(state, backend, cnet),
        )
        failing: dict[int, tuple[bytes, Any]] = {}
        for report in reports:
            for index, witness in report["failing"].items():
                best = failing.get(index)
                if best is None or witness[0] < best[0]:
                    failing[index] = witness
        edge_log = None
        if collect_edges:
            edge_log = [
                edge for report in reports for edge in report["edge_log"]
            ]
        result = ParallelExploration(
            backend=backend,
            workers=workers,
            states=sum(report["states"] for report in reports),
            edges=sum(report["edges"] for report in reports),
            deadlocks=[
                _decode_state(state, backend, cnet) for state in deadlocks
            ],
            failing={
                index: _decode_state(witness[1], backend, cnet)
                for index, witness in sorted(failing.items())
            },
            frontier_peak=max(
                report["frontier_peak"] for report in reports
            ),
            worker_reports=reports,
            edge_log=edge_log,
        )
        span.set(states=result.states, edges=result.edges)
    _publish_metrics(result)
    return result


def parallel_reachability_graph(
    net: PetriNet,
    workers: int | None = 1,
    max_states: int = 1_000_000,
    memory_budget: int | None = None,
    backend: str | None = None,
) -> ReachabilityGraph:
    """A :class:`ReachabilityGraph` built by the sharded explorer.

    The returned object is a *real* ``ReachabilityGraph`` — same
    states, same per-state successor lists (dense/tid ascending, as the
    serial engines emit them), same property queries (``is_live``,
    ``deadlocks`` …) — just constructed by gathering worker edge logs
    instead of a serial BFS.  Gathering materialises the graph, so this
    entry point parallelises the *exploration* but is not the
    spill-scalable path; the verdict-only flows
    (:func:`parallel_explore` without ``collect_edges``) are.
    """
    backend = resolve_backend(backend)
    result = parallel_explore(
        net,
        workers=workers,
        max_states=max_states,
        memory_budget=memory_budget,
        backend=backend,
        collect_edges=True,
    )
    cnet = net.compiled() if backend == "compiled" else None
    decoded: dict[Any, Marking] = {}

    def marking_of(state) -> Marking:
        marking = decoded.get(state)
        if marking is None:
            marking = _decode_state(state, backend, cnet)
            decoded[state] = marking
        return marking

    graph = ReachabilityGraph.__new__(ReachabilityGraph)
    graph.net = net
    graph.initial = net.initial
    graph.backend = backend
    graph.frontier_peak = result.frontier_peak
    graph._num_edges = result.edges
    successors: dict[Marking, list[tuple[str, int, Marking]]] = {
        marking_of(
            cnet.initial_state
            if backend == "compiled"
            else tuple(sorted(net.initial.items()))
        ): []
    }
    if backend == "compiled":
        actions, tids = cnet.actions, cnet.tids
    else:
        transitions = net.transitions
    for source, label, target in result.edge_log:
        if backend == "compiled":
            action, tid = actions[label], tids[label]
        else:
            action, tid = transitions[label].action, label
        source_marking = marking_of(source)
        target_marking = marking_of(target)
        successors.setdefault(target_marking, [])
        successors.setdefault(source_marking, []).append(
            (action, tid, target_marking)
        )
    graph._successors = successors
    graph.states = set(successors)
    return graph
